//! Workspace facade: re-exports the sub-crates of the HPCA 2021
//! *Automatic Microprocessor Performance Bug Detection* reproduction so
//! workspace-level integration tests and examples have a single anchor
//! package.
//!
//! Use the individual crates directly for real work:
//!
//! * [`perfbug_workloads`] — synthetic SPEC-like workloads and SimPoints,
//! * [`perfbug_uarch`] — the cycle-level out-of-order core simulator,
//! * [`perfbug_memsim`] — the cache-hierarchy simulator,
//! * [`perfbug_ml`] — from-scratch stage-1 regression engines,
//! * [`perfbug_core`] — the two-stage detection methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use perfbug_core;
pub use perfbug_memsim;
pub use perfbug_ml;
pub use perfbug_uarch;
pub use perfbug_workloads;

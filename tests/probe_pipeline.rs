//! Cross-crate consistency tests: workloads feeding both simulators.

use perfbug_uarch::{presets, simulate, Counter};
use perfbug_workloads::{benchmark, spec2006, WorkloadScale};

#[test]
fn suite_has_exactly_190_simpoints() {
    let total: usize = spec2006().iter().map(|b| b.k).sum();
    assert_eq!(
        total, 190,
        "Table I: 190 SimPoints across the ten benchmarks"
    );
}

#[test]
fn probe_runs_are_internally_consistent() {
    let scale = WorkloadScale::tiny();
    let spec = benchmark("401.bzip2").expect("suite benchmark");
    let program = spec.program(&scale);
    let probe = &spec.probes(&scale)[0];
    let trace = probe.trace(&program);
    let cfg = presets::ivybridge();
    let run = simulate(&cfg, None, &trace, 400);

    // Every instruction of the trace commits exactly once.
    assert_eq!(run.total_insts, trace.len() as u64);
    // Per-step IPC is consistent with the overall figure.
    let overall = run.overall_ipc();
    assert!(overall > 0.0 && overall <= cfg.width as f64);
    // Step IPCs bracket the overall IPC.
    let max_step = run.ipc.iter().cloned().fold(0.0, f64::max);
    let min_step = run.ipc.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min_step <= overall && overall <= max_step * 1.01);
}

#[test]
fn counters_track_trace_composition() {
    let scale = WorkloadScale::tiny();
    let spec = benchmark("433.milc").expect("suite benchmark");
    let program = spec.program(&scale);
    let probe = &spec.probes(&scale)[0];
    let trace = probe.trace(&program);
    let run = simulate(&presets::skylake(), None, &trace, 400);

    let names = perfbug_uarch::counter_names();
    let col = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .expect("known counter")
    };
    let total = |name: &str| run.counter_rows.iter().map(|r| r[col(name)]).sum::<f64>();

    // Committed = trace length (allowing the dropped partial step).
    assert!(total("committed_insts") <= trace.len() as f64);
    assert!(total("committed_insts") > trace.len() as f64 * 0.5);

    // Load counter ~ trace load count (same partial-step caveat).
    let loads_in_trace = trace
        .iter()
        .filter(|i| i.opcode == perfbug_workloads::Opcode::Load)
        .count() as f64;
    assert!(total("loads") <= loads_in_trace);
    assert!(total("loads") >= loads_in_trace * 0.5);

    // Cache-hierarchy counters respect containment.
    assert!(total("l1d_misses") <= total("l1d_accesses"));
    assert!(total("l2_misses") <= total("l2_accesses") + 1e-9);
    assert!(total("mem_accesses") <= total("l2_misses") + 1e-9);
    let _ = Counter::Cycles; // keep the import meaningful
}

#[test]
fn memory_and_core_simulators_share_traces() {
    let scale = WorkloadScale::tiny();
    let spec = benchmark("462.libquantum").expect("suite benchmark");
    let program = spec.program(&scale);
    let probe = &spec.probes(&scale)[0];
    let trace = probe.trace(&program);

    let core_run = simulate(&presets::skylake(), None, &trace, 400);
    let mem_cfg = perfbug_memsim::config::by_name("Skylake").expect("preset");
    let mem_run = perfbug_memsim::simulate_memory(&mem_cfg, None, &trace, 300);

    assert_eq!(core_run.total_insts, mem_run.total_insts);
    // Both observe the same number of loads in the trace.
    let loads = trace
        .iter()
        .filter(|i| i.opcode == perfbug_workloads::Opcode::Load)
        .count() as f64;
    let mem_names = perfbug_memsim::mem_counter_names();
    let load_col = mem_names
        .iter()
        .position(|n| *n == "loads")
        .expect("counter");
    let mem_loads: f64 = mem_run.counter_rows.iter().map(|r| r[load_col]).sum();
    assert!(mem_loads <= loads && mem_loads >= loads * 0.5);
}

#[test]
fn weights_are_probability_distributions() {
    let scale = WorkloadScale::tiny();
    for spec in [
        benchmark("426.mcf").unwrap(),
        benchmark("436.cactusADM").unwrap(),
    ] {
        let probes = spec.probes(&scale);
        let total: f64 = probes.iter().map(|p| p.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{}: weights sum {total}",
            spec.name
        );
        assert!(probes.iter().all(|p| p.weight > 0.0));
    }
}

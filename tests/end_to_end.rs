//! Cross-crate integration tests: the full detection pipeline at tiny
//! scale, determinism across the stack, and the memory-system variant.

use perfbug_core::baseline::BaselineParams;
use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{
    collect, evaluate_baseline, evaluate_two_stage, CollectionConfig, ProbeScale,
};
use perfbug_core::memory::{collect_memory, MemCollectionConfig, TargetMetric};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::stage2::Stage2Params;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode, WorkloadScale};

fn tiny_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::MispredictExtraDelay { t: 25 },
        BugSpec::L2ExtraLatency { t: 30 },
        BugSpec::FewerPhysRegs { n: 150 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 50,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite benchmark"),
        benchmark("403.gcc").expect("suite benchmark"),
    ];
    config.max_probes = Some(8);
    config
}

#[test]
fn two_stage_pipeline_detects_better_than_chance() {
    let config = tiny_config();
    let collection = collect(&config);
    let eval = evaluate_two_stage(&collection, 0, Stage2Params::default());
    assert!(
        eval.metrics.roc_auc > 0.6,
        "two-stage AUC should clearly beat chance, got {}",
        eval.metrics.roc_auc
    );
    // Every fold produced decisions for all four test designs.
    for fold in &eval.folds {
        assert_eq!(
            fold.decisions.len(),
            8,
            "4 designs x (1 bug-free + 1 variant)"
        );
    }
}

#[test]
fn collection_is_deterministic() {
    let config = tiny_config();
    let a = collect(&config);
    let b = collect(&config);
    assert_eq!(a.keys.len(), b.keys.len());
    for (ea, eb) in a.engines.iter().zip(&b.engines) {
        assert_eq!(
            ea.deltas, eb.deltas,
            "deltas must be bit-identical across runs"
        );
    }
    assert_eq!(a.overall_ipc, b.overall_ipc);
}

#[test]
fn baseline_runs_under_same_protocol() {
    let config = tiny_config();
    let collection = collect(&config);
    let params = BaselineParams {
        gbt: GbtParams {
            n_trees: 25,
            max_depth: 3,
            ..GbtParams::default()
        },
        ..BaselineParams::default()
    };
    let eval = evaluate_baseline(&collection, &params);
    assert_eq!(eval.folds.len(), 4);
    assert!(eval.metrics.roc_auc.is_finite());
}

#[test]
fn memory_pipeline_detects_memory_bugs() {
    let mut config = MemCollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 40,
            ..GbtParams::default()
        })],
        TargetMetric::Amat,
    );
    config.workload = WorkloadScale::tiny();
    config.step_cycles = 300;
    config.max_probes = Some(6);
    let collection = collect_memory(&config);
    let eval = evaluate_two_stage(&collection, 0, Stage2Params::default());
    assert_eq!(eval.folds.len(), 6, "six memory bug types");
    assert!(
        eval.metrics.roc_auc > 0.5,
        "memory AUC {}",
        eval.metrics.roc_auc
    );
}

#[test]
fn injected_bug_raises_inference_error() {
    // The core claim of stage 1: a bug breaks the counter-to-IPC relation
    // learned from bug-free designs, inflating Eq. (1) errors.
    let config = tiny_config();
    let collection = collect(&config);
    let deltas = &collection.engines[0].deltas;
    // Compare mean delta on bug-free vs severe-bug keys (Set IV).
    let mut bugfree = Vec::new();
    let mut buggy = Vec::new();
    for (k, key) in collection.keys.iter().enumerate() {
        if key.set != perfbug_uarch::ArchSet::IV {
            continue;
        }
        for probe_deltas in deltas {
            match key.bug {
                None => bugfree.push(probe_deltas[k]),
                Some(_) => buggy.push(probe_deltas[k]),
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&buggy) > mean(&bugfree),
        "buggy designs must show larger stage-1 errors ({} !> {})",
        mean(&buggy),
        mean(&bugfree)
    );
}

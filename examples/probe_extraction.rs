//! SimPoint probe extraction walkthrough (§III-B1, Fig. 3).
//!
//! Shows how performance probes are mined from a long-running workload:
//! basic-block-vector profiling, k-means clustering, representative
//! selection — and reproduces the paper's observation that one gcc
//! SimPoint is far denser in XOR instructions than the benchmark average,
//! which is exactly what gives probes their bug visibility.
//!
//! ```sh
//! cargo run --release --example probe_extraction
//! ```

use perfbug_workloads::{benchmark, extract_simpoints, Opcode, WorkloadScale};

fn main() {
    let scale = WorkloadScale::default();
    let spec = benchmark("403.gcc").expect("suite benchmark");
    let program = spec.program(&scale);
    let config = spec.simpoint_config(&scale);

    println!(
        "profiling {}: {} intervals x {} instructions, k = {}",
        spec.name, config.n_intervals, config.interval_len, config.k
    );
    let simpoints = extract_simpoints(&program, &config);
    println!(
        "extracted {} SimPoints (weights sum to 1):\n",
        simpoints.len()
    );

    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>10}",
        "simpoint", "interval", "weight", "xor-frac", "mem-frac"
    );
    let probes = spec.probes(&scale);
    let mut xor_fracs = Vec::new();
    for (i, probe) in probes.iter().enumerate() {
        let trace = probe.trace(&program);
        let xor =
            trace.iter().filter(|x| x.opcode == Opcode::Xor).count() as f64 / trace.len() as f64;
        let mem = trace.iter().filter(|x| x.opcode.is_memory()).count() as f64 / trace.len() as f64;
        xor_fracs.push(xor);
        println!(
            "{:>10} {:>10} {:>8.3} {:>9.2}% {:>9.2}%",
            format!("#{}", i + 1),
            probe.interval,
            probe.weight,
            xor * 100.0,
            mem * 100.0
        );
        let _ = simpoints[i];
    }

    let mean = xor_fracs.iter().sum::<f64>() / xor_fracs.len() as f64;
    let (max_idx, max) = xor_fracs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "\nXOR density: benchmark mean {:.2}%, SimPoint #{} reaches {:.2}% ({:.1}x the mean)",
        mean * 100.0,
        max_idx + 1,
        max * 100.0,
        max / mean
    );
    println!(
        "-> a scheduling bug affecting XOR is nearly invisible in whole-program IPC\n\
         but lights up on that one probe — the Fig. 3 effect."
    );
}

//! Collection persistence and evaluation-only replay.
//!
//! Collects a small corpus once, saves it with `collect_or_load`, then
//! replays it from disk and re-runs the (cheap) evaluation phase — the
//! workflow behind the paper's Figs. 8–13 / Tables IV–VII, where one
//! simulated corpus feeds many models and thresholds. A second leg
//! collects the same corpus as two shards and assembles it from the
//! shard files, the multi-process scale-out workflow.
//!
//! This example is also the CI replay guard: it exits non-zero if the
//! replay path performed any simulation, if the replayed collection is not
//! identical to the freshly collected one, if a stale-config cache is not
//! rejected, if the shard assembly diverges from the single-process
//! collection, if chunk-index random access returns the wrong probe, or if
//! resuming a torn shard part file fails to salvage the durable chunk
//! prefix and finish bit-identical. With an explicit cache-dir argument
//! the produced files are kept, so CI can run `pbcol verify` over them
//! afterwards.
//!
//! ```sh
//! cargo run --release --example replay [cache-dir]
//! ```

use std::time::Instant;

use perfbug_bench::replay_demo_config;
use perfbug_core::exec::{self, ShardSpec};
use perfbug_core::experiment::{evaluate_two_stage, CollectionConfig};
use perfbug_core::persist::{
    cache_file_name, collect_or_load, collect_shard_or_load, collect_shard_or_resume,
    config_fingerprint, load_collection, load_or_assemble, part_path_for, scan_part,
    shard_file_name, CacheStatus, ExperimentKind, PersistError, ProbeReader,
};
use perfbug_core::stage2::Stage2Params;

/// The shared demo corpus (also `pborch`'s `replay-demo` spec, so the CI
/// orchestrate-guard exercises the exact corpus this guard checks).
fn demo_config() -> CollectionConfig {
    replay_demo_config()
}

fn main() {
    let explicit_dir = std::env::args().nth(1).map(std::path::PathBuf::from);
    let keep_files = explicit_dir.is_some();
    let dir = explicit_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("perfbug-replay-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("cache dir");

    let config = demo_config();
    let fingerprint = config_fingerprint(&config);
    let path = dir.join(cache_file_name(
        "replay-demo",
        ExperimentKind::Core,
        fingerprint,
    ));
    let _ = std::fs::remove_file(&path);

    // Cold pass: simulate, train, save.
    println!("cold pass: collecting into {} ...", path.display());
    let t0 = Instant::now();
    let (cold, status) = collect_or_load(&path, &config).expect("cold collect");
    let cold_time = t0.elapsed();
    assert_eq!(status, CacheStatus::Collected);
    println!(
        "  collected {} probes x {} runs in {cold_time:.2?}",
        cold.probes.len(),
        cold.keys.len()
    );

    // Warm pass: replay from disk. The simulation counter must not move —
    // an evaluation-only rerun never touches the simulator.
    let sims_before = exec::simulations_run();
    let t1 = Instant::now();
    let (warm, status) = collect_or_load(&path, &config).expect("replay");
    let warm_time = t1.elapsed();
    assert_eq!(status, CacheStatus::Replayed);
    let resimulated = exec::simulations_run() - sims_before;
    println!("  replayed in {warm_time:.2?} (cold pass took {cold_time:.2?})");
    if resimulated != 0 {
        eprintln!("REPLAY GUARD FAILED: replay re-simulated {resimulated} runs");
        std::process::exit(1);
    }
    if warm != cold {
        eprintln!("REPLAY GUARD FAILED: replayed collection differs from the collected one");
        std::process::exit(1);
    }
    println!("  replay ran 0 simulations and round-tripped identically");

    // Evaluation-only phase on the replayed corpus.
    let eval = evaluate_two_stage(&warm, 0, Stage2Params::default());
    println!(
        "  evaluation from replay: TPR {:.2}  FPR {:.2}  ROC AUC {:.2}",
        eval.metrics.tpr, eval.metrics.fpr, eval.metrics.roc_auc
    );

    // A cache collected under a different configuration must be rejected,
    // not silently reused.
    let mut stale = config.clone();
    stale.window = 2;
    match load_collection(&path, config_fingerprint(&stale)) {
        Err(PersistError::Fingerprint { .. }) => {
            println!("  stale-config load correctly rejected (fingerprint mismatch)");
        }
        other => {
            eprintln!("REPLAY GUARD FAILED: stale cache not rejected: {other:?}");
            std::process::exit(1);
        }
    }

    // Sharded leg: collect the same corpus as two shard processes would,
    // then assemble the full collection from the shard files alone. The
    // assembly must be identical to the single-process run, wall-clock
    // timings aside.
    println!("sharded pass: collecting 2 shards and assembling ...");
    let shards = 2;
    for index in 0..shards {
        let shard = ShardSpec::new(index, shards);
        let shard_path = dir.join(shard_file_name(
            "replay-demo",
            ExperimentKind::Core,
            fingerprint,
            index,
            shards,
        ));
        let _ = std::fs::remove_file(&shard_path);
        let (part, status) = collect_shard_or_load(&shard_path, &config, shard).expect("shard");
        assert_eq!(status, CacheStatus::Collected);
        println!(
            "  shard {index}/{shards}: {} probes -> {}",
            part.probes.len(),
            shard_path.display()
        );
    }
    let _ = std::fs::remove_file(&path); // force assembly, not replay
    let assembled = match load_or_assemble(&path, ExperimentKind::Core, fingerprint) {
        Ok(Some((col, CacheStatus::Assembled))) => col,
        other => {
            eprintln!("REPLAY GUARD FAILED: shard assembly did not happen: {other:?}");
            std::process::exit(1);
        }
    };
    let (mut assembled_cmp, mut cold_cmp) = (assembled, cold.clone());
    assembled_cmp.zero_timings();
    cold_cmp.zero_timings();
    if assembled_cmp != cold_cmp {
        eprintln!("REPLAY GUARD FAILED: assembled corpus differs from the single-process one");
        std::process::exit(1);
    }
    println!("  2-shard assembly matches the single-process collection");

    // Streaming random access: one probe decoded through the chunk/offset
    // index, without materialising the corpus.
    let probe = (cold.probes.len() - 1) as u64;
    let mut reader = ProbeReader::open(&path, Some(fingerprint)).expect("probe reader");
    let rec = reader.read_probe(probe).expect("read probe");
    if rec.meta != cold.probes[probe as usize] || rec.overall != cold.overall_ipc[probe as usize] {
        eprintln!("REPLAY GUARD FAILED: random-access probe {probe} differs from the corpus");
        std::process::exit(1);
    }
    println!(
        "  random access: probe {probe} ({}) decoded from 1 of {} chunks",
        rec.meta.id,
        reader.chunk_index().len()
    );

    // Crash-recovery leg: tear shard 0's finished file into a part file
    // whose last chunk is cut mid-write (what a killed worker leaves
    // behind), then resume. The retry must salvage every intact chunk,
    // re-collect only the torn probe, and finish bit-identical (timings
    // aside) to the uninterrupted shard.
    println!("recovery pass: tearing shard 0 mid-chunk and resuming ...");
    let shard0 = ShardSpec::new(0, shards);
    let shard0_path = dir.join(shard_file_name(
        "replay-demo",
        ExperimentKind::Core,
        fingerprint,
        0,
        shards,
    ));
    let (intact, status) =
        collect_shard_or_load(&shard0_path, &config, shard0).expect("shard 0 loads");
    assert_eq!(status, CacheStatus::Replayed);
    let bytes = std::fs::read(&shard0_path).expect("shard 0 bytes");
    // On a finished file, scan_part recovers the full probe prefix (the
    // footer reads as a torn tail); cutting 9 more bytes tears into the
    // last probe chunk's checksum.
    let durable = scan_part(&bytes).expect("scan").durable_len as usize;
    std::fs::write(part_path_for(&shard0_path), &bytes[..durable - 9]).expect("write part");
    std::fs::remove_file(&shard0_path).expect("remove shard 0");
    let sims_before = exec::simulations_run();
    let outcome = collect_shard_or_resume(&shard0_path, &config, shard0).expect("resume");
    let resumed_sims = exec::simulations_run() - sims_before;
    let expect_resumed = intact.probes.len() as u64 - 1;
    if outcome.resumed_probes != expect_resumed {
        eprintln!(
            "REPLAY GUARD FAILED: resume salvaged {} probes, expected {expect_resumed}",
            outcome.resumed_probes
        );
        std::process::exit(1);
    }
    let (mut resumed_cmp, mut intact_cmp) = (outcome.collection, intact);
    resumed_cmp.zero_timings();
    intact_cmp.zero_timings();
    if resumed_cmp != intact_cmp {
        eprintln!("REPLAY GUARD FAILED: resumed shard differs from the uninterrupted one");
        std::process::exit(1);
    }
    println!(
        "  resumed {} of {} probes from the torn part ({} simulations re-run), \
         finished shard is bit-identical",
        expect_resumed,
        resumed_cmp.probes.len(),
        resumed_sims
    );

    if keep_files {
        println!("keeping cache files in {} for inspection", dir.display());
    } else {
        for index in 0..shards {
            let _ = std::fs::remove_file(dir.join(shard_file_name(
                "replay-demo",
                ExperimentKind::Core,
                fingerprint,
                index,
                shards,
            )));
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
    println!("replay guard passed");
}

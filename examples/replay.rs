//! Collection persistence and evaluation-only replay.
//!
//! Collects a small corpus once, saves it with `collect_or_load`, then
//! replays it from disk and re-runs the (cheap) evaluation phase — the
//! workflow behind the paper's Figs. 8–13 / Tables IV–VII, where one
//! simulated corpus feeds many models and thresholds.
//!
//! This example is also the CI replay guard: it exits non-zero if the
//! replay path performed any simulation, if the replayed collection is not
//! identical to the freshly collected one, or if a stale-config cache is
//! not rejected.
//!
//! ```sh
//! cargo run --release --example replay [cache-dir]
//! ```

use std::time::Instant;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::exec;
use perfbug_core::experiment::{evaluate_two_stage, CollectionConfig, ProbeScale};
use perfbug_core::persist::{
    cache_file_name, collect_or_load, config_fingerprint, load_collection, CacheStatus,
    PersistError,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::stage2::Stage2Params;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};

fn demo_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
        BugSpec::MispredictExtraDelay { t: 25 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 40,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite benchmark"),
        benchmark("462.libquantum").expect("suite benchmark"),
    ];
    config.max_probes = Some(6);
    config
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("perfbug-replay-{}", std::process::id()))
        });
    std::fs::create_dir_all(&dir).expect("cache dir");

    let config = demo_config();
    let fingerprint = config_fingerprint(&config);
    let path = dir.join(cache_file_name("replay-demo", fingerprint));
    let _ = std::fs::remove_file(&path);

    // Cold pass: simulate, train, save.
    println!("cold pass: collecting into {} ...", path.display());
    let t0 = Instant::now();
    let (cold, status) = collect_or_load(&path, &config).expect("cold collect");
    let cold_time = t0.elapsed();
    assert_eq!(status, CacheStatus::Collected);
    println!(
        "  collected {} probes x {} runs in {cold_time:.2?}",
        cold.probes.len(),
        cold.keys.len()
    );

    // Warm pass: replay from disk. The simulation counter must not move —
    // an evaluation-only rerun never touches the simulator.
    let sims_before = exec::simulations_run();
    let t1 = Instant::now();
    let (warm, status) = collect_or_load(&path, &config).expect("replay");
    let warm_time = t1.elapsed();
    assert_eq!(status, CacheStatus::Replayed);
    let resimulated = exec::simulations_run() - sims_before;
    println!("  replayed in {warm_time:.2?} (cold pass took {cold_time:.2?})");
    if resimulated != 0 {
        eprintln!("REPLAY GUARD FAILED: replay re-simulated {resimulated} runs");
        std::process::exit(1);
    }
    if warm != cold {
        eprintln!("REPLAY GUARD FAILED: replayed collection differs from the collected one");
        std::process::exit(1);
    }
    println!("  replay ran 0 simulations and round-tripped identically");

    // Evaluation-only phase on the replayed corpus.
    let eval = evaluate_two_stage(&warm, 0, Stage2Params::default());
    println!(
        "  evaluation from replay: TPR {:.2}  FPR {:.2}  ROC AUC {:.2}",
        eval.metrics.tpr, eval.metrics.fpr, eval.metrics.roc_auc
    );

    // A cache collected under a different configuration must be rejected,
    // not silently reused.
    let mut stale = config.clone();
    stale.window = 2;
    match load_collection(&path, config_fingerprint(&stale)) {
        Err(PersistError::Fingerprint { .. }) => {
            println!("  stale-config load correctly rejected (fingerprint mismatch)");
        }
        other => {
            eprintln!("REPLAY GUARD FAILED: stale cache not rejected: {other:?}");
            std::process::exit(1);
        }
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    println!("replay guard passed");
}

//! Bug hunt: diagnose a single suspect design with per-probe γ ratios.
//!
//! Models the workflow of a performance validation engineer: a "new"
//! microarchitecture (Skylake with an injected instruction-scheduling bug)
//! is probed, and the stage-2 γ⁺ diagnostics show *which* probes scream —
//! the paper's suggested starting point for bug localisation (§VII).
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, CollectionConfig, ProbeScale};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::stage2::{Stage2Classifier, Stage2Params};
use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::{benchmark, Opcode};

fn main() {
    // The suspect defect: XOR issues only when oldest in the queue — the
    // low-impact Bug 1 of the paper's Fig. 1, hard to see in overall IPC.
    let suspect = BugSpec::IssueOnlyIfOldest { x: Opcode::Xor };
    let catalog = BugCatalog::new(vec![
        suspect,
        // Labelled training bugs of *different* types.
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::MispredictExtraDelay { t: 20 },
        BugSpec::L2ExtraLatency { t: 16 },
        BugSpec::RobBelowDelay { n: 16, t: 8 },
    ]);

    let mut config = CollectionConfig::new(vec![EngineSpec::gbt250()], catalog);
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("403.gcc").expect("suite benchmark"),
        benchmark("462.libquantum").expect("suite benchmark"),
        benchmark("458.sjeng").expect("suite benchmark"),
    ];
    config.max_probes = Some(12);

    println!("simulating probes and training stage-1 models...");
    let col = collect(&config);

    // Stage-2 training data: sets II/III with the *other* bug types.
    let mut train_pos = Vec::new();
    let mut train_neg = Vec::new();
    let deltas = &col.engines[0].deltas;
    for (k, key) in col.keys.iter().enumerate() {
        if !matches!(key.set, ArchSet::II | ArchSet::III) {
            continue;
        }
        let sample: Vec<f64> = deltas.iter().map(|d| d[k]).collect();
        match key.bug {
            None => train_neg.push(sample),
            Some(0) => {} // the suspect type is unseen in training
            Some(_) => train_pos.push(sample),
        }
    }
    let clf = Stage2Classifier::fit(Stage2Params::default(), &train_pos, &train_neg);
    println!("stage 2 trained: alpha = {:.2}", clf.alpha());

    // The design under test: Skylake with the suspect bug (unseen type).
    let key_idx = col
        .keys
        .iter()
        .position(|k| k.arch == "Skylake" && k.bug == Some(0))
        .expect("suspect key exists");
    let sample: Vec<f64> = deltas.iter().map(|d| d[key_idx]).collect();
    let verdict = clf.classify(&sample);
    println!(
        "\nSkylake + '{}': score {:.2} -> {}",
        suspect.describe(),
        clf.score(&sample),
        if verdict {
            "BUG DETECTED"
        } else {
            "no bug detected"
        }
    );

    // Diagnostics: which probes triggered, and what do they share? This is
    // the paper's §VII localisation idea, implemented in
    // `perfbug_core::localize`.
    let (gamma_pos, _) = clf.gammas(&sample);
    let probe_traits: Vec<(String, perfbug_core::localize::ProbeTraits)> = config
        .benchmarks
        .iter()
        .flat_map(|b| {
            let program = b.program(&config.scale.workload);
            b.probes(&config.scale.workload).into_iter().map(move |p| {
                (
                    p.id(),
                    perfbug_core::localize::traits_of(&p.trace(&program)),
                )
            })
        })
        .filter(|(id, _)| col.probes.iter().any(|m| &m.id == id))
        .collect();
    // Align trait order with the collection's probe order.
    let aligned: Vec<(String, perfbug_core::localize::ProbeTraits)> = col
        .probes
        .iter()
        .map(|m| {
            probe_traits
                .iter()
                .find(|(id, _)| id == &m.id)
                .cloned()
                .expect("traits computed for every collected probe")
        })
        .collect();
    let localization = perfbug_core::localize::localize(&aligned, &gamma_pos);
    println!("\nloudest probes (stage-2 gamma+):");
    for (id, g) in localization.ranked_probes.iter().take(5) {
        println!("  {id:24} gamma+ = {g:8.2}");
    }
    println!("\ntraits most correlated with the detection signal:");
    for (name, r) in localization.trait_correlations.iter().take(4) {
        println!("  {name:16} r = {r:+.2}");
    }
    println!("localisation hint: {}", localization.hypothesis());

    // Contrast: the bug-free Skylake must pass.
    let clean_idx = col
        .keys
        .iter()
        .position(|k| k.arch == "Skylake" && k.bug.is_none())
        .expect("bug-free key exists");
    let clean: Vec<f64> = deltas.iter().map(|d| d[clean_idx]).collect();
    println!(
        "bug-free Skylake: score {:.2} -> {}",
        clf.score(&clean),
        if clf.classify(&clean) {
            "FALSE ALARM"
        } else {
            "passes"
        }
    );
}

//! Persistent workload-trace cache: cold build, warm replay.
//!
//! Runs the memory-experiment collection twice with `PERFBUG_TRACE_DIR`
//! set: the cold pass generates every probe trace and builds the `.pbtr`
//! store, the warm pass replays the cached traces. This example is also
//! the CI trace-cache guard: it exits non-zero if the warm pass
//! regenerated any trace, if the warm corpus is not byte-identical to
//! the cold one (after timing zeroing), or if the store's files fail
//! full verification. With an explicit directory argument the trace
//! files are kept, so CI can run `pbcol verify` over them afterwards.
//!
//! ```sh
//! cargo run --release --example trace_cache [trace-dir]
//! ```

use std::time::Instant;

use perfbug_core::exec;
use perfbug_core::memory::{collect_memory, MemCollectionConfig, TargetMetric};
use perfbug_core::persist::{mem_config_fingerprint, save_collection};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::tracecache::{trace_cache_rejections, verify_trace_file, TRACE_DIR_ENV};
use perfbug_ml::GbtParams;
use perfbug_workloads::WorkloadScale;

/// The guard's corpus: the memory experiment at tiny scale, small GBT.
fn demo_config() -> MemCollectionConfig {
    let mut config = MemCollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 25,
            ..GbtParams::default()
        })],
        TargetMetric::Amat,
    );
    config.workload = WorkloadScale::tiny();
    config.max_probes = Some(6);
    config
}

fn main() {
    let explicit_dir = std::env::args().nth(1).map(std::path::PathBuf::from);
    let keep_files = explicit_dir.is_some();
    let dir = explicit_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("perfbug-trace-cache-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("trace dir");
    std::env::set_var(TRACE_DIR_ENV, &dir);

    let config = demo_config();

    // Cold pass: every trace is generated once and persisted.
    println!(
        "cold pass: collecting with trace store {} ...",
        dir.display()
    );
    let regens_before = exec::traces_regenerated();
    let t0 = Instant::now();
    let mut cold = collect_memory(&config);
    let cold_time = t0.elapsed();
    let cold_regens = exec::traces_regenerated() - regens_before;
    println!(
        "  collected {} probes x {} runs in {cold_time:.2?} ({cold_regens} traces generated)",
        cold.probes.len(),
        cold.keys.len()
    );
    if cold_regens == 0 {
        eprintln!("TRACE GUARD FAILED: the cold pass generated no traces");
        std::process::exit(1);
    }

    // Warm pass: every trace replays from the store. The regeneration
    // counter must not move.
    let regens_before = exec::traces_regenerated();
    let t1 = Instant::now();
    let mut warm = collect_memory(&config);
    let warm_time = t1.elapsed();
    let regenerated = exec::traces_regenerated() - regens_before;
    println!("  warm pass in {warm_time:.2?} (cold pass took {cold_time:.2?})");
    if regenerated != 0 {
        eprintln!("TRACE GUARD FAILED: the warm pass regenerated {regenerated} traces");
        std::process::exit(1);
    }

    // The warm corpus must be byte-identical after timing zeroing —
    // through the persistence codec, not just `Eq`.
    cold.zero_timings();
    warm.zero_timings();
    if warm != cold {
        eprintln!("TRACE GUARD FAILED: warm corpus differs from the cold one");
        std::process::exit(1);
    }
    let fp = mem_config_fingerprint(&config);
    let (a, b) = (dir.join("cold.pbcol"), dir.join("warm.pbcol"));
    save_collection(&a, &cold, fp).expect("save cold");
    save_collection(&b, &warm, fp).expect("save warm");
    let identical = std::fs::read(&a).expect("read cold") == std::fs::read(&b).expect("read warm");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
    if !identical {
        eprintln!("TRACE GUARD FAILED: warm corpus is not byte-identical to the cold one");
        std::process::exit(1);
    }
    println!("  warm pass regenerated 0 traces, corpus byte-identical");

    // Every file the store produced fully verifies (every probe chunk
    // decoded), and none was rejected along the way.
    let rejections = trace_cache_rejections();
    if rejections != 0 {
        eprintln!("TRACE GUARD FAILED: {rejections} trace-cache rejections on a healthy store");
        std::process::exit(1);
    }
    let mut n_files = 0usize;
    let mut n_insts = 0u64;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("read trace dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pbtr"))
        .collect();
    entries.sort();
    for path in &entries {
        match verify_trace_file(path) {
            Ok((header, insts)) => {
                n_files += 1;
                n_insts += insts;
                println!(
                    "  verified {}: {} probe(s), {insts} instruction(s)",
                    path.display(),
                    header.n_probes
                );
            }
            Err(e) => {
                eprintln!(
                    "TRACE GUARD FAILED: {} does not verify: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
    if n_files == 0 {
        eprintln!("TRACE GUARD FAILED: the store holds no trace files");
        std::process::exit(1);
    }
    println!(
        "  store: {n_files} file(s), {n_insts} cached instruction(s), speedup {:.2}x",
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9)
    );

    if keep_files {
        println!("keeping trace files in {} for inspection", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("trace-cache guard passed");
}

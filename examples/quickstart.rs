//! Quickstart: detect an injected performance bug in a "new" design.
//!
//! Runs the full two-stage methodology at a reduced scale: extract probes
//! from the synthetic suite, train per-probe GBT IPC models on the legacy
//! design sets, and test whether held-out bug types are detected on the
//! held-out (Set IV) microarchitectures.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, evaluate_two_stage, CollectionConfig, ProbeScale};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::stage2::Stage2Params;
use perfbug_workloads::benchmark;

fn main() {
    // A small, fast configuration: two benchmarks, eight probes, one
    // mid-severity variant of each of the 14 bug types.
    let mut config = CollectionConfig::new(vec![EngineSpec::gbt250()], BugCatalog::core_small());
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite benchmark"),
        benchmark("462.libquantum").expect("suite benchmark"),
    ];
    config.max_probes = Some(8);

    println!(
        "collecting probe data (simulating {} bug variants)...",
        config.catalog.len()
    );
    let collection = collect(&config);
    println!(
        "collected {} probes x {} runs; stage-1 engine {} trained in {:?}",
        collection.probes.len(),
        collection.keys.len(),
        collection.engines[0].name,
        collection.engines[0].train_time,
    );

    let eval = evaluate_two_stage(&collection, 0, Stage2Params::default());
    println!("\nleave-one-bug-type-out detection on Set IV:");
    println!(
        "  TPR {:.3}  FPR {:.3}  precision {:.3}  ROC AUC {:.3}",
        eval.metrics.tpr, eval.metrics.fpr, eval.metrics.precision, eval.metrics.roc_auc
    );
    for fold in &eval.folds {
        let hits = fold
            .decisions
            .iter()
            .filter(|d| d.has_bug && d.flagged)
            .count();
        let total = fold.decisions.iter().filter(|d| d.has_bug).count();
        println!("  held-out {:22} detected {hits}/{total}", fold.type_name);
    }
}

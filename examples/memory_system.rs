//! Memory-system bug detection with AMAT as the target metric (§IV-D).
//!
//! Exercises the ChampSim-like hierarchy simulator: probes from the
//! 22-SimPoint memory suite run on twelve cache-hierarchy designs, a GBT
//! model per probe learns bug-free AMAT behaviour, and the two-stage
//! detector is evaluated on replacement-policy and prefetcher defects.
//!
//! ```sh
//! cargo run --release --example memory_system
//! ```

use perfbug_core::experiment::evaluate_two_stage;
use perfbug_core::memory::{collect_memory, mem_variant_names, MemCollectionConfig, TargetMetric};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::stage2::Stage2Params;
use perfbug_core::MemBugCatalog;
use perfbug_workloads::WorkloadScale;

fn main() {
    let mut config = MemCollectionConfig::new(vec![EngineSpec::gbt250()], TargetMetric::Amat);
    config.workload = WorkloadScale::tiny();
    config.step_cycles = 300;
    config.max_probes = Some(10);

    println!("simulating the memory probe suite on 12 hierarchies...");
    let names = mem_variant_names(&config.catalog);
    let col = collect_memory(&config);
    println!(
        "collected {} probes x {} runs",
        col.probes.len(),
        col.keys.len()
    );

    let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
    println!(
        "\nAMAT-based detection: TPR {:.3}  FPR {:.3}  precision {:.3}  AUC {:.3}",
        eval.metrics.tpr, eval.metrics.fpr, eval.metrics.precision, eval.metrics.roc_auc
    );

    println!("\nper held-out memory bug type:");
    for fold in &eval.folds {
        let hits = fold
            .decisions
            .iter()
            .filter(|d| d.has_bug && d.flagged)
            .count();
        let total = fold.decisions.iter().filter(|d| d.has_bug).count();
        println!(
            "  type {:2} {:20} {hits}/{total}",
            fold.type_id, fold.type_name
        );
    }

    println!("\ninjected variants and their measured AMAT-side impact:");
    let catalog = MemBugCatalog::full();
    for (v, name) in names.iter().enumerate().take(catalog.len()) {
        println!("  {:52} impact {:6.2}%", name, eval.impacts[v] * 100.0);
    }
}

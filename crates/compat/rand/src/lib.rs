//! Workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the subset of the
//! `rand` 0.8 API this workspace uses is implemented here: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, the [`rngs::StdRng`] / [`rngs::SmallRng`] generators
//! and [`seq::SliceRandom`] shuffling.
//!
//! Streams are NOT bit-compatible with upstream `rand`; they are, however,
//! fully deterministic per seed, which is the property every caller in
//! this workspace relies on. The core generator is xoshiro256** seeded
//! through SplitMix64.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (`rand`'s `Standard`
/// distribution analogue).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`rand`'s `SampleRange` analogue).
///
/// `T` is an input type parameter (as in upstream `rand 0.8`) so that the
/// expected result type drives integer-literal inference at call sites
/// like `rng.gen_range(2..4)` in a `u64` context.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable inside half-open or closed bounds (`rand`'s
/// `SampleUniform` analogue). A single generic [`SampleRange`] impl builds
/// on this so type inference can unify the range's element type with the
/// expected output type at the call site.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`
    /// (`inclusive == true`).
    fn sample_span<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_span<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_span(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_span(lo, hi, true, rng)
    }
}

/// User-facing RNG extension methods.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be degenerate; splitmix cannot produce it
        // for all four words, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The default "cryptographic-grade" generator of upstream `rand`
    /// (here: xoshiro256**; determinism, not security, is the contract).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    /// The small fast generator of upstream `rand`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Domain-separate the two generator families.
            SmallRng(Xoshiro256::from_u64(state ^ 0x9d8f_3a2b_51c6_e407))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Slice shuffling, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let inc = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&inc));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            sum += rng.gen::<f64>();
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

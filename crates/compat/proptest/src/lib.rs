//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment is offline, so the subset of the proptest 1.x API
//! used by this workspace's property tests is implemented here: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`prelude::any`] for `bool`/`u64`, `prop::collection::vec`, the
//! [`proptest!`] test macro with optional `#![proptest_config(..)]`, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! its case index and generated inputs are reproducible from the fixed
//! per-test seed, which is sufficient for this repository's deterministic
//! test suites.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG type threaded through strategies.
pub type TestRng = StdRng;

/// Why a generated test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject,
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`proptest::test_runner::Config` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection` analogue), re-exported as
/// `prop::collection` through the [`prop`] module.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification accepted by [`vec()`].
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from `[lo, hi)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), r.end() + 1)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Range(lo, hi) => rng.gen_range(lo..hi.max(lo + 1)),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a strategy generating vectors of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works as upstream.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Drives the generated cases of one property test. Used by [`proptest!`];
/// not part of the public upstream API.
pub fn run_property<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = <TestRng as SeedableRng>::seed_from_u64(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {passed}: {msg}");
            }
        }
    }
}

/// Defines property tests: each `fn` becomes a `#[test]` running the body
/// over generated inputs.
#[macro_export]
macro_rules! proptest {
    // Entry with an inner config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Internal: expand each test fn.
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), __config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property body, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} != {:?}): {}",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case, drawing fresh inputs instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_bound_their_values(x in 3usize..10, f in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(v in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(v == 10 || v == 20 || v == 30, "v = {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_index() {
        super::run_property("always_fails", ProptestConfig::with_cases(4), |_| {
            Err(super::TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}

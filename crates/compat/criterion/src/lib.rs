//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment is offline, so the micro-benchmark API surface
//! used by this workspace is implemented here: [`Criterion`] with
//! `bench_function`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — per-benchmark warm-up followed by
//! timed samples, reporting min/median/mean wall time per iteration — but
//! the harness honours `--bench` style invocation and an optional name
//! filter argument, so `cargo bench` works end to end.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave the same
/// in this stand-in: setup runs un-timed before every routine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: route each through its own setup.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations.
    timings: Vec<Duration>,
}

/// Target wall time spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(800);
/// Target wall time spent warming up one benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::new(),
        }
    }

    /// Runs `routine` repeatedly, timing each invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < WARMUP_BUDGET && warm_iters < 10_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        let budgeted = if per_iter.is_zero() {
            self.samples
        } else {
            (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)) as usize
        };
        let n = budgeted
            .clamp(1, self.samples.max(1) * 100)
            .max(self.samples.min(10));
        self.timings.clear();
        self.timings.reserve(n);
        for _ in 0..n {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
        }
    }

    /// Runs `routine` over fresh values produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let per_iter = warm_start.elapsed();
        let budgeted = if per_iter.is_zero() {
            self.samples
        } else {
            (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)) as usize
        };
        let n = budgeted.clamp(1, self.samples.max(1));
        self.timings.clear();
        self.timings.reserve(n);
        for _ in 0..n {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark harness handle passed to every target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour `cargo bench -- <filter>`: the first free argument that
        // is not a harness flag filters benchmark names by substring.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configures a measurement time. Accepted for API compatibility; the
    /// stand-in uses a fixed internal budget.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let mut timings = bencher.timings;
        if timings.is_empty() {
            println!("{name:<44} (no samples collected)");
            return self;
        }
        timings.sort_unstable();
        let min = timings[0];
        let median = timings[timings.len() / 2];
        let total: Duration = timings.iter().sum();
        let mean = total / timings.len() as u32;
        println!(
            "{name:<44} time: [min {} | median {} | mean {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            timings.len()
        );
        self
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(3u64 + 4));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut bencher = Bencher::new(4);
        bencher.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(!bencher.timings.is_empty());
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("yes".into()),
        };
        let mut ran = false;
        c.bench_function("no-match", |_b| ran = true);
        assert!(!ran);
        c.bench_function("yes-match", |b| {
            b.iter(|| 1u32);
            ran = true;
        });
        assert!(ran);
    }
}

// Seeded violations for the `slice-index` rule (scanned with
// `panic_free` set).
fn frame(buf: &[u8], lens: &[usize]) -> u8 {
    let first = buf[0];
    let window = &buf[4..12];
    let n = lens[first as usize];
    window[n]
}

// `.get(...)` is the approved shape and must not fire:
fn frame_ok(buf: &[u8]) -> Option<u8> {
    buf.get(0).copied()
}

// Declarations and literals are not index expressions and must not fire:
fn types() -> [u8; 4] {
    let arr: [u8; 4] = [1, 2, 3, 4];
    arr
}

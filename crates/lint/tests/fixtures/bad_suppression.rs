// Malformed suppressions: each line here must yield a `suppression`
// meta-finding, and the violations must still fire.
use std::collections::HashMap; // pblint: allow(hash-iter)

fn stamp() -> std::time::Instant {
    // pblint: allow(wall-clok) -- typo'd rule name
    std::time::Instant::now()
}

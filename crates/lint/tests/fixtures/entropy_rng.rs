// Seeded violations for the `entropy-rng` rule.
fn seeds() {
    let a = rand::thread_rng();
    let b = rand::rngs::StdRng::from_entropy();
    let c = rand::rngs::OsRng;
    let mut buf = [0u8; 8];
    getrandom(&mut buf);
    let _ = (a, b, c, buf);
}

// Deterministic seeding is the approved idiom and must not fire:
fn approved() {
    let _rng = rand::rngs::StdRng::seed_from_u64(42);
}

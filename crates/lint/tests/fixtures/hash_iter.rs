// Seeded violations for the `hash-iter` rule (scanned as data by the
// integration tests, never compiled).
use std::collections::HashMap;
use std::collections::HashSet;

fn emit(order: &HashMap<String, u64>) -> Vec<u64> {
    let dedup: HashSet<u64> = order.values().copied().collect();
    dedup.into_iter().collect()
}

// In a string or comment the token is data, not a use: HashMap.
const DOC: &str = "HashMap iteration order is arbitrary";

// Violations confined to `#[cfg(test)]` code: tests may panic and use
// HashMap freely, so this fixture must scan clean.
pub fn shipped(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn inside_tests_anything_goes() {
        let mut m = HashMap::new();
        m.insert("k", std::time::Instant::now());
        assert!(m.get("k").copied().unwrap().elapsed().as_secs() < 1);
    }
}

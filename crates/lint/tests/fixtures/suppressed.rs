// Every violation in this fixture carries a valid scoped suppression;
// the integration tests assert the file scans clean.
use std::collections::HashMap; // pblint: allow(hash-iter) -- fixture: same-line form

fn stamp() -> std::time::Instant {
    // pblint: allow(wall-clock) -- fixture: own-line form applies to the
    // next code line even across a wrapped comment.
    std::time::Instant::now()
}

fn decode(bytes: &[u8]) -> u8 {
    // pblint: allow(panic-policy, slice-index) -- fixture: multi-rule list
    bytes[0] + bytes.first().unwrap()
}

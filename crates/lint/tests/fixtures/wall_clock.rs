// Seeded violations for the `wall-clock` rule.
use std::time::{Instant, SystemTime};

fn stamp() -> (Instant, SystemTime) {
    let a = Instant::now();
    let b = SystemTime::now();
    (a, b)
}

fn elapsed_named() -> std::time::Instant {
    std::time::Instant::now()
}

// Seeded violations for the `panic-policy` rule (scanned with
// `panic_free` set, as if this were a codec decode path).
fn decode(bytes: &[u8]) -> u64 {
    let head = bytes.first().unwrap();
    let tail = bytes.last().expect("nonempty");
    if *head > *tail {
        panic!("backwards");
    }
    match head {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        _ => u64::from(*head),
    }
}

// The fixed-width conversion idiom is carved out and must not fire:
fn word(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"))
}

// Error propagation is the approved shape and must not fire:
fn decode_ok(bytes: &[u8]) -> Option<u64> {
    bytes.first().map(|b| u64::from(*b))
}

// pblint: allow-file(slice-index) -- fixture: file-wide suppression
fn frames(buf: &[u8]) -> u8 {
    buf[0] + buf[1] + buf[2]
}

// Other rules still apply; this must fire despite the allow-file above.
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

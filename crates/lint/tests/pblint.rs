//! Integration tests: the seeded-violation fixture corpus, suppression
//! behaviour, format-spec drift detection by mutation, and the
//! workspace-clean gate the CI job relies on.

use std::fs;
use std::path::{Path, PathBuf};

use perfbug_lint::config::FileClass;
use perfbug_lint::{config, rules, run_workspace, scan, spec, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scans a fixture under a synthetic workspace-relative name and class.
fn lint_fixture(name: &str, class: FileClass) -> Vec<Finding> {
    let rel = format!("crates/demo/src/{name}");
    let file = scan::scan_source(&rel, &fixture(name));
    rules::check_file(&file, class)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

const OUTPUT_CRITICAL: FileClass = FileClass {
    output_critical: true,
    timing_allowed: false,
    panic_free: false,
};
const PANIC_FREE: FileClass = FileClass {
    output_critical: false,
    timing_allowed: false,
    panic_free: true,
};
const PLAIN: FileClass = FileClass {
    output_critical: false,
    timing_allowed: false,
    panic_free: false,
};

#[test]
fn hash_iter_fixture_fires_only_on_code_uses() {
    let findings = lint_fixture("hash_iter.rs", OUTPUT_CRITICAL);
    assert_eq!(
        rules_of(&findings),
        ["hash-iter"; 4].to_vec(),
        "{findings:?}"
    );
    // The trailing string/comment mentions must not fire: every finding
    // sits in the `use`/signature/body lines (3..=7).
    assert!(
        findings.iter().all(|f| (3..=7).contains(&f.line)),
        "{findings:?}"
    );
    // Outside an output-critical file the rule is inapplicable.
    assert!(lint_fixture("hash_iter.rs", PLAIN).is_empty());
}

#[test]
fn wall_clock_fixture_fires_unless_allowlisted() {
    let findings = lint_fixture("wall_clock.rs", PLAIN);
    assert_eq!(
        rules_of(&findings),
        ["wall-clock"; 3].to_vec(),
        "{findings:?}"
    );
    let allowed = FileClass {
        timing_allowed: true,
        ..PLAIN
    };
    assert!(lint_fixture("wall_clock.rs", allowed).is_empty());
}

#[test]
fn entropy_rng_fixture_fires_everywhere_but_not_on_seeded() {
    let findings = lint_fixture("entropy_rng.rs", PLAIN);
    assert_eq!(
        rules_of(&findings),
        ["entropy-rng"; 4].to_vec(),
        "{findings:?}"
    );
    // seed_from_u64(42) is the approved idiom.
    assert!(findings.iter().all(|f| f.line < 13), "{findings:?}");
}

#[test]
fn panic_policy_fixture_fires_with_try_into_carveout() {
    let findings = lint_fixture("panic_policy.rs", PANIC_FREE);
    let panics: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "panic-policy")
        .collect();
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented! — and
    // NOT the `try_into().expect("8 bytes")` conversion.
    assert_eq!(panics.len(), 6, "{findings:?}");
    assert!(panics.iter().all(|f| f.line != 20), "{findings:?}");
    // In a non-panic-free file the rule is inapplicable.
    assert!(lint_fixture("panic_policy.rs", PLAIN).is_empty());
}

#[test]
fn slice_index_fixture_fires_on_reads_not_types() {
    let findings = lint_fixture("slice_index.rs", PANIC_FREE);
    assert_eq!(
        rules_of(&findings),
        ["slice-index"; 4].to_vec(),
        "{findings:?}"
    );
    // `.get(0)`, `[u8; 4]` types and array literals stay silent.
    assert!(findings.iter().all(|f| f.line <= 8), "{findings:?}");
}

#[test]
fn valid_suppressions_silence_their_rule() {
    let class = FileClass {
        output_critical: true,
        timing_allowed: false,
        panic_free: true,
    };
    let findings = lint_fixture("suppressed.rs", class);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allow_file_scopes_to_one_rule_only() {
    let findings = lint_fixture("allow_file.rs", PANIC_FREE);
    // slice-index is suppressed file-wide; the wall-clock read still fires.
    assert_eq!(rules_of(&findings), vec!["wall-clock"], "{findings:?}");
}

#[test]
fn malformed_suppressions_are_findings_and_do_not_suppress() {
    let class = FileClass {
        output_critical: true,
        timing_allowed: false,
        panic_free: false,
    };
    let findings = lint_fixture("bad_suppression.rs", class);
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    // Both malformed directives are reported, and both underlying
    // violations still fire.
    assert_eq!(
        rules,
        vec!["hash-iter", "suppression", "suppression", "wall-clock"],
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "suppression" && f.message.contains("reason")),
        "missing-reason diagnostic: {findings:?}"
    );
}

#[test]
fn cfg_test_modules_are_exempt() {
    let class = FileClass {
        output_critical: true,
        timing_allowed: false,
        panic_free: true,
    };
    let findings = lint_fixture("test_module.rs", class);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------
// format-spec drift, by mutating the real spec and the real constants
// ---------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn real_doc() -> String {
    fs::read_to_string(workspace_root().join("docs/FORMAT.md")).expect("read FORMAT.md")
}

fn real_code() -> String {
    fs::read_to_string(workspace_root().join("crates/core/src/persist.rs"))
        .expect("read persist.rs")
}

#[test]
fn format_spec_is_clean_on_the_real_pair() {
    let findings = spec::check_format_spec(&real_doc(), &real_code());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn format_spec_detects_doc_drift() {
    // The spec says the fixed header is 53 bytes; claim 54.
    let doc = real_doc().replace("is 53 bytes", "is 54 bytes");
    let findings = spec::check_format_spec(&doc, &real_code());
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "format-spec" && f.message.contains("header")),
        "{findings:?}"
    );
}

#[test]
fn format_spec_detects_code_drift() {
    let code = real_code().replace(
        "pub const FORMAT_VERSION: u32 = 3;",
        "pub const FORMAT_VERSION: u32 = 4;",
    );
    assert_ne!(code, real_code(), "mutation must apply");
    let findings = spec::check_format_spec(&real_doc(), &code);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "format-spec" && f.message.contains("version")),
        "{findings:?}"
    );
}

#[test]
fn format_spec_detects_a_vanished_anchor() {
    let doc = real_doc().replace("offset basis", "starting basis");
    let findings = spec::check_format_spec(&doc, &real_code());
    assert!(
        findings.iter().any(|f| f.message.contains("anchor")),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------
// the CI gate
// ---------------------------------------------------------------------

#[test]
fn workspace_is_clean() {
    let run = run_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        run.is_clean(),
        "pblint findings in the workspace:\n{}",
        run.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(run.files_scanned > 50, "scanned {}", run.files_scanned);
}

#[test]
fn every_policed_path_exists() {
    // A renamed file must not silently drop out of its invariant scope.
    let root = workspace_root();
    for rel in config::OUTPUT_CRITICAL
        .iter()
        .chain(config::TIMING_ALLOWED)
        .chain(config::PANIC_FREE)
    {
        assert!(root.join(rel).is_file(), "policy lists missing file {rel}");
    }
}

#[test]
fn deny_all_fails_on_a_seeded_workspace() {
    // End-to-end: a throwaway workspace holding one fixture violation
    // must make `pblint --deny-all` exit 1 and name the finding.
    let tmp = std::env::temp_dir().join(format!("pblint-e2e-{}", std::process::id()));
    let _ = fs::remove_dir_all(&tmp);
    let demo_src = tmp.join("crates/demo/src");
    fs::create_dir_all(&demo_src).expect("mkdir demo");
    fs::create_dir_all(tmp.join("crates/core/src")).expect("mkdir core");
    fs::create_dir_all(tmp.join("docs")).expect("mkdir docs");
    fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("ws manifest");
    fs::write(tmp.join("crates/demo/Cargo.toml"), "[package]\n").expect("demo manifest");
    fs::write(demo_src.join("lib.rs"), fixture("wall_clock.rs")).expect("seed violation");
    // Real spec pair + docs so format-spec and env-registry stay clean.
    fs::write(tmp.join("docs/FORMAT.md"), real_doc()).expect("copy FORMAT.md");
    fs::write(tmp.join("crates/core/src/persist.rs"), real_code()).expect("copy persist.rs");
    fs::copy(workspace_root().join("README.md"), tmp.join("README.md")).expect("copy README");
    for rel in [
        "crates/core/src/orchestrate/mod.rs",
        "crates/core/src/orchestrate/remote.rs",
        "crates/core/src/serve.rs",
        "crates/bench/src/lib.rs",
    ] {
        let dst = tmp.join(rel);
        fs::create_dir_all(dst.parent().expect("parent")).expect("mkdir");
        fs::copy(workspace_root().join(rel), &dst).expect("copy PERFBUG_* read sites");
    }

    let json = tmp.join("report.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_pblint"))
        .args(["--deny-all", "--root"])
        .arg(&tmp)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("run pblint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[wall-clock]"), "stdout:\n{stdout}");
    let report = fs::read_to_string(&json).expect("json written even on failure");
    assert!(report.contains("\"clean\": false"), "{report}");
    fs::remove_dir_all(&tmp).expect("cleanup");
}

#[test]
fn cli_list_rules_matches_the_rulebook() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_pblint"))
        .arg("--list-rules")
        .output()
        .expect("run pblint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for rule in rules::RULE_IDS {
        assert!(stdout.contains(rule), "missing {rule} in: {stdout}");
    }
}

//! A lightweight Rust source scanner: no `syn`, no parser — a line-level
//! lexer that is just precise enough for invariant linting.
//!
//! For every source line it produces:
//!
//! * `code` — the line with comments *and* string/char-literal contents
//!   masked to spaces, so token searches (`HashMap`, `.unwrap()`, …)
//!   cannot match inside prose or message strings;
//! * `with_strings` — comments masked but string contents intact, for
//!   rules that inspect literals (the `PERFBUG_*` env-var registry);
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item
//!   (test code is exempt from the production-invariant rules);
//! * the `// pblint: allow(...)` suppressions that apply to the line.
//!
//! The lexer understands line and nested block comments, plain / raw /
//! byte string literals, char literals vs. lifetimes, and carries its
//! state across lines. It does not need to be a full lexer: anything it
//! mis-masks shows up as a false positive that a scoped suppression can
//! silence — never as silent acceptance of real output.

use std::collections::BTreeSet;

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// Comments and string/char contents masked to spaces.
    pub code: String,
    /// Comments masked, string contents kept.
    pub with_strings: String,
    /// Line-comment text (suppression comments live here).
    pub comment: String,
    /// Inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Rules suppressed on this line via `pblint: allow`.
    pub allowed: BTreeSet<String>,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Scanned lines, in order.
    pub lines: Vec<Line>,
    /// Rules suppressed for the whole file via `pblint: allow-file`.
    pub allowed_file: BTreeSet<String>,
    /// Malformed suppression comments: (1-based line, what was wrong).
    pub bad_suppressions: Vec<(usize, String)>,
}

impl SourceFile {
    /// Whether `rule` is suppressed at `line_idx` (0-based).
    pub fn is_allowed(&self, rule: &str, line_idx: usize) -> bool {
        self.allowed_file.contains(rule) || self.lines[line_idx].allowed.contains(rule)
    }
}

/// Lexer state carried across lines.
enum State {
    Code,
    /// Nested block comment depth.
    Block(u32),
    /// Inside a normal (escaped) string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`.
    RawStr(u32),
}

/// Scans `content` (the text of the file at `rel`) into a [`SourceFile`].
pub fn scan_source(rel: &str, content: &str) -> SourceFile {
    let mut state = State::Code;
    let mut raw_lines: Vec<Line> = Vec::new();

    for line in content.lines() {
        raw_lines.push(mask_line(line, &mut state));
    }

    mark_test_regions(&mut raw_lines);

    let mut file = SourceFile {
        rel: rel.to_string(),
        lines: raw_lines,
        allowed_file: BTreeSet::new(),
        bad_suppressions: Vec::new(),
    };
    apply_suppressions(&mut file);
    file
}

/// Masks one line under the running lexer `state`.
fn mask_line(line: &str, state: &mut State) -> Line {
    let chars: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut with_strings = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;

    // Pushes a masked char (string/comment content) to the outputs.
    macro_rules! mask {
        ($keep_in_strings:expr, $c:expr) => {{
            code.push(' ');
            if $keep_in_strings {
                with_strings.push($c);
            } else {
                with_strings.push(' ');
            }
        }};
    }

    while i < chars.len() {
        match state {
            State::Block(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    if *depth == 0 {
                        *state = State::Code;
                    }
                    mask!(false, ' ');
                    mask!(false, ' ');
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    mask!(false, ' ');
                    mask!(false, ' ');
                    i += 2;
                } else {
                    mask!(false, ' ');
                    i += 1;
                }
            }
            State::Str => {
                if chars[i] == '\\' {
                    mask!(true, chars[i]);
                    if let Some(&next) = chars.get(i + 1) {
                        mask!(true, next);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if chars[i] == '"' {
                    *state = State::Code;
                    code.push('"');
                    with_strings.push('"');
                    i += 1;
                } else {
                    mask!(true, chars[i]);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if chars[i] == '"' && closes_raw(&chars, i, *hashes) {
                    let h = *hashes as usize;
                    *state = State::Code;
                    code.push('"');
                    with_strings.push('"');
                    for _ in 0..h {
                        code.push('#');
                        with_strings.push('#');
                    }
                    i += 1 + h;
                } else {
                    mask!(true, chars[i]);
                    i += 1;
                }
            }
            State::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    comment = chars[i + 2..].iter().collect();
                    for _ in i..chars.len() {
                        code.push(' ');
                        with_strings.push(' ');
                    }
                    break;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = State::Block(1);
                    mask!(false, ' ');
                    mask!(false, ' ');
                    i += 2;
                } else if let Some(consumed) = raw_string_start(&chars, i) {
                    // r"..." / r#"..."# / br"..." / b"..." prefixes.
                    let (skip, hashes, is_raw) = consumed;
                    for k in 0..skip {
                        let pc = chars[i + k];
                        code.push(pc);
                        with_strings.push(pc);
                    }
                    *state = if is_raw {
                        State::RawStr(hashes)
                    } else {
                        State::Str
                    };
                    i += skip;
                } else if c == '"' {
                    *state = State::Str;
                    code.push('"');
                    with_strings.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs. lifetime.
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.push('\'');
                        with_strings.push('\'');
                        for _ in i + 1..end {
                            mask!(false, ' ');
                        }
                        code.push('\'');
                        with_strings.push('\'');
                        i = end + 1;
                    } else {
                        code.push('\'');
                        with_strings.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    with_strings.push(c);
                    i += 1;
                }
            }
        }
    }

    Line {
        code,
        with_strings,
        comment,
        in_test: false,
        allowed: BTreeSet::new(),
    }
}

/// Whether the `"` at `i` closes a raw string requiring `hashes` hashes.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

/// Detects a raw/byte string opener at `i`. Returns
/// `(chars consumed through the opening quote, hash count, is_raw)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, u32, bool)> {
    // Must not be the tail of an identifier (`number"..."` is not a
    // raw-string prefix).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let is_raw = chars.get(j) == Some(&'r');
    if is_raw {
        j += 1;
        let mut hashes = 0u32;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some((j - i + 1, hashes, true));
        }
        return None;
    }
    // b"..." (plain byte string).
    if j > i && chars.get(j) == Some(&'"') {
        return Some((j - i + 1, 0, false));
    }
    None
}

/// If the `'` at `i` opens a char literal, returns the index of its
/// closing quote; `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escape: find the closing quote within a short window
            // (covers \n, \', \u{...}).
            (i + 3..(i + 12).min(chars.len())).find(|&k| chars[k] == '\'' && chars[k - 1] != '\\')
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

/// Marks lines inside `#[cfg(test)]` items (test modules and functions)
/// by tracking brace depth through the masked code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut test_depth: Option<i64> = None;

    for line in lines.iter_mut() {
        if test_depth.is_some() {
            line.in_test = true;
        }
        if line.code.contains("#[cfg(test)]") {
            pending_attr = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending_attr = false;
                        line.in_test = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_depth {
                        if depth < d {
                            test_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Parses `pblint: allow(...)` / `allow-file(...)` comments and attaches
/// them to the lines (or file) they govern.
fn apply_suppressions(file: &mut SourceFile) {
    // (rules, 0-based line of the comment, own-line?)
    let mut parsed: Vec<(BTreeSet<String>, usize, bool, bool)> = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        let Some(pos) = line.comment.find("pblint:") else {
            continue;
        };
        let directive = line.comment[pos + "pblint:".len()..].trim();
        let own_line = line.code.trim().is_empty();
        match parse_allow(directive) {
            Ok((rules, is_file)) => parsed.push((rules, idx, own_line, is_file)),
            Err(why) => file.bad_suppressions.push((idx + 1, why)),
        }
    }

    for (rules, idx, own_line, is_file) in parsed {
        if is_file {
            file.allowed_file.extend(rules);
        } else if own_line {
            // Applies to the next line that has code on it.
            if let Some(target) = file
                .lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(i, _)| i)
            {
                file.lines[target].allowed.extend(rules);
            }
        } else {
            file.lines[idx].allowed.extend(rules);
        }
    }
}

/// Parses the text after `pblint:`. Accepts
/// `allow(<rule>[, <rule>]*) -- <reason>` and the `allow-file` variant;
/// the reason is mandatory.
fn parse_allow(directive: &str) -> Result<(BTreeSet<String>, bool), String> {
    let (is_file, rest) = if let Some(r) = directive.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = directive.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "unknown pblint directive {directive:?} (expected allow(...) or allow-file(...))"
        ));
    };
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.split_once(')'))
        .ok_or_else(|| "allow requires a parenthesised rule list".to_string())?;
    let (rule_list, tail) = inner;
    let rules: BTreeSet<String> = rule_list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow lists no rules".to_string());
    }
    for rule in &rules {
        if !crate::rules::RULE_IDS.contains(&rule.as_str()) {
            return Err(format!("unknown rule {rule:?} in allow(...)"));
        }
    }
    let tail = tail.trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err("allow requires a reason: `-- <why this is sound>`".to_string());
    }
    Ok((rules, is_file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let f = scan_source("x.rs", "let a = \"HashMap\"; // HashMap here\nlet b = 1;");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].with_strings.contains("HashMap"));
        assert_eq!(f.lines[0].comment.trim(), "HashMap here");
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = scan_source(
            "x.rs",
            "let a = r#\"panic!()\"#; let c = '\\''; let l: &'a str;",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("&'a str"), "{}", f.lines[0].code);
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let f = scan_source(
            "x.rs",
            "/* outer /* panic!() */\nstill comment */ let x = 1;",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[1].code.contains("let x = 1;"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}";
        let f = scan_source("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppressions_attach_to_lines() {
        let src = "// pblint: allow(hash-iter) -- scripted test map\nlet m = HashMap::new();\nlet n = 1; // pblint: allow(wall-clock) -- poll loop\n";
        let f = scan_source("x.rs", src);
        assert!(f.is_allowed("hash-iter", 1));
        assert!(f.is_allowed("wall-clock", 2));
        assert!(!f.is_allowed("hash-iter", 2));
    }

    #[test]
    fn bad_suppressions_are_reported() {
        let f = scan_source("x.rs", "let a = 1; // pblint: allow(hash-iter)\n");
        assert_eq!(f.bad_suppressions.len(), 1, "reason is mandatory");
        let f = scan_source("x.rs", "let a = 1; // pblint: allow(no-such-rule) -- x\n");
        assert_eq!(f.bad_suppressions.len(), 1, "unknown rule rejected");
    }

    #[test]
    fn allow_file_covers_every_line() {
        let src = "// pblint: allow-file(slice-index) -- bounds-proptested\nlet a = buf[1..2];\n";
        let f = scan_source("x.rs", src);
        assert!(f.is_allowed("slice-index", 1));
    }
}

//! Workspace policy: which files each rule class applies to, and the
//! declared `PERFBUG_*` environment-variable registry.
//!
//! Paths are workspace-relative with forward slashes. The lists are
//! deliberately explicit — adding a file to an invariant scope is a
//! reviewed decision, recorded here and in `docs/LINTS.md`.

/// Files whose bytes or text end up in deterministic output: the PBCL
/// codec, the orchestrator run report, detection reports and the cache
/// CLIs. `HashMap`/`HashSet` iteration order must not reach any of them
/// ([`hash-iter`](crate::rules)).
pub const OUTPUT_CRITICAL: &[&str] = &[
    "crates/core/src/persist.rs",
    "crates/core/src/orchestrate/mod.rs",
    "crates/core/src/orchestrate/remote.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/report.rs",
    "crates/core/src/tracecache.rs",
    "crates/bench/src/lib.rs",
    "crates/bench/src/specs.rs",
    "crates/bench/src/bin/pbcol.rs",
    "crates/bench/src/bin/pborch.rs",
    "crates/bench/src/bin/pbeval.rs",
    "crates/bench/src/bin/pbserve.rs",
    "crates/bench/src/bin/pbsub.rs",
];

/// Files allowed to read wall clocks (`Instant::now`, `SystemTime::now`):
/// the benchmark harness, the execution engine's timing fields (zeroed
/// before any identity comparison), supervision timeouts and the timing
/// CLI. Everything else must not read time.
pub const TIMING_ALLOWED: &[&str] = &[
    "crates/compat/criterion/src/lib.rs",
    "crates/core/src/exec.rs",
    "crates/core/src/orchestrate/mod.rs",
    "crates/core/src/orchestrate/remote.rs",
    "crates/bench/src/bin/speed_test.rs",
];

/// Panic-free zones: codec decode/recovery paths and orchestrator
/// supervision. A panic here aborts the supervisor or turns a corrupt
/// cache file into a crash instead of a reported `Err`, making
/// retry/resume logic unreachable.
pub const PANIC_FREE: &[&str] = &[
    "crates/core/src/persist.rs",
    "crates/core/src/orchestrate/mod.rs",
    "crates/core/src/orchestrate/remote.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/tracecache.rs",
    "crates/workloads/src/wire.rs",
];

/// Rule applicability of one scanned file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// In [`OUTPUT_CRITICAL`].
    pub output_critical: bool,
    /// In [`TIMING_ALLOWED`].
    pub timing_allowed: bool,
    /// In [`PANIC_FREE`].
    pub panic_free: bool,
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    FileClass {
        output_critical: OUTPUT_CRITICAL.contains(&rel),
        timing_allowed: TIMING_ALLOWED.contains(&rel),
        panic_free: PANIC_FREE.contains(&rel),
    }
}

/// One declared `PERFBUG_*` environment variable.
#[derive(Debug, Clone, Copy)]
pub struct EnvVar {
    /// The exact variable name.
    pub name: &'static str,
    /// What it does (mirrors README / docs).
    pub purpose: &'static str,
}

/// The registry of every `PERFBUG_*` variable the workspace may read.
/// [`env-registry`](crate::rules) fails on any `PERFBUG_*` spelling in
/// code that is not listed here, on registry entries no code mentions,
/// and on entries absent from README/docs.
pub const ENV_REGISTRY: &[EnvVar] = &[
    EnvVar {
        name: "PERFBUG_SCALE",
        purpose: "bench harness scale: quick (default) or paper",
    },
    EnvVar {
        name: "PERFBUG_CACHE_DIR",
        purpose: "collection cache directory for evaluation targets",
    },
    EnvVar {
        name: "PERFBUG_TRACE_DIR",
        purpose: "persistent workload-trace cache directory (.pbtr files)",
    },
    EnvVar {
        name: "PERFBUG_SHARD",
        purpose: "run a bench target as shard worker <i>/<n>",
    },
    EnvVar {
        name: "PERFBUG_SHARD_ONLY",
        purpose: "worker-protocol flag: collect the shard, skip assembly/evaluation",
    },
    EnvVar {
        name: "PERFBUG_ORCH_WORKERS",
        purpose: "run a bench target as an orchestrated pass with <n> workers",
    },
    EnvVar {
        name: "PERFBUG_ORCH_SHARDS",
        purpose: "orchestrated shard count (default 2x workers)",
    },
    EnvVar {
        name: "PERFBUG_ORCH_MAX_ATTEMPTS",
        purpose: "orchestrated per-shard attempt budget (default 3)",
    },
    EnvVar {
        name: "PERFBUG_ORCH_TIMEOUT_SECS",
        purpose: "orchestrated per-shard timeout (default none)",
    },
    EnvVar {
        name: "PERFBUG_ORCH_FAULT",
        purpose: "orchestrator fault injection (CI guard test hook)",
    },
    EnvVar {
        name: "PERFBUG_ORCH_HOSTS",
        purpose: "fan shards out to pborch worker-daemon endpoints (host:port list)",
    },
    EnvVar {
        name: "PERFBUG_SERVE_ADDR",
        purpose: "pbserve/pbsub service address (default 127.0.0.1:7411)",
    },
    EnvVar {
        name: "PERFBUG_SERVE_STORE",
        purpose: "pbserve multi-tenant corpus store root directory",
    },
    EnvVar {
        name: "PERFBUG_FUZZ_SEED",
        purpose: "pbeval: fuzzer seed (fallback for --seed)",
    },
    EnvVar {
        name: "PERFBUG_FUZZ_FAMILIES",
        purpose: "pbeval: comma-separated bug families or `all` (fallback for --families)",
    },
    EnvVar {
        name: "PERFBUG_FUZZ_COUNT",
        purpose: "pbeval: variants per family (fallback for --count)",
    },
    EnvVar {
        name: "PERFBUG_FUZZ_BAND",
        purpose: "pbeval: severity band min[..max] (fallback for --band)",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_lists() {
        assert!(classify("crates/core/src/persist.rs").output_critical);
        assert!(classify("crates/core/src/persist.rs").panic_free);
        assert!(classify("crates/core/src/exec.rs").timing_allowed);
        let none = classify("crates/ml/src/gbt.rs");
        assert!(!none.output_critical && !none.timing_allowed && !none.panic_free);
    }

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        for (i, v) in ENV_REGISTRY.iter().enumerate() {
            assert!(v.name.starts_with("PERFBUG_"), "{}", v.name);
            assert!(
                ENV_REGISTRY[i + 1..].iter().all(|w| w.name != v.name),
                "duplicate {}",
                v.name
            );
        }
    }
}

//! `pblint` — run the workspace invariant rules from the command line.
//!
//! ```text
//! pblint [--deny-all] [--json <path>] [--root <dir>] [--list-rules]
//! ```
//!
//! * `--deny-all` — exit 1 on any finding (the CI gate). Without it the
//!   run is advisory: findings print, exit stays 0.
//! * `--json <path>` — also write the machine-readable report (written
//!   on success too, so CI can upload it unconditionally).
//! * `--root <dir>` — workspace root; default: walk up from the current
//!   directory to the first `Cargo.toml` declaring `[workspace]`.
//! * `--list-rules` — print the rule ids and exit.
//!
//! Exit codes: 0 clean (or advisory), 1 findings under `--deny-all`,
//! 2 usage or environment error.

use std::path::PathBuf;
use std::process::ExitCode;

use perfbug_lint::{find_workspace_root, rules, run_workspace};

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a directory"),
            },
            "--list-rules" => {
                for rule in rules::RULE_IDS {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "pblint [--deny-all] [--json <path>] [--root <dir>] [--list-rules]\n\
                     Workspace invariant checks; rulebook in docs/LINTS.md."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found (pass --root)"),
    };

    let run = match run_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("pblint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, run.to_json()) {
            eprintln!("pblint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for finding in &run.findings {
        println!("{finding}");
    }
    println!(
        "pblint: {} finding(s) over {} files{}",
        run.findings.len(),
        run.files_scanned,
        if deny_all {
            " (deny-all)"
        } else {
            " (advisory)"
        }
    );

    if deny_all && !run.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!(
        "pblint: {why}\nusage: pblint [--deny-all] [--json <path>] [--root <dir>] [--list-rules]"
    );
    ExitCode::from(2)
}

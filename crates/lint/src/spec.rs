//! `format-spec`: the constants `docs/FORMAT.md` promises must be the
//! constants `crates/core/src/persist.rs` declares.
//!
//! The spec is the contract external tooling reads; the codec is what
//! actually writes bytes. Each side is parsed independently — the doc
//! through sentence anchors, the source through `const` declarations
//! (with a small `+`/parenthesis evaluator so layout constants written
//! as field sums stay self-describing) — and any disagreement, or a
//! missing anchor, is a finding. Renaming a constant or rewording an
//! anchored sentence without updating the other side fails CI.

use std::collections::BTreeMap;

use crate::Finding;

/// A value promised by the spec: either a number or an ASCII tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecValue {
    /// Numeric constant (sizes, versions, hash parameters).
    Num(u64),
    /// ASCII tag (the magic).
    Tag(String),
}

impl std::fmt::Display for SpecValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecValue::Num(n) => write!(f, "{n} (0x{n:x})"),
            SpecValue::Tag(s) => write!(f, "{s:?}"),
        }
    }
}

const DOC_PATH: &str = "docs/FORMAT.md";
const CODE_PATH: &str = "crates/core/src/persist.rs";

/// Checks FORMAT.md (`doc`) against persist.rs (`code`). Both are passed
/// as strings so the drift tests can feed mutated copies.
pub fn check_format_spec(doc: &str, code: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let doc_vals = parse_format_md(doc, &mut findings);
    let code_vals = parse_persist_consts(code, &mut findings);

    // (spec key, source constant) pairs under one contract.
    let contract: &[(&str, &str)] = &[
        ("magic", "MAGIC"),
        ("format version", "FORMAT_VERSION"),
        ("legacy format version", "LEGACY_FORMAT_VERSION"),
        ("header bytes", "HEADER_LEN"),
        ("trailer bytes", "TRAILER_LEN"),
        ("chunk frame bytes", "CHUNK_FRAME_LEN"),
        ("chunk overhead bytes", "CHUNK_OVERHEAD"),
        ("fnv offset basis", "FNV_BASIS"),
        ("fnv prime", "FNV_PRIME"),
    ];

    for (doc_key, const_name) in contract {
        match (doc_vals.get(*doc_key), code_vals.get(*const_name)) {
            (Some(d), Some(c)) if d != c => findings.push(Finding {
                rule: "format-spec",
                file: DOC_PATH.to_string(),
                line: 0,
                message: format!(
                    "spec drift: FORMAT.md says {doc_key} = {d}, but persist.rs \
                     declares {const_name} = {c}"
                ),
            }),
            (Some(_), Some(_)) => {}
            // Extraction failures were already reported by the parsers.
            _ => {}
        }
    }
    findings
}

/// Extracts the anchored constants from FORMAT.md. A missing anchor is
/// itself a finding: the sentence the check keys on is part of the spec.
fn parse_format_md(doc: &str, findings: &mut Vec<Finding>) -> BTreeMap<&'static str, SpecValue> {
    // Collapse whitespace so anchors can span line wraps.
    let flat: String = doc.split_whitespace().collect::<Vec<_>>().join(" ");
    let mut vals = BTreeMap::new();
    let miss = |findings: &mut Vec<Finding>, key: &str, anchor: &str| {
        findings.push(Finding {
            rule: "format-spec",
            file: DOC_PATH.to_string(),
            line: 0,
            message: format!(
                "FORMAT.md anchor for {key} not found (expected a sentence containing \
                 {anchor:?}) — the spec and this check must move together"
            ),
        });
    };

    match tag_after(&flat, "magic: the ASCII bytes \"") {
        Some(t) => {
            vals.insert("magic", SpecValue::Tag(t));
        }
        None => miss(findings, "magic", "magic: the ASCII bytes \""),
    }
    match num_after(&flat, "(this spec: ") {
        Some(n) => {
            vals.insert("format version", SpecValue::Num(n));
        }
        None => miss(findings, "format version", "(this spec: "),
    }
    match num_after(&flat, "`LEGACY_FORMAT_VERSION` ") {
        Some(n) => {
            vals.insert("legacy format version", SpecValue::Num(n));
        }
        None => miss(
            findings,
            "legacy format version",
            "`LEGACY_FORMAT_VERSION` ",
        ),
    }
    match num_between(&flat, "The fixed header is ", " bytes") {
        Some(n) => {
            vals.insert("header bytes", SpecValue::Num(n));
        }
        None => miss(findings, "header bytes", "The fixed header is <n> bytes"),
    }
    match num_between(&flat, "the fixed trailer is the last ", " bytes") {
        Some(n) => {
            vals.insert("trailer bytes", SpecValue::Num(n));
        }
        None => miss(
            findings,
            "trailer bytes",
            "the fixed trailer is the last <n> bytes",
        ),
    }
    match num_between(&flat, "The ", "-byte frame plus the") {
        Some(n) => {
            vals.insert("chunk frame bytes", SpecValue::Num(n));
        }
        None => miss(findings, "chunk frame bytes", "The <n>-byte frame plus the"),
    }
    match num_between(&flat, "per-chunk overhead ", " bytes") {
        Some(n) => {
            vals.insert("chunk overhead bytes", SpecValue::Num(n));
        }
        None => miss(
            findings,
            "chunk overhead bytes",
            "per-chunk overhead <n> bytes",
        ),
    }
    match hex_after(&flat, "offset basis `0x") {
        Some(n) => {
            vals.insert("fnv offset basis", SpecValue::Num(n));
        }
        None => miss(findings, "fnv offset basis", "offset basis `0x"),
    }
    match hex_after(&flat, "prime `0x") {
        Some(n) => {
            vals.insert("fnv prime", SpecValue::Num(n));
        }
        None => miss(findings, "fnv prime", "prime `0x"),
    }
    vals
}

fn tag_after(flat: &str, anchor: &str) -> Option<String> {
    let rest = &flat[flat.find(anchor)? + anchor.len()..];
    let end = rest.find('"')?;
    (!rest[..end].is_empty()).then(|| rest[..end].to_string())
}

fn num_after(flat: &str, anchor: &str) -> Option<u64> {
    let rest = &flat[flat.find(anchor)? + anchor.len()..];
    take_digits(rest)
}

/// First number appearing between `pre` and a following `post`.
fn num_between(flat: &str, pre: &str, post: &str) -> Option<u64> {
    let mut from = 0;
    while let Some(p) = flat[from..].find(pre) {
        let start = from + p + pre.len();
        let rest = &flat[start..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && rest[digits.len()..].starts_with(post) {
            return digits.parse().ok();
        }
        from = start;
    }
    None
}

fn hex_after(flat: &str, anchor: &str) -> Option<u64> {
    let rest = &flat[flat.find(anchor)? + anchor.len()..];
    let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
    (!hex.is_empty()).then(|| u64::from_str_radix(&hex, 16).ok())?
}

fn take_digits(rest: &str) -> Option<u64> {
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The `const` names the contract needs from persist.rs.
const CONST_NAMES: &[&str] = &[
    "MAGIC",
    "FORMAT_VERSION",
    "LEGACY_FORMAT_VERSION",
    "HEADER_LEN",
    "TRAILER_LEN",
    "CHUNK_FRAME_LEN",
    "CHUNK_OVERHEAD",
    "FNV_BASIS",
    "FNV_PRIME",
];

/// Extracts the contract constants from persist.rs, evaluating `+` /
/// parenthesis expressions (layout constants are written as field sums)
/// and resolving references between them.
fn parse_persist_consts(code: &str, findings: &mut Vec<Finding>) -> BTreeMap<String, SpecValue> {
    // Raw initializer text per constant.
    let mut raw: BTreeMap<String, String> = BTreeMap::new();
    for line in code.lines() {
        let t = line.trim();
        if t.starts_with("//") || t.starts_with('*') {
            continue;
        }
        let t = t
            .strip_prefix("pub(crate) ")
            .or_else(|| t.strip_prefix("pub "))
            .unwrap_or(t);
        let Some(rest) = t.strip_prefix("const ") else {
            continue;
        };
        let Some((name, after)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if !CONST_NAMES.contains(&name) {
            continue;
        }
        if let Some((_, init)) = after.split_once('=') {
            if let Some(init) = init.trim().strip_suffix(';') {
                raw.insert(name.to_string(), init.trim().to_string());
            }
        }
    }

    let mut vals: BTreeMap<String, SpecValue> = BTreeMap::new();
    // MAGIC is an ASCII byte-string literal, not arithmetic.
    if let Some(init) = raw.get("MAGIC") {
        if let Some(tag) = init
            .split("b\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .filter(|t| !t.is_empty())
        {
            vals.insert("MAGIC".into(), SpecValue::Tag(tag.to_string()));
        }
    }
    // Two resolution passes cover one level of const-to-const reference
    // (CHUNK_OVERHEAD = CHUNK_FRAME_LEN + 8).
    for _ in 0..2 {
        for name in CONST_NAMES {
            if *name == "MAGIC" || vals.contains_key(*name) {
                continue;
            }
            if let Some(init) = raw.get(*name) {
                if let Some(n) = eval_expr(init, &vals) {
                    vals.insert((*name).to_string(), SpecValue::Num(n));
                }
            }
        }
    }

    for name in CONST_NAMES {
        if !vals.contains_key(*name) {
            findings.push(Finding {
                rule: "format-spec",
                file: CODE_PATH.to_string(),
                line: 0,
                message: format!(
                    "could not extract const {name} from persist.rs — if it was renamed or \
                     restructured, update crates/lint/src/spec.rs and docs/FORMAT.md together"
                ),
            });
        }
    }
    vals
}

/// Evaluates `+`-and-parenthesis expressions over integer literals
/// (decimal, hex, `_` separators) and already-resolved const names.
fn eval_expr(expr: &str, env: &BTreeMap<String, SpecValue>) -> Option<u64> {
    let mut total = 0u64;
    for part in split_top_level(expr)? {
        let part = part.trim();
        let v = if let Some(inner) = part.strip_prefix('(').and_then(|p| p.strip_suffix(')')) {
            eval_expr(inner, env)?
        } else if let Some(hex) = part.strip_prefix("0x") {
            u64::from_str_radix(&hex.replace('_', ""), 16).ok()?
        } else if part.chars().all(|c| c.is_ascii_digit() || c == '_') && !part.is_empty() {
            part.replace('_', "").parse().ok()?
        } else {
            match env.get(part)? {
                SpecValue::Num(n) => *n,
                SpecValue::Tag(_) => return None,
            }
        };
        total = total.checked_add(v)?;
    }
    Some(total)
}

/// Splits on `+` at parenthesis depth zero.
fn split_top_level(expr: &str) -> Option<Vec<String>> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    for c in expr.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
                cur.push(c);
            }
            '+' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if depth != 0 {
        return None;
    }
    parts.push(cur);
    Some(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
magic: the ASCII bytes "PBCL" (50 42 43 4C)
format version       u32 LE   (this spec: 3)
The fixed header is 53 bytes; the fixed trailer is the last 16 bytes.
The 21-byte frame plus the 8-byte checksum make the fixed per-chunk
overhead 29 bytes.
offset basis `0xcbf29ce484222325`, prime `0x00000100000001b3`.
the read-compatible `LEGACY_FORMAT_VERSION` 2, which dispatches
"#;

    const CODE: &str = r#"
pub const FORMAT_VERSION: u32 = 3;
pub const LEGACY_FORMAT_VERSION: u32 = 2;
const MAGIC: [u8; 4] = *b"PBCL";
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const HEADER_LEN: usize = 4 + 4 + 4 + 1 + 8 + (4 + 4 + 8 + 8 + 8);
pub(crate) const CHUNK_FRAME_LEN: usize = 1 + 8 + 4 + 8;
const CHUNK_OVERHEAD: usize = CHUNK_FRAME_LEN + 8;
pub(crate) const TRAILER_LEN: usize = 16;
"#;

    #[test]
    fn matching_spec_and_code_are_clean() {
        assert_eq!(check_format_spec(DOC, CODE), vec![]);
    }

    #[test]
    fn constant_drift_fires() {
        let drifted = CODE.replace("FORMAT_VERSION: u32 = 3", "FORMAT_VERSION: u32 = 4");
        let findings = check_format_spec(DOC, &drifted);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("format version")),
            "{findings:?}"
        );
    }

    #[test]
    fn doc_drift_fires() {
        let drifted = DOC.replace(
            "The fixed header is 53 bytes",
            "The fixed header is 61 bytes",
        );
        let findings = check_format_spec(&drifted, CODE);
        assert!(
            findings.iter().any(|f| f.message.contains("header bytes")),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_anchor_fires() {
        let gutted = DOC.replace("offset basis", "starting seed");
        let findings = check_format_spec(&gutted, CODE);
        assert!(
            findings.iter().any(|f| f.message.contains("anchor")),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_const_fires() {
        let gutted = CODE.replace("FNV_PRIME", "FNV_MULT");
        let findings = check_format_spec(DOC, &gutted);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("could not extract const FNV_PRIME")),
            "{findings:?}"
        );
    }

    #[test]
    fn expression_evaluation() {
        let env = BTreeMap::new();
        assert_eq!(
            eval_expr("4 + 4 + 4 + 1 + 8 + (4 + 4 + 8 + 8 + 8)", &env),
            Some(53)
        );
        assert_eq!(eval_expr("0xff", &env), Some(255));
        assert_eq!(eval_expr("1 + (2", &env), None);
    }
}

//! The line-level invariant rules.
//!
//! Every rule is deny-by-default inside its scope (`config.rs`) and can
//! only be silenced by a scoped suppression carrying a reason
//! (`// pblint: allow(<rule>) -- <why>`). Rules operate on masked code
//! (comments and string contents blanked), so prose can never trip them.

use crate::config::FileClass;
use crate::scan::SourceFile;
use crate::Finding;

/// Every rule id `pblint` knows (suppression comments are validated
/// against this list).
pub const RULE_IDS: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "entropy-rng",
    "panic-policy",
    "slice-index",
    "format-spec",
    "env-registry",
    "suppression",
];

/// Whether the byte before/after a match keeps it a whole word.
fn word_at(code: &str, pos: usize, len: usize) -> bool {
    let bytes = code.as_bytes();
    let before = pos
        .checked_sub(1)
        .map(|i| bytes[i] as char)
        .is_none_or(|c| !c.is_alphanumeric() && c != '_');
    let after = bytes
        .get(pos + len)
        .map(|&b| b as char)
        .is_none_or(|c| !c.is_alphanumeric() && c != '_');
    before && after
}

/// All positions where `needle` occurs in `hay` as a whole word.
fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let pos = from + p;
        if word_at(hay, pos, needle.len()) {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// Pushes a finding unless the line suppresses the rule.
fn emit(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    idx: usize,
    rule: &'static str,
    message: String,
) {
    if !file.is_allowed(rule, idx) {
        findings.push(Finding {
            rule,
            file: file.rel.clone(),
            line: idx + 1,
            message,
        });
    }
}

/// Runs every line rule applicable to `file` under `class`.
pub fn check_file(file: &SourceFile, class: FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();

    for (line, why) in &file.bad_suppressions {
        findings.push(Finding {
            rule: "suppression",
            file: file.rel.clone(),
            line: *line,
            message: format!("malformed pblint suppression: {why}"),
        });
    }

    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;

        // hash-iter: unordered containers in output-critical files.
        if class.output_critical {
            for token in ["HashMap", "HashSet"] {
                if !word_positions(code, token).is_empty() {
                    emit(
                        &mut findings,
                        file,
                        idx,
                        "hash-iter",
                        format!(
                            "{token} in an output-critical file: iteration order can leak \
                             nondeterminism into encoded/serialized output — use BTreeMap/BTreeSet \
                             or sort before emitting"
                        ),
                    );
                }
            }
        }

        // wall-clock: time reads outside the timing allowlist.
        if !class.timing_allowed {
            for token in ["Instant::now", "SystemTime::now"] {
                if code.contains(token) {
                    emit(
                        &mut findings,
                        file,
                        idx,
                        "wall-clock",
                        format!(
                            "{token} outside the timing allowlist: wall-clock reads feeding \
                             corpus or report state break bit-identical replay"
                        ),
                    );
                }
            }
        }

        // entropy-rng: non-seeded randomness anywhere.
        for token in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
            if !word_positions(code, token).is_empty() {
                emit(
                    &mut findings,
                    file,
                    idx,
                    "entropy-rng",
                    format!(
                        "{token}: entropy-seeded RNG construction — every generator must be \
                         seeded through a deterministic entry point"
                    ),
                );
            }
        }

        if class.panic_free {
            // panic-policy: aborts in decode/supervision paths must be Errs.
            // `try_into().expect(...)` after an explicit length slice is the
            // one recognized infallible idiom (fixed-width byte conversion).
            let infallible_width = code.contains("try_into");
            for token in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if code.contains(token) && !(infallible_width && token == ".expect(") {
                    emit(
                        &mut findings,
                        file,
                        idx,
                        "panic-policy",
                        format!(
                            "{token} in a panic-free zone: decode and supervision paths must \
                             return Err so retry/resume logic stays reachable"
                        ),
                    );
                }
            }

            // slice-index: direct indexing can panic; decode paths must
            // bounds-check. Same try_into carve-out as above.
            if !infallible_width {
                for (pos, _) in code.match_indices('[') {
                    let prev = code[..pos].trim_end().chars().next_back();
                    if matches!(prev, Some(c) if c.is_alphanumeric() || c == '_' || c == ']' || c == ')')
                    {
                        emit(
                            &mut findings,
                            file,
                            idx,
                            "slice-index",
                            "direct indexing in a panic-free zone: an out-of-range index \
                             panics instead of returning Err — bounds-check or use .get()"
                                .to_string(),
                        );
                        break;
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn class_all() -> FileClass {
        FileClass {
            output_critical: true,
            timing_allowed: false,
            panic_free: true,
        }
    }

    fn rules_fired(src: &str, class: FileClass) -> Vec<&'static str> {
        let file = scan_source("fixture.rs", src);
        let mut rules: Vec<&'static str> = check_file(&file, class)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        rules.dedup();
        rules
    }

    #[test]
    fn hash_iter_fires_only_in_output_critical_files() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_fired(src, class_all()), vec!["hash-iter"]);
        assert!(rules_fired(src, FileClass::default()).is_empty());
    }

    #[test]
    fn wall_clock_respects_allowlist() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules_fired(src, FileClass::default()), vec!["wall-clock"]);
        let allowed = FileClass {
            timing_allowed: true,
            ..FileClass::default()
        };
        assert!(rules_fired(src, allowed).is_empty());
    }

    #[test]
    fn entropy_rng_fires_everywhere() {
        assert_eq!(
            rules_fired("let r = rand::thread_rng();\n", FileClass::default()),
            vec!["entropy-rng"]
        );
    }

    #[test]
    fn panic_policy_fires_in_panic_free_zones_only() {
        let src = "let v = maybe.unwrap();\n";
        assert_eq!(rules_fired(src, class_all()), vec!["panic-policy"]);
        assert!(rules_fired(src, FileClass::default()).is_empty());
    }

    #[test]
    fn try_into_width_conversion_is_recognized_infallible() {
        let src = "let n = u64::from_le_bytes(b[0..8].try_into().expect(\"8 bytes\"));\n";
        assert!(rules_fired(src, class_all()).is_empty());
    }

    #[test]
    fn slice_index_fires_and_skips_literals_and_attrs() {
        assert_eq!(
            rules_fired("let x = buf[i];\n", class_all()),
            vec!["slice-index"]
        );
        assert!(rules_fired(
            "#[derive(Debug)]\nlet v = vec![1, 2];\nlet t: [u8; 4];\n",
            class_all()
        )
        .is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "let v = maybe.unwrap_or(3).max(other.unwrap_or_default());\n";
        assert!(rules_fired(src, class_all()).is_empty());
    }

    #[test]
    fn suppression_silences_one_line() {
        let src = "let v = maybe.unwrap(); // pblint: allow(panic-policy) -- startup contract\n";
        assert!(rules_fired(src, class_all()).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); let m = HashMap::new(); }\n}\n";
        assert!(rules_fired(src, class_all()).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "let s = \"call .unwrap() on a HashMap\"; // Instant::now in prose\n";
        assert!(rules_fired(src, class_all()).is_empty());
    }
}

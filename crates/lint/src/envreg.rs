//! `env-registry`: every `PERFBUG_*` environment variable the workspace
//! mentions must be declared in [`crate::config::ENV_REGISTRY`], still
//! referenced by code, and documented in README/docs.
//!
//! The rule scans string literals in comment-stripped source (read
//! sites, `.env(...)` write sites, help text and `const NAME: &str`
//! indirections all spell the variable inside a literal), so an
//! undeclared knob cannot slip in through any of those shapes.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::ENV_REGISTRY;
use crate::scan::SourceFile;
use crate::Finding;

/// Where the registry itself lives (stale-entry findings point here).
const REGISTRY_PATH: &str = "crates/lint/src/config.rs";

/// Extracts every `PERFBUG_*` spelling from one scanned file:
/// `(name, 1-based line)` of the first occurrence per line.
pub fn env_mentions(file: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let text = &line.with_strings;
        let mut from = 0;
        while let Some(p) = text[from..].find("PERFBUG_") {
            let start = from + p;
            let name: String = text[start..]
                .chars()
                .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            from = start + name.len();
            // Normalize a family-glob spelling (`PERFBUG_ORCH_*`) to its
            // prefix; an unregistered prefix still fires, just under a
            // readable name.
            let name = name.trim_end_matches('_');
            if name != "PERFBUG" {
                out.push((name.to_string(), idx + 1));
            }
        }
    }
    out
}

/// Runs the registry check over every scanned file plus the workspace
/// documentation (`docs_text` = README.md and docs/*.md concatenated).
pub fn check_env_registry(files: &[SourceFile], docs_text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registered: BTreeSet<&str> = ENV_REGISTRY.iter().map(|v| v.name).collect();
    // name -> first (file, line) seen, for stale-entry accounting.
    let mut seen: BTreeMap<String, (String, usize)> = BTreeMap::new();

    for file in files {
        for (name, line) in env_mentions(file) {
            // `trim_end_matches('_')` may shorten a registered name's
            // family prefix; only exact names count as uses.
            seen.entry(name.clone())
                .or_insert_with(|| (file.rel.clone(), line));
            if !registered.contains(name.as_str()) && !file.is_allowed("env-registry", line - 1) {
                findings.push(Finding {
                    rule: "env-registry",
                    file: file.rel.clone(),
                    line,
                    message: format!(
                        "{name} is not in the PERFBUG_* registry \
                         ({REGISTRY_PATH}) — declare it there and document it in README/docs"
                    ),
                });
            }
        }
    }

    for var in ENV_REGISTRY {
        if !seen.contains_key(var.name) {
            findings.push(Finding {
                rule: "env-registry",
                file: REGISTRY_PATH.to_string(),
                line: 0,
                message: format!(
                    "stale registry entry: no code mentions {} — remove it or the code \
                     that should read it",
                    var.name
                ),
            });
        }
        if !docs_text.contains(var.name) {
            findings.push(Finding {
                rule: "env-registry",
                file: REGISTRY_PATH.to_string(),
                line: 0,
                message: format!(
                    "{} is registered but undocumented — add it to README.md or docs/",
                    var.name
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn docs_all() -> String {
        ENV_REGISTRY
            .iter()
            .map(|v| v.name)
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn code_all() -> Vec<SourceFile> {
        let body: String = ENV_REGISTRY
            .iter()
            .map(|v| format!("let _ = std::env::var(\"{}\");\n", v.name))
            .collect();
        vec![scan_source("crates/x/src/lib.rs", &body)]
    }

    #[test]
    fn registered_documented_vars_are_clean() {
        assert!(check_env_registry(&code_all(), &docs_all()).is_empty());
    }

    #[test]
    fn unregistered_read_site_fires() {
        let mut files = code_all();
        files.push(scan_source(
            "crates/x/src/evil.rs",
            "let _ = std::env::var(\"PERFBUG_BOGUS\");\n",
        ));
        let findings = check_env_registry(&files, &docs_all());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("PERFBUG_BOGUS"));
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn stale_and_undocumented_entries_fire() {
        let findings = check_env_registry(&code_all(), "no vars documented here");
        assert_eq!(
            findings.len(),
            ENV_REGISTRY.len(),
            "one per undocumented var"
        );
        let findings = check_env_registry(&[], &docs_all());
        assert_eq!(findings.len(), ENV_REGISTRY.len(), "one per stale var");
    }

    #[test]
    fn family_glob_in_literal_fires() {
        let mut files = code_all();
        files.push(scan_source(
            "crates/x/src/help.rs",
            "let help = \"see the PERFBUG_ORCH_* knobs\";\n",
        ));
        let findings = check_env_registry(&files, &docs_all());
        assert!(
            findings.iter().any(|f| f.message.contains("PERFBUG_ORCH ")),
            "a family glob in a literal is not a registered variable: {findings:?}"
        );
    }
}

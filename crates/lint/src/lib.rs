//! `pblint` — workspace invariant checking for the performance-bug
//! detection reproduction.
//!
//! The repository's core guarantees — bit-identical corpora under any
//! worker count or partition, crash-recoverable codec state, a byte-level
//! `PBCL` spec in `docs/FORMAT.md` — are enforced dynamically by
//! proptests and CI fault-injection guards. This crate adds the *static*
//! side: a hand-rolled, offline source scanner (no `syn`, no network)
//! that machine-checks the invariants a randomized test only catches by
//! luck:
//!
//! * **`hash-iter`** — `HashMap`/`HashSet` in output-critical files
//!   (codec, run reports, cache CLIs), where iteration order leaks into
//!   serialized bytes;
//! * **`wall-clock`** — `Instant::now`/`SystemTime::now` outside the
//!   timing allowlist;
//! * **`entropy-rng`** — entropy-seeded RNG construction anywhere;
//! * **`panic-policy`** / **`slice-index`** — `unwrap`/`expect`/`panic!`
//!   and unguarded indexing in panic-free zones (codec decode/recovery,
//!   orchestrator supervision), which must return `Err` so retry/resume
//!   logic stays reachable;
//! * **`format-spec`** — the constant tables in `docs/FORMAT.md` against
//!   the constants `persist.rs` actually declares;
//! * **`env-registry`** — every `PERFBUG_*` spelling against a declared
//!   registry plus README/docs.
//!
//! Scoped suppression: `// pblint: allow(<rule>) -- <reason>` on (or
//! directly above) the offending line; `allow-file` for a whole file.
//! The reason is mandatory. See `docs/LINTS.md` for the full rulebook
//! and `src/bin/pblint.rs` for the CLI CI runs (`pblint --deny-all`).

#![forbid(unsafe_code)]

pub mod config;
pub mod envreg;
pub mod rules;
pub mod scan;
pub mod spec;

use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation (or meta-finding) at a workspace location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line; 0 for file- or workspace-level findings.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        }
    }
}

/// The outcome of one whole-workspace lint pass.
#[derive(Debug)]
pub struct LintRun {
    /// Findings sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Rust files scanned by the line rules.
    pub files_scanned: usize,
}

impl LintRun {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable report (stable field order, findings sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"pblint_version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collects `.rs` files under `dir` (sorted for determinism),
/// skipping `target/` and lint fixture corpora.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "fixtures" {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every rule over the workspace at `root`. Returns `Err` only for
/// environmental problems (unreadable tree); findings are data.
pub fn run_workspace(root: &Path) -> Result<LintRun, String> {
    // Production scope: crate sources and binaries. The line rules run
    // here (tests/benches/examples panic and measure time by design).
    let mut prod_files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(crate_entries) = fs::read_dir(&crates_dir) else {
        return Err(format!("no crates/ directory under {}", root.display()));
    };
    let mut crate_dirs: Vec<_> = crate_entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    let walk_srcs = |dir: &Path, out: &mut Vec<PathBuf>| {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, out);
        }
    };
    for crate_dir in &crate_dirs {
        // Self-exemption: the linter's own sources hold rule tokens,
        // suppression-syntax examples and fixture variable names as
        // *data*; scanning them is all false positives (and the registry
        // in config.rs would count as a "mention" of every variable,
        // blinding the stale-entry check). rustfmt/clippy still cover it.
        if crate_dir.file_name().and_then(|n| n.to_str()) == Some("lint") {
            continue;
        }
        if crate_dir.join("Cargo.toml").is_file() {
            walk_srcs(crate_dir, &mut prod_files);
        }
        // Nested layout: crates/compat/<name>.
        if crate_dir.is_dir() && !crate_dir.join("Cargo.toml").is_file() {
            let Ok(nested) = fs::read_dir(crate_dir) else {
                continue;
            };
            let mut nested: Vec<_> = nested.flatten().map(|e| e.path()).collect();
            nested.sort();
            for n in nested {
                if n.join("Cargo.toml").is_file() {
                    walk_srcs(&n, &mut prod_files);
                }
            }
        }
    }
    walk_srcs(root, &mut prod_files);

    // Wider scope for the env-var registry: tests, benches and examples
    // read knobs too.
    let mut env_files = prod_files.clone();
    for extra in ["tests", "examples"] {
        let dir = root.join(extra);
        if dir.is_dir() {
            collect_rs(&dir, &mut env_files);
        }
    }
    for crate_dir in &crate_dirs {
        if crate_dir.file_name().and_then(|n| n.to_str()) == Some("lint") {
            continue;
        }
        for extra in ["tests", "benches"] {
            let dir = crate_dir.join(extra);
            if dir.is_dir() {
                collect_rs(&dir, &mut env_files);
            }
        }
    }

    let mut findings: Vec<Finding> = Vec::new();

    // Line rules over production sources.
    let mut scanned_prod = Vec::with_capacity(prod_files.len());
    for path in &prod_files {
        let content =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let file = scan::scan_source(&rel, &content);
        findings.extend(rules::check_file(&file, config::classify(&rel)));
        scanned_prod.push(file);
    }

    // Env-registry over the wider scope (reuse already-scanned files).
    let mut scanned_env = scanned_prod;
    for path in &env_files {
        let rel = rel_path(root, path);
        if scanned_env.iter().any(|f| f.rel == rel) {
            continue;
        }
        let content =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        scanned_env.push(scan::scan_source(&rel, &content));
    }
    let docs_text = read_docs(root);
    findings.extend(envreg::check_env_registry(&scanned_env, &docs_text));

    // Format-spec conformance.
    let doc = fs::read_to_string(root.join("docs/FORMAT.md"))
        .map_err(|e| format!("read docs/FORMAT.md: {e}"))?;
    let code = fs::read_to_string(root.join("crates/core/src/persist.rs"))
        .map_err(|e| format!("read crates/core/src/persist.rs: {e}"))?;
    findings.extend(spec::check_format_spec(&doc, &code));

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintRun {
        findings,
        files_scanned: scanned_env.len(),
    })
}

/// README.md plus every `docs/*.md`, concatenated (documentation-presence
/// checks search this).
fn read_docs(root: &Path) -> String {
    let mut text = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let docs = root.join("docs");
    let mut md: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(&docs) {
        md.extend(entries.flatten().map(|e| e.path()));
    }
    md.sort();
    for p in md {
        if p.extension().and_then(|e| e.to_str()) == Some("md") {
            text.push('\n');
            text.push_str(&fs::read_to_string(&p).unwrap_or_default());
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_ish() {
        let run = LintRun {
            findings: vec![Finding {
                rule: "hash-iter",
                file: "a/b.rs".into(),
                line: 3,
                message: "say \"no\"".into(),
            }],
            files_scanned: 1,
        };
        let json = run.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"no\\\""));
        let clean = LintRun {
            findings: vec![],
            files_scanned: 1,
        };
        assert!(clean.to_json().contains("\"clean\": true"));
    }

    #[test]
    fn display_formats_with_and_without_line() {
        let f = Finding {
            rule: "format-spec",
            file: "docs/FORMAT.md".into(),
            line: 0,
            message: "drift".into(),
        };
        assert_eq!(f.to_string(), "docs/FORMAT.md: [format-spec] drift");
    }
}

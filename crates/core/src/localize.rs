//! Bug-localisation hints from probe-level detection signals (§VII).
//!
//! The paper's future-work section proposes using the probes that trigger
//! detection as *symptoms* for localisation: characteristics shared by the
//! loudest probes (dominant instruction types, memory- vs
//! compute-boundness) point at candidate units. This module implements
//! that analysis: per-probe workload traits are correlated with the
//! stage-2 γ⁺ vector, producing a ranked list of suspicious probes and of
//! workload traits that best explain the detection.

use perfbug_ml::metrics::pearson;
use perfbug_workloads::{Inst, Opcode, ALL_OPCODES};

/// Workload-composition traits of one probe trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeTraits {
    /// Named trait values, all in `[0, 1]`.
    pub values: Vec<(String, f64)>,
}

/// Computes composition traits from a probe trace: per-opcode fractions
/// plus aggregate memory/control/compute boundness.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn traits_of(trace: &[Inst]) -> ProbeTraits {
    assert!(!trace.is_empty(), "cannot profile an empty trace");
    let n = trace.len() as f64;
    let mut values = Vec::new();
    for op in ALL_OPCODES {
        let count = trace.iter().filter(|i| i.opcode == op).count();
        if count > 0 {
            values.push((format!("{op:?}").to_lowercase(), count as f64 / n));
        }
    }
    let memory = trace.iter().filter(|i| i.opcode.is_memory()).count() as f64 / n;
    let control = trace.iter().filter(|i| i.opcode.is_control()).count() as f64 / n;
    values.push(("memory_bound".to_string(), memory));
    values.push(("control_bound".to_string(), control));
    values.push((
        "compute_bound".to_string(),
        (1.0 - memory - control).max(0.0),
    ));
    let fp = trace
        .iter()
        .filter(|i| {
            matches!(
                i.opcode,
                Opcode::FpAdd | Opcode::FpMul | Opcode::FpDiv | Opcode::VecFp
            )
        })
        .count() as f64
        / n;
    values.push(("fp_intensity".to_string(), fp));
    ProbeTraits { values }
}

/// One localisation report.
#[derive(Debug, Clone)]
pub struct Localization {
    /// Probes ranked by γ⁺, loudest first: `(probe id, γ⁺)`.
    pub ranked_probes: Vec<(String, f64)>,
    /// Traits ranked by correlation with γ⁺ across probes:
    /// `(trait, Pearson r)`. Positive r means "louder probes have more of
    /// this trait" — the localisation clue.
    pub trait_correlations: Vec<(String, f64)>,
}

impl Localization {
    /// A one-line human-readable hypothesis built from the top trait.
    pub fn hypothesis(&self) -> String {
        match self.trait_correlations.first() {
            Some((name, r)) if *r > 0.3 => format!(
                "detection concentrates on {name}-heavy probes (r = {r:.2}); \
                 inspect the unit servicing them"
            ),
            _ => "no single workload trait explains the detection; \
                  suspect a broadly-visible (untargeted) defect"
                .to_string(),
        }
    }
}

/// Correlates probe traits with the stage-2 γ⁺ signal.
///
/// `probes` pairs each probe id with its traits; `gamma_pos` is the γ⁺
/// vector of the design under test, aligned with `probes`.
///
/// # Panics
///
/// Panics if lengths differ or fewer than three probes are supplied (no
/// meaningful correlation below that).
pub fn localize(probes: &[(String, ProbeTraits)], gamma_pos: &[f64]) -> Localization {
    assert_eq!(probes.len(), gamma_pos.len(), "one gamma per probe");
    assert!(
        probes.len() >= 3,
        "localisation needs at least three probes"
    );

    let mut ranked_probes: Vec<(String, f64)> = probes
        .iter()
        .zip(gamma_pos)
        .map(|((id, _), &g)| (id.clone(), g))
        .collect();
    ranked_probes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    // Collect the union of trait names.
    let mut names: Vec<String> = Vec::new();
    for (_, t) in probes {
        for (name, _) in &t.values {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    }
    let mut trait_correlations: Vec<(String, f64)> = names
        .into_iter()
        .map(|name| {
            let series: Vec<f64> = probes
                .iter()
                .map(|(_, t)| {
                    t.values
                        .iter()
                        .find(|(n, _)| n == &name)
                        .map(|(_, v)| *v)
                        .unwrap_or(0.0)
                })
                .collect();
            let r = pearson(&series, gamma_pos);
            (name, r)
        })
        .collect();
    trait_correlations.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    Localization {
        ranked_probes,
        trait_correlations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfbug_workloads::NO_REG;

    fn trace_with_xor_frac(frac: f64, n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                let mut inst = Inst::nop(0x1000 + i as u32 * 4);
                inst.opcode = if (i as f64 / n as f64) < frac {
                    Opcode::Xor
                } else {
                    Opcode::Add
                };
                inst.src1 = 1;
                inst.src2 = 2;
                inst.dst = 3;
                let _ = NO_REG;
                inst
            })
            .collect()
    }

    #[test]
    fn traits_sum_sensibly() {
        let trace = trace_with_xor_frac(0.25, 400);
        let traits = traits_of(&trace);
        let xor = traits
            .values
            .iter()
            .find(|(n, _)| n == "xor")
            .expect("xor present")
            .1;
        assert!((xor - 0.25).abs() < 1e-9);
        let compute = traits
            .values
            .iter()
            .find(|(n, _)| n == "compute_bound")
            .expect("present")
            .1;
        assert!(
            (compute - 1.0).abs() < 1e-9,
            "pure ALU trace is fully compute bound"
        );
    }

    #[test]
    fn xor_bug_localises_to_xor_trait() {
        // Probes with more XOR scream louder — the correlation must rank
        // the xor trait first.
        let probes: Vec<(String, ProbeTraits)> = (0..6)
            .map(|i| {
                let frac = i as f64 / 10.0;
                (format!("p{i}"), traits_of(&trace_with_xor_frac(frac, 300)))
            })
            .collect();
        let gammas: Vec<f64> = (0..6).map(|i| 1.0 + 2.0 * i as f64).collect();
        let loc = localize(&probes, &gammas);
        assert_eq!(loc.ranked_probes[0].0, "p5");
        let top = &loc.trait_correlations[0];
        assert_eq!(
            top.0, "xor",
            "xor must be the most correlated trait: {loc:?}"
        );
        assert!(top.1 > 0.9);
        assert!(loc.hypothesis().contains("xor"));
    }

    #[test]
    fn flat_gammas_yield_no_hypothesis() {
        let probes: Vec<(String, ProbeTraits)> = (0..4)
            .map(|i| {
                (
                    format!("p{i}"),
                    traits_of(&trace_with_xor_frac(0.1 * i as f64, 200)),
                )
            })
            .collect();
        let gammas = vec![1.0; 4];
        let loc = localize(&probes, &gammas);
        assert!(loc.hypothesis().contains("no single workload trait"));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn too_few_probes_panics() {
        let probes = vec![("a".to_string(), traits_of(&trace_with_xor_frac(0.1, 50)))];
        localize(&probes, &[1.0]);
    }
}

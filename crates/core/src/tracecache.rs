//! Persistent, fingerprinted workload-trace cache (the PBTR format).
//!
//! The collection passes of both experiments regenerate every probe's
//! instruction trace from its workload program on every pass, even though
//! the trace is *invariant* across designs and across every injected bug
//! in the current catalogues — performance bugs are timing-only (see
//! `perfbug_workloads::isa`), so the same trace is replayed everywhere.
//! This module caches those traces on disk so repeated collections (shard
//! retries, fuzz evaluations, figure regenerations) pay the trace cost
//! once per benchmark.
//!
//! ## The `.pbtr` file
//!
//! One file per (benchmark, workload scale), holding the traces of *all*
//! of that benchmark's probes at that scale, so every collection —
//! whatever its catalogue, engine roster or `max_probes` cap — shares the
//! same trace files. The layout reuses the PBCL v3 discipline from
//! [`crate::persist`] (`docs/FORMAT.md` §8): a fixed 28-byte header, one
//! meta chunk, exactly one chunk per probe (random access with O(chunk)
//! memory via [`TraceReader`], the trace sibling of
//! [`crate::persist::ProbeReader`]), a footer chunk index, and a 16-byte
//! trailer sealing the whole file with a streaming FNV-1a checksum.
//! Writes are atomic (unique sibling temp file + rename), and every read
//! path validates in the same order as PBCL: length, magic, version,
//! whole-file checksum, fingerprint, footer, chunk table, then per-chunk
//! checksum and exact payload decode.
//!
//! ## Keying and staleness
//!
//! Files are keyed by benchmark name plus a fingerprint
//! ([`trace_fingerprint`]) over the benchmark spec, the workload scale,
//! the [`TRACE_REVISION`] and the `Inst` record layout version — anything
//! that changes the generated trace changes the fingerprint, so a stale
//! file is *rejected* (and rebuilt), never silently replayed. A reader
//! additionally cross-checks the requesting probe's identity (benchmark,
//! interval, interval length, SimPoint weight) against the stored
//! per-probe metadata: a fingerprint collision still cannot serve a wrong
//! trace.
//!
//! ## Gating
//!
//! The cache is consulted only when the `PERFBUG_TRACE_DIR` environment
//! variable points at a directory ([`TraceStore::from_env`]) *and* every
//! bug in the pass's catalogue is trace-invariant
//! (`BugSpec::perturbs_trace` / `MemBugSpec::perturbs_trace` — see
//! [`crate::bugs`]). Any failure (missing file, corruption, truncation,
//! stale fingerprint, metadata mismatch) falls back to regenerating the
//! trace from the program, so a damaged cache can cost time but never
//! correctness. Regenerations are counted process-wide
//! ([`crate::exec::traces_regenerated`]); a warm pass performs zero.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use perfbug_workloads::wire::{decode_inst, encode_inst, INST_WIRE_LEN, INST_WIRE_VERSION};
use perfbug_workloads::{BenchmarkSpec, Inst, Probe, Program, WorkloadScale};

use crate::exec::note_trace_regenerated;
use crate::persist::{
    build_chunk, fnv1a, fnv1a_update, parse_chunk, ChunkEntry, Dec, Enc, PersistError, CHUNK_META,
    CHUNK_OVERHEAD, CHUNK_PROBES, FNV_BASIS, TRAILER_LEN,
};

/// File extension of trace-cache files.
pub const TRACE_FILE_EXTENSION: &str = "pbtr";

/// Environment variable gating the trace cache: when set (and non-empty),
/// collection passes whose catalogue is trace-invariant consult the store
/// rooted at this directory before calling `Probe::trace`.
pub const TRACE_DIR_ENV: &str = "PERFBUG_TRACE_DIR";

/// Magic bytes opening every trace-cache file.
const TRACE_MAGIC: [u8; 4] = *b"PBTR";

/// PBTR container format version (this spec: header/chunk/footer layout).
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Trace *content* revision: bump when trace generation semantics change
/// (program synthesis, probe extraction) without a container change. It
/// is folded into [`trace_fingerprint`] and additionally stored in the
/// header so `pbcol prune` can evict old-revision files without knowing
/// any configuration.
pub const TRACE_REVISION: u32 = 1;

/// Bytes of the fixed PBTR header:
/// `magic [u8;4] | format_version u32 | trace_revision u32 |
/// fingerprint u64 | n_probes u64`.
pub(crate) const TRACE_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 8;

// --------------------------------------------------------------------------
// Counters
// --------------------------------------------------------------------------

/// Process-wide count of trace-cache rejections: `.pbtr` files (or single
/// probe reads) that failed validation and fell back to regeneration.
static TRACE_REJECTIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of trace-cache rejections in this process so far:
/// corrupt, truncated or stale-fingerprint files (and failed per-probe
/// reads) that were discarded in favour of regenerating the trace.
pub fn trace_cache_rejections() -> u64 {
    TRACE_REJECTIONS.load(Ordering::Relaxed)
}

fn note_rejection() {
    TRACE_REJECTIONS.fetch_add(1, Ordering::Relaxed);
}

// --------------------------------------------------------------------------
// Identity and file naming
// --------------------------------------------------------------------------

/// The fingerprint of a (benchmark, workload scale) trace file: FNV-1a
/// over a canonical rendering of everything the generated traces depend
/// on. As with the collection fingerprints in [`crate::persist`], the
/// value is opaque — it is compared, never parsed.
pub fn trace_fingerprint(bench: &BenchmarkSpec, scale: &WorkloadScale) -> u64 {
    let canon = format!(
        "trace/v{TRACE_REVISION}|inst-wire/v{INST_WIRE_VERSION}x{INST_WIRE_LEN}|\
         bench={bench:?}|scale={scale:?}"
    );
    fnv1a(canon.as_bytes())
}

/// The canonical file name of a trace file:
/// `<benchmark>-trace-<fingerprint:016x>.pbtr`.
pub fn trace_file_name(benchmark: &str, fingerprint: u64) -> String {
    format!("{benchmark}-trace-{fingerprint:016x}.{TRACE_FILE_EXTENSION}")
}

/// Parses a [`trace_file_name`] back into (benchmark, fingerprint).
/// Right-to-left, so benchmark names may themselves contain `-trace-`.
pub fn parse_trace_file_name(name: &str) -> Option<(String, u64)> {
    let stem = name.strip_suffix(&format!(".{TRACE_FILE_EXTENSION}"))?;
    let (benchmark, fp_hex) = stem.rsplit_once("-trace-")?;
    if benchmark.is_empty()
        || fp_hex.len() != 16
        || !fp_hex
            .chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
    {
        return None;
    }
    let fingerprint = u64::from_str_radix(fp_hex, 16).ok()?;
    Some((benchmark.to_string(), fingerprint))
}

/// Whether `name` follows the trace temp-file grammar
/// (`<target>.pbtr.<pid>-<seq>.tmp`) used by the atomic writer.
pub fn is_trace_temp_file_name(name: &str) -> bool {
    name.ends_with(".tmp") && name.contains(&format!(".{TRACE_FILE_EXTENSION}."))
}

/// A sibling temp path unique per process and call, for atomic
/// write-then-rename publication ([`is_trace_temp_file_name`] grammar).
fn trace_temp_sibling(path: &Path) -> PathBuf {
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!(
        "{TRACE_FILE_EXTENSION}.{}-{seq}.tmp",
        std::process::id()
    ))
}

/// Saves encoded trace bytes to `path` atomically (sibling temp + rename).
fn save_trace_bytes(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = trace_temp_sibling(path);
    fs::write(&tmp, bytes)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

// --------------------------------------------------------------------------
// Header / meta / payload codec
// --------------------------------------------------------------------------

/// The decoded fixed header of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Trace content revision the file was generated under.
    pub trace_revision: u32,
    /// Fingerprint of the (benchmark, scale) the file caches.
    pub fingerprint: u64,
    /// Number of probe chunks (= probes of the benchmark at this scale).
    pub n_probes: u64,
}

fn enc_trace_header(header: &TraceHeader) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.buf.extend_from_slice(&TRACE_MAGIC);
    enc.u32(TRACE_FORMAT_VERSION);
    enc.u32(header.trace_revision);
    enc.u64(header.fingerprint);
    enc.u64(header.n_probes);
    enc.buf
}

/// Decodes and validates the fixed header at the front of `bytes`
/// (length, magic and format version — the cheap, config-free checks, so
/// tooling can classify a file without any configuration).
pub fn read_trace_header(bytes: &[u8]) -> Result<TraceHeader, PersistError> {
    let mut dec = Dec::new(bytes);
    let magic = dec.take(4)?;
    if magic != TRACE_MAGIC {
        return Err(PersistError::Corrupt("bad magic (not a PBTR file)".into()));
    }
    let version = dec.u32()?;
    if version != TRACE_FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: TRACE_FORMAT_VERSION,
        });
    }
    Ok(TraceHeader {
        trace_revision: dec.u32()?,
        fingerprint: dec.u64()?,
        n_probes: dec.u64()?,
    })
}

/// Stored per-probe identity, cross-checked against the requesting
/// [`Probe`] before a cached trace is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceProbeMeta {
    /// The probe's interval index within the profiled window.
    pub interval: u64,
    /// The probe's SimPoint weight, as raw `f64` bits (exact compare).
    pub weight_bits: u64,
}

/// The decoded meta chunk: the probe-independent identity of a trace
/// file, written once at the front so a reader knows the probe roster
/// before any trace is decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark name the traces belong to.
    pub benchmark: String,
    /// Instructions per probe interval (the workload scale).
    pub interval_len: u64,
    /// Per-probe identity, indexed by SimPoint ordinal.
    pub probes: Vec<TraceProbeMeta>,
}

fn enc_trace_meta(meta: &TraceMeta) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.str(&meta.benchmark);
    enc.u64(meta.interval_len);
    enc.usize(meta.probes.len());
    for p in &meta.probes {
        enc.u64(p.interval);
        enc.u64(p.weight_bits);
    }
    enc.buf
}

fn dec_trace_meta(payload: &[u8]) -> Result<TraceMeta, PersistError> {
    let mut dec = Dec::new(payload);
    let benchmark = dec.str()?;
    let interval_len = dec.u64()?;
    let n = dec.len()?;
    let mut probes = Vec::with_capacity(n);
    for _ in 0..n {
        probes.push(TraceProbeMeta {
            interval: dec.u64()?,
            weight_bits: dec.u64()?,
        });
    }
    if dec.pos != payload.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after trace meta",
            payload.len() - dec.pos
        )));
    }
    Ok(TraceMeta {
        benchmark,
        interval_len,
        probes,
    })
}

fn enc_trace_payload(insts: &[Inst]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.usize(insts.len());
    enc.buf.reserve(insts.len() * INST_WIRE_LEN);
    for inst in insts {
        encode_inst(inst, &mut enc.buf);
    }
    enc.buf
}

fn dec_trace_payload(payload: &[u8]) -> Result<Vec<Inst>, PersistError> {
    let mut dec = Dec::new(payload);
    let n = dec.usize()?;
    let want = n
        .checked_mul(INST_WIRE_LEN)
        .and_then(|b| b.checked_add(8))
        .ok_or_else(|| PersistError::Corrupt(format!("inst count {n} overflows")))?;
    if want != payload.len() {
        return Err(PersistError::Corrupt(format!(
            "trace payload is {} bytes but {n} records need {want}",
            payload.len()
        )));
    }
    let mut insts = Vec::with_capacity(n);
    for _ in 0..n {
        let rec = dec.take(INST_WIRE_LEN)?;
        insts.push(
            decode_inst(rec).map_err(|e| PersistError::Corrupt(format!("inst record: {e}")))?,
        );
    }
    Ok(insts)
}

fn enc_trace_footer(chunks: &[ChunkEntry]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.usize(chunks.len());
    for c in chunks {
        enc.u64(c.offset);
        enc.u64(c.len);
        enc.u8(c.kind);
        enc.u64(c.first_probe);
        enc.u32(c.n_probes);
        enc.u64(c.checksum);
    }
    enc.buf
}

fn dec_trace_footer(bytes: &[u8]) -> Result<Vec<ChunkEntry>, PersistError> {
    let mut dec = Dec::new(bytes);
    let n_chunks = dec.usize()?;
    if n_chunks > bytes.len() / 37 {
        // 37 = bytes per chunk entry; bounds the allocation below.
        return Err(PersistError::Corrupt(format!(
            "footer chunk count {n_chunks} exceeds footer size"
        )));
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        chunks.push(ChunkEntry {
            offset: dec.u64()?,
            len: dec.u64()?,
            kind: dec.u8()?,
            first_probe: dec.u64()?,
            n_probes: dec.u32()?,
            checksum: dec.u64()?,
        });
    }
    if dec.pos != bytes.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after trace footer",
            bytes.len() - dec.pos
        )));
    }
    Ok(chunks)
}

/// Validates a PBTR chunk table against the header: exactly one meta
/// chunk first (at the fixed header boundary), contiguous extents ending
/// at the footer, and one single-probe chunk per SimPoint ordinal
/// covering `0..n_probes` in order.
fn validate_trace_chunk_table(
    chunks: &[ChunkEntry],
    footer_offset: u64,
    header: &TraceHeader,
) -> Result<(), PersistError> {
    let corrupt = |why: String| PersistError::Corrupt(why);
    let first = chunks
        .first()
        .ok_or_else(|| corrupt("empty chunk table".into()))?;
    if !first.is_meta()
        || first.offset != TRACE_HEADER_LEN as u64
        || first.first_probe != 0
        || first.n_probes != 0
    {
        return Err(corrupt(format!(
            "first chunk must be the meta chunk at byte {TRACE_HEADER_LEN}"
        )));
    }
    let mut end = first.offset;
    let mut next_probe = 0u64;
    for (i, c) in chunks.iter().enumerate() {
        if c.offset != end {
            return Err(corrupt(format!(
                "chunk {i} at byte {} is not contiguous with the previous chunk (ends {end})",
                c.offset
            )));
        }
        if c.len < CHUNK_OVERHEAD as u64 {
            return Err(corrupt(format!("chunk {i} length {} is too short", c.len)));
        }
        end = c
            .offset
            .checked_add(c.len)
            .ok_or_else(|| corrupt(format!("chunk {i} extent overflows")))?;
        if i > 0 {
            if c.kind != CHUNK_PROBES || c.n_probes != 1 {
                return Err(corrupt(format!(
                    "chunk {i} is not a single-probe chunk (kind {}, {} probes)",
                    c.kind, c.n_probes
                )));
            }
            if c.first_probe != next_probe {
                return Err(corrupt(format!(
                    "chunk {i} covers probe {} (expected {next_probe})",
                    c.first_probe
                )));
            }
            next_probe = c.probe_end();
        }
    }
    if end != footer_offset {
        return Err(corrupt(format!(
            "chunks end at byte {end} but the footer starts at {footer_offset}"
        )));
    }
    if next_probe != header.n_probes {
        return Err(corrupt(format!(
            "probe chunks cover 0..{next_probe} but the header promises 0..{}",
            header.n_probes
        )));
    }
    Ok(())
}

/// Encodes a complete trace file: header, meta chunk, one chunk per
/// probe, footer chunk index and the sealing trailer. `meta.probes` and
/// `traces` must be parallel (indexed by SimPoint ordinal).
pub fn encode_trace_file(
    fingerprint: u64,
    meta: &TraceMeta,
    traces: &[Vec<Inst>],
) -> Result<Vec<u8>, PersistError> {
    if meta.probes.len() != traces.len() {
        return Err(PersistError::Corrupt(format!(
            "meta lists {} probes but {} traces were supplied",
            meta.probes.len(),
            traces.len()
        )));
    }
    let header = TraceHeader {
        trace_revision: TRACE_REVISION,
        fingerprint,
        n_probes: traces.len() as u64,
    };
    let mut buf = enc_trace_header(&header);
    let mut entries = Vec::with_capacity(1 + traces.len());
    let mut append = |buf: &mut Vec<u8>, kind, first_probe, n_probes, payload: &[u8]| {
        let (chunk, checksum) = build_chunk(kind, first_probe, n_probes, payload);
        entries.push(ChunkEntry {
            offset: buf.len() as u64,
            len: chunk.len() as u64,
            kind,
            first_probe,
            n_probes,
            checksum,
        });
        buf.extend_from_slice(&chunk);
    };
    append(&mut buf, CHUNK_META, 0, 0, &enc_trace_meta(meta));
    for (ordinal, trace) in traces.iter().enumerate() {
        append(
            &mut buf,
            CHUNK_PROBES,
            ordinal as u64,
            1,
            &enc_trace_payload(trace),
        );
    }
    let footer_offset = buf.len() as u64;
    buf.extend_from_slice(&enc_trace_footer(&entries));
    buf.extend_from_slice(&footer_offset.to_le_bytes());
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    Ok(buf)
}

// --------------------------------------------------------------------------
// TraceReader
// --------------------------------------------------------------------------

/// Random access into one `.pbtr` file with O(chunk) memory (the trace
/// sibling of [`crate::persist::ProbeReader`]).
///
/// [`TraceReader::open`] validates everything except probe payloads:
/// length, magic, version, the whole-file checksum (streamed), the
/// fingerprint (when expected), the trace revision, the footer and the
/// chunk table, and the meta chunk. [`TraceReader::read_probe`] then
/// validates the one chunk it touches (frame, checksum, index agreement,
/// exact payload decode).
#[derive(Debug)]
pub struct TraceReader {
    file: fs::File,
    file_len: u64,
    header: TraceHeader,
    chunks: Vec<ChunkEntry>,
    meta: TraceMeta,
}

impl TraceReader {
    /// Opens and validates `path`. With `Some(expected)`, a fingerprint
    /// mismatch is rejected as [`PersistError::Fingerprint`]; tooling
    /// that has no configuration passes `None` and checks the name
    /// against [`TraceHeader::fingerprint`] itself.
    pub fn open(path: &Path, expected_fingerprint: Option<u64>) -> Result<Self, PersistError> {
        let mut file = fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let min_len = (TRACE_HEADER_LEN + CHUNK_OVERHEAD + 8 + TRAILER_LEN) as u64;
        if file_len < min_len {
            return Err(PersistError::Corrupt(format!(
                "{file_len} bytes is too short for a trace file"
            )));
        }
        let mut head = vec![0u8; TRACE_HEADER_LEN];
        file.read_exact(&mut head)?;
        let header = read_trace_header(&head)?;

        // Trailer, then the streaming whole-file checksum over everything
        // before the stored seal.
        file.seek(SeekFrom::Start(file_len - TRAILER_LEN as u64))?;
        let mut trailer = [0u8; TRAILER_LEN];
        file.read_exact(&mut trailer)?;
        let mut dec = Dec::new(&trailer);
        let footer_offset = dec.u64()?;
        let stored_fnv = dec.u64()?;
        let footer_end = file_len - TRAILER_LEN as u64;
        if footer_offset < TRACE_HEADER_LEN as u64 || footer_offset > footer_end {
            return Err(PersistError::Corrupt(format!(
                "footer offset {footer_offset} is outside the file"
            )));
        }
        file.seek(SeekFrom::Start(0))?;
        let mut hash = FNV_BASIS;
        let mut remaining = file_len - 8;
        let mut buf = vec![0u8; 64 * 1024];
        while remaining > 0 {
            let want = remaining.min(buf.len() as u64) as usize;
            let slice = buf
                .get_mut(..want)
                .ok_or_else(|| PersistError::Corrupt("checksum window exceeds buffer".into()))?;
            file.read_exact(slice)?;
            hash = fnv1a_update(hash, slice);
            remaining -= want as u64;
        }
        if hash != stored_fnv {
            return Err(PersistError::Corrupt("checksum mismatch".into()));
        }
        if let Some(expected) = expected_fingerprint {
            if header.fingerprint != expected {
                return Err(PersistError::Fingerprint {
                    found: header.fingerprint,
                    expected,
                });
            }
        }
        if header.trace_revision != TRACE_REVISION {
            return Err(PersistError::Corrupt(format!(
                "trace revision {} (this build: {TRACE_REVISION})",
                header.trace_revision
            )));
        }

        // Footer and chunk table.
        let footer_len = usize::try_from(footer_end - footer_offset)
            .map_err(|_| PersistError::Corrupt("footer length overflows".into()))?;
        file.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; footer_len];
        file.read_exact(&mut footer)?;
        let chunks = dec_trace_footer(&footer)?;
        validate_trace_chunk_table(&chunks, footer_offset, &header)?;

        // Meta chunk (chunk table guarantees chunks[0] exists and is meta).
        let meta_entry = chunks
            .first()
            .copied()
            .ok_or_else(|| PersistError::Corrupt("empty chunk table".into()))?;
        let mut reader = TraceReader {
            file,
            file_len,
            header,
            chunks,
            meta: TraceMeta {
                benchmark: String::new(),
                interval_len: 0,
                probes: Vec::new(),
            },
        };
        let meta_payload = reader.read_chunk(&meta_entry)?;
        reader.meta = dec_trace_meta(&meta_payload)?;
        if reader.meta.probes.len() as u64 != header.n_probes {
            return Err(PersistError::Corrupt(format!(
                "meta lists {} probes but the header promises {}",
                reader.meta.probes.len(),
                header.n_probes
            )));
        }
        Ok(reader)
    }

    /// The validated file header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The decoded meta chunk.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Number of probes the file covers.
    pub fn n_probes(&self) -> usize {
        self.meta.probes.len()
    }

    /// The validated footer chunk index (for tooling such as
    /// `pbcol inspect`; the layout mirrors
    /// [`crate::persist::ProbeReader::chunk_index`]).
    pub fn chunk_index(&self) -> &[ChunkEntry] {
        &self.chunks
    }

    /// Reads and validates one chunk's payload (O(chunk) memory).
    fn read_chunk(&mut self, entry: &ChunkEntry) -> Result<Vec<u8>, PersistError> {
        if entry
            .offset
            .checked_add(entry.len)
            .is_none_or(|e| e > self.file_len)
        {
            return Err(PersistError::Corrupt(
                "chunk extent outside the file".into(),
            ));
        }
        let len = usize::try_from(entry.len)
            .map_err(|_| PersistError::Corrupt("chunk length overflows".into()))?;
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let mut bytes = vec![0u8; len];
        self.file.read_exact(&mut bytes)?;
        let chunk = parse_chunk(&bytes, entry.offset as usize)?;
        if chunk.len != len
            || chunk.kind != entry.kind
            || chunk.first_probe != entry.first_probe
            || chunk.n_probes != entry.n_probes
            || chunk.checksum != entry.checksum
        {
            return Err(PersistError::Corrupt(format!(
                "chunk at byte {} disagrees with the footer index",
                entry.offset
            )));
        }
        Ok(chunk.payload.to_vec())
    }

    /// Reads the trace of the probe with SimPoint ordinal `ordinal`.
    pub fn read_probe(&mut self, ordinal: usize) -> Result<Vec<Inst>, PersistError> {
        let entry = self
            .chunks
            .get(1 + ordinal)
            .copied()
            .filter(|c| c.kind == CHUNK_PROBES && c.first_probe == ordinal as u64)
            .ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "probe {ordinal} is outside the file's 0..{} range",
                    self.header.n_probes
                ))
            })?;
        let payload = self.read_chunk(&entry)?;
        dec_trace_payload(&payload)
    }
}

/// Fully verifies one `.pbtr` file: everything [`TraceReader::open`]
/// validates plus an exact payload decode of every probe chunk. Returns
/// the header and the total instruction count (for tooling output).
pub fn verify_trace_file(path: &Path) -> Result<(TraceHeader, u64), PersistError> {
    let mut reader = TraceReader::open(path, None)?;
    let mut total_insts = 0u64;
    for ordinal in 0..reader.n_probes() {
        total_insts += reader.read_probe(ordinal)?.len() as u64;
    }
    Ok((*reader.header(), total_insts))
}

// --------------------------------------------------------------------------
// TraceStore
// --------------------------------------------------------------------------

/// A directory of `.pbtr` trace files, keyed by benchmark and
/// fingerprint.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// A store rooted at `dir` (created lazily on the first build).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TraceStore { dir: dir.into() }
    }

    /// The store the environment selects: `Some` iff [`TRACE_DIR_ENV`]
    /// (`PERFBUG_TRACE_DIR`) is set and non-empty.
    pub fn from_env() -> Option<Self> {
        std::env::var(TRACE_DIR_ENV)
            .ok()
            .filter(|v| !v.is_empty())
            .map(TraceStore::new)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path of the trace file for `bench` at `scale`.
    pub fn trace_path(&self, bench: &BenchmarkSpec, scale: &WorkloadScale) -> PathBuf {
        self.dir
            .join(trace_file_name(bench.name, trace_fingerprint(bench, scale)))
    }

    /// Opens the trace file for `bench` at `scale`, building (or
    /// rebuilding) it first when it is missing, stale or damaged. The
    /// build regenerates every probe trace of the benchmark from
    /// `program` and publishes the file atomically, so a reader never
    /// observes a partial file and a concurrent builder loses nothing
    /// worse than duplicated work.
    pub fn open_or_build(
        &self,
        bench: &BenchmarkSpec,
        scale: &WorkloadScale,
        program: &Program,
    ) -> Result<TraceReader, PersistError> {
        let fingerprint = trace_fingerprint(bench, scale);
        let path = self.dir.join(trace_file_name(bench.name, fingerprint));
        match TraceReader::open(&path, Some(fingerprint)) {
            Ok(reader) => return Ok(reader),
            Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => note_rejection(),
        }
        self.build(bench, scale, program, fingerprint, &path)?;
        TraceReader::open(&path, Some(fingerprint))
    }

    fn build(
        &self,
        bench: &BenchmarkSpec,
        scale: &WorkloadScale,
        program: &Program,
        fingerprint: u64,
        path: &Path,
    ) -> Result<(), PersistError> {
        fs::create_dir_all(&self.dir)?;
        let probes = bench.probes(scale);
        let meta = TraceMeta {
            benchmark: bench.name.to_string(),
            interval_len: scale.interval_len as u64,
            probes: probes
                .iter()
                .map(|p| TraceProbeMeta {
                    interval: p.interval as u64,
                    weight_bits: p.weight.to_bits(),
                })
                .collect(),
        };
        let traces: Vec<Vec<Inst>> = probes
            .iter()
            .map(|p| {
                note_trace_regenerated();
                p.trace(program)
            })
            .collect();
        let bytes = encode_trace_file(fingerprint, &meta, &traces)?;
        save_trace_bytes(path, &bytes)
    }
}

// --------------------------------------------------------------------------
// TraceProvider
// --------------------------------------------------------------------------

/// The per-pass trace source the collection paths call instead of
/// `Probe::trace` directly: serves cached traces when a [`TraceStore`] is
/// configured, regenerates (and counts the regeneration) otherwise — and
/// on *any* cache failure, so a damaged cache degrades to the uncached
/// behaviour, never to a wrong trace.
///
/// Cache files are opened (or built) lazily per benchmark on first touch;
/// the pass's worker threads share the readers behind per-benchmark
/// locks, so a trace read is O(chunk) and never blocks another
/// benchmark's workers.
pub struct TraceProvider {
    store: Option<TraceStore>,
    scale: WorkloadScale,
    entries: BTreeMap<String, BenchEntry>,
}

struct BenchEntry {
    bench: BenchmarkSpec,
    cell: OnceLock<Option<Mutex<TraceReader>>>,
}

impl TraceProvider {
    /// A provider over `benches` at `scale`. With `store == None` every
    /// [`TraceProvider::trace`] call regenerates (the uncached path).
    pub fn new(store: Option<TraceStore>, benches: &[BenchmarkSpec], scale: WorkloadScale) -> Self {
        let entries = benches
            .iter()
            .map(|b| {
                (
                    b.name.to_string(),
                    BenchEntry {
                        bench: b.clone(),
                        cell: OnceLock::new(),
                    },
                )
            })
            .collect();
        TraceProvider {
            store,
            scale,
            entries,
        }
    }

    /// The trace of `probe`, from the store when possible, regenerated
    /// from `program` otherwise.
    pub fn trace(&self, probe: &Probe, program: &Program) -> Vec<Inst> {
        let cached = self.cached_trace(probe, program);
        match cached {
            Some(insts) => insts,
            None => {
                note_trace_regenerated();
                probe.trace(program)
            }
        }
    }

    fn cached_trace(&self, probe: &Probe, program: &Program) -> Option<Vec<Inst>> {
        let store = self.store.as_ref()?;
        let entry = self.entries.get(&probe.benchmark)?;
        let reader = entry.cell.get_or_init(|| {
            match store.open_or_build(&entry.bench, &self.scale, program) {
                Ok(reader) => Some(Mutex::new(reader)),
                Err(_) => None,
            }
        });
        let mutex = reader.as_ref()?;
        let mut guard = mutex.lock().ok()?;
        match self.checked_read(&mut guard, probe) {
            Some(insts) => Some(insts),
            None => {
                note_rejection();
                None
            }
        }
    }

    /// Reads `probe`'s trace only if the stored per-probe identity
    /// matches the requesting probe exactly.
    fn checked_read(&self, reader: &mut TraceReader, probe: &Probe) -> Option<Vec<Inst>> {
        let meta = reader.meta();
        if meta.benchmark != probe.benchmark || meta.interval_len != probe.interval_len as u64 {
            return None;
        }
        let stored = meta.probes.get(probe.simpoint)?;
        if stored.interval != probe.interval as u64 || stored.weight_bits != probe.weight.to_bits()
        {
            return None;
        }
        reader.read_probe(probe.simpoint).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_round_trip() {
        let name = trace_file_name("458.sjeng", 0xdead_beef_0123_4567);
        assert_eq!(name, "458.sjeng-trace-deadbeef01234567.pbtr");
        assert_eq!(
            parse_trace_file_name(&name),
            Some(("458.sjeng".to_string(), 0xdead_beef_0123_4567))
        );
        assert_eq!(parse_trace_file_name("458.sjeng.pbtr"), None);
        assert_eq!(parse_trace_file_name("-trace-deadbeef01234567.pbtr"), None);
        assert_eq!(parse_trace_file_name("a-trace-DEADBEEF01234567.pbtr"), None);
        assert_eq!(parse_trace_file_name("a-trace-deadbeef.pbtr"), None);
        assert!(is_trace_temp_file_name("x-trace-0.pbtr.123-0.tmp"));
        assert!(!is_trace_temp_file_name("x-trace-0.pbtr"));
        assert!(!is_trace_temp_file_name("x.pbcol.123-0.tmp"));
    }

    #[test]
    fn fingerprint_distinguishes_bench_and_scale() {
        let benches = perfbug_workloads::spec2006();
        let (a, b) = (&benches[0], &benches[1]);
        let tiny = WorkloadScale::tiny();
        let full = WorkloadScale::default();
        assert_ne!(trace_fingerprint(a, &tiny), trace_fingerprint(b, &tiny));
        assert_ne!(trace_fingerprint(a, &tiny), trace_fingerprint(a, &full));
        assert_eq!(trace_fingerprint(a, &tiny), trace_fingerprint(a, &tiny));
    }
}

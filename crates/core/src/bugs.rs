//! Bug catalogues and severity grading (§IV-C, Fig. 4).
//!
//! Each of the paper's 14 core bug types (and 6 memory bug types) is
//! instantiated in several variants by varying its `X`/`Y`/`N`/`T`/`R`
//! parameters, producing bugs across the whole severity spectrum. Severity
//! is graded by measured average IPC impact: Very-Low < 1 %, Low 1–5 %,
//! Medium 5–10 %, High ≥ 10 %.

use perfbug_memsim::{CacheLevel, MemBugSpec};
use perfbug_uarch::BugSpec;
use perfbug_workloads::Opcode;

/// Severity buckets of Fig. 4 / Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Average IPC impact below 1 %.
    VeryLow,
    /// 1–5 %.
    Low,
    /// 5–10 %.
    Medium,
    /// 10 % or more.
    High,
}

impl Severity {
    /// Grades a relative impact (`0.07` = 7 % average IPC degradation).
    pub fn grade(impact: f64) -> Severity {
        if impact >= 0.10 {
            Severity::High
        } else if impact >= 0.05 {
            Severity::Medium
        } else if impact >= 0.01 {
            Severity::Low
        } else {
            Severity::VeryLow
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::VeryLow => "Very Low",
            Severity::Low => "Low",
            Severity::Medium => "Medium",
            Severity::High => "High",
        }
    }

    /// All buckets, mildest first.
    pub fn all() -> [Severity; 4] {
        [
            Severity::VeryLow,
            Severity::Low,
            Severity::Medium,
            Severity::High,
        ]
    }
}

/// The core bug catalogue: a list of concrete bug variants.
#[derive(Debug, Clone, PartialEq)]
pub struct BugCatalog {
    variants: Vec<BugSpec>,
}

impl BugCatalog {
    /// Builds a catalogue from explicit variants.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<BugSpec>) -> Self {
        assert!(!variants.is_empty(), "catalogue cannot be empty");
        BugCatalog { variants }
    }

    /// The full default catalogue: three variants of each of the 14 types
    /// (42 bugs), spanning rare-opcode to common-opcode and mild to severe
    /// parameterisations.
    pub fn core_full() -> Self {
        use BugSpec::*;
        use Opcode::*;
        BugCatalog::new(vec![
            // 1: Serialize X.
            SerializeOpcode { x: Xor },
            SerializeOpcode { x: Sub },
            SerializeOpcode { x: FpMul },
            // 2: Issue X only if oldest.
            IssueOnlyIfOldest { x: Popcnt },
            IssueOnlyIfOldest { x: Xor },
            IssueOnlyIfOldest { x: Load },
            // 3: If X is oldest, issue only X.
            IfOldestIssueOnlyX { x: Xor },
            IfOldestIssueOnlyX { x: Add },
            IfOldestIssueOnlyX { x: FpAdd },
            // 4: If X depends on Y, delay T.
            DelayIfDependsOn {
                x: Add,
                y: Load,
                t: 8,
            },
            DelayIfDependsOn {
                x: Sub,
                y: Mul,
                t: 20,
            },
            DelayIfDependsOn {
                x: FpMul,
                y: FpAdd,
                t: 6,
            },
            // 5: IQ below N, delay T.
            IqBelowDelay { n: 4, t: 2 },
            IqBelowDelay { n: 8, t: 6 },
            IqBelowDelay { n: 16, t: 12 },
            // 6: ROB below N, delay T.
            RobBelowDelay { n: 8, t: 2 },
            RobBelowDelay { n: 16, t: 6 },
            RobBelowDelay { n: 24, t: 12 },
            // 7: Mispredict extra delay.
            MispredictExtraDelay { t: 4 },
            MispredictExtraDelay { t: 12 },
            MispredictExtraDelay { t: 30 },
            // 8: N stores to line, delay T.
            StoresToLineDelay { n: 8, t: 4 },
            StoresToLineDelay { n: 4, t: 12 },
            StoresToLineDelay { n: 2, t: 30 },
            // 9: N writes to register, delay T.
            WritesToRegDelay {
                n: 64,
                t: 4,
                periodic: false,
            },
            WritesToRegDelay {
                n: 16,
                t: 10,
                periodic: false,
            },
            WritesToRegDelay {
                n: 32,
                t: 6,
                periodic: true,
            },
            // 10: L2 latency + T.
            L2ExtraLatency { t: 2 },
            L2ExtraLatency { t: 8 },
            L2ExtraLatency { t: 24 },
            // 11: Fewer physical registers.
            FewerPhysRegs { n: 64 },
            FewerPhysRegs { n: 160 },
            FewerPhysRegs { n: 280 },
            // 12: Branch longer than N bytes, delay T.
            LongBranchDelay { bytes: 6, t: 4 },
            LongBranchDelay { bytes: 4, t: 10 },
            LongBranchDelay { bytes: 5, t: 20 },
            // 13: X uses register R, delay T.
            OpcodeUsesRegDelay {
                x: Add,
                r: 0,
                t: 10,
            },
            OpcodeUsesRegDelay {
                x: Load,
                r: 3,
                t: 8,
            },
            OpcodeUsesRegDelay {
                x: Xor,
                r: 1,
                t: 20,
            },
            // 14: Predictor index mask.
            BtbIndexMask { lost_bits: 4 },
            BtbIndexMask { lost_bits: 8 },
            BtbIndexMask { lost_bits: 12 },
        ])
    }

    /// The extended catalogue: [`BugCatalog::core_full`] plus three
    /// variants of each extension type (15: TLB/page-walk latency, 16:
    /// issue replay), 48 bugs in all. Paper-faithful experiments keep
    /// `core_full`; the fuzzer and the per-family evaluation harness draw
    /// from here.
    pub fn core_extended() -> Self {
        use BugSpec::*;
        let mut variants = Self::core_full().variants;
        variants.extend([
            // 15: Data TLB holds N pages, misses walk T cycles.
            TlbPageWalkDelay { entries: 64, t: 10 },
            TlbPageWalkDelay { entries: 16, t: 30 },
            TlbPageWalkDelay { entries: 4, t: 60 },
            // 16: Every N-th issue grant squashed, replay after T cycles.
            IssueReplayEveryN { n: 64, t: 4 },
            IssueReplayEveryN { n: 16, t: 8 },
            IssueReplayEveryN { n: 4, t: 16 },
        ]);
        BugCatalog::new(variants)
    }

    /// A reduced catalogue (one mid-severity variant per type) for quick
    /// runs and tests.
    pub fn core_small() -> Self {
        use BugSpec::*;
        use Opcode::*;
        BugCatalog::new(vec![
            SerializeOpcode { x: Sub },
            IssueOnlyIfOldest { x: Xor },
            IfOldestIssueOnlyX { x: Xor },
            DelayIfDependsOn {
                x: Add,
                y: Load,
                t: 12,
            },
            IqBelowDelay { n: 8, t: 6 },
            RobBelowDelay { n: 16, t: 6 },
            MispredictExtraDelay { t: 12 },
            StoresToLineDelay { n: 4, t: 12 },
            WritesToRegDelay {
                n: 16,
                t: 10,
                periodic: false,
            },
            L2ExtraLatency { t: 8 },
            FewerPhysRegs { n: 160 },
            LongBranchDelay { bytes: 4, t: 10 },
            OpcodeUsesRegDelay {
                x: Add,
                r: 0,
                t: 10,
            },
            BtbIndexMask { lost_bits: 8 },
        ])
    }

    /// All variants in catalogue order.
    pub fn variants(&self) -> &[BugSpec] {
        &self.variants
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the catalogue is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The distinct bug-type ids present, ascending.
    pub fn type_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.variants.iter().map(BugSpec::type_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Indices of the variants belonging to one type.
    pub fn variants_of_type(&self, type_id: u32) -> Vec<usize> {
        self.variants
            .iter()
            .enumerate()
            .filter(|(_, b)| b.type_id() == type_id)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every variant leaves the probe traces untouched
    /// ([`BugSpec::perturbs_trace`] is false for all of them) — the
    /// precondition for a collection pass to consult the persistent
    /// trace cache ([`crate::tracecache`]).
    pub fn trace_invariant(&self) -> bool {
        self.variants.iter().all(|b| !b.perturbs_trace())
    }
}

/// The memory-system bug catalogue (§IV-D).
#[derive(Debug, Clone)]
pub struct MemBugCatalog {
    variants: Vec<MemBugSpec>,
}

impl MemBugCatalog {
    /// Builds a catalogue from explicit variants.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<MemBugSpec>) -> Self {
        assert!(!variants.is_empty(), "catalogue cannot be empty");
        MemBugCatalog { variants }
    }

    /// The default memory catalogue: the six types of §IV-D with level /
    /// parameter variants (10 bugs).
    pub fn full() -> Self {
        use MemBugSpec::*;
        MemBugCatalog {
            variants: vec![
                NoAgeUpdate {
                    level: CacheLevel::L1d,
                },
                NoAgeUpdate {
                    level: CacheLevel::L2,
                },
                EvictMru {
                    level: CacheLevel::L1d,
                },
                EvictMru {
                    level: CacheLevel::L2,
                },
                MissesDelay {
                    level: CacheLevel::L1d,
                    n: 500,
                    t: 4,
                },
                MissesDelay {
                    level: CacheLevel::L2,
                    n: 200,
                    t: 20,
                },
                SppSignatureReset,
                SppLeastConfidence,
                SppDroppedPrefetch { n: 2 },
                SppDroppedPrefetch { n: 6 },
            ],
        }
    }

    /// The extended memory catalogue: [`MemBugCatalog::full`] plus
    /// variants of the extension types (7: prefetcher degree/stride
    /// pathology, 8: DRAM page-close regression), 14 bugs in all.
    pub fn extended() -> Self {
        use MemBugSpec::*;
        let mut cat = Self::full();
        cat.variants.extend([
            // 7: SPP degree forced / stride skewed.
            SppDegreeStride { degree: 8, skew: 0 },
            SppDegreeStride {
                degree: 8,
                skew: -2,
            },
            // 8: DRAM forced page-close.
            DramPageCloseDelay { t: 12 },
            DramPageCloseDelay { t: 40 },
        ]);
        cat
    }

    /// All variants in catalogue order.
    pub fn variants(&self) -> &[MemBugSpec] {
        &self.variants
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The distinct bug-type ids present, ascending.
    pub fn type_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.variants.iter().map(MemBugSpec::type_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Indices of the variants belonging to one type.
    pub fn variants_of_type(&self, type_id: u32) -> Vec<usize> {
        self.variants
            .iter()
            .enumerate()
            .filter(|(_, b)| b.type_id() == type_id)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every variant leaves the probe traces untouched
    /// ([`MemBugSpec::perturbs_trace`] is false for all of them) — the
    /// precondition for a memory collection pass to consult the
    /// persistent trace cache ([`crate::tracecache`]).
    pub fn trace_invariant(&self) -> bool {
        self.variants.iter().all(|b| !b.perturbs_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_grading_boundaries() {
        assert_eq!(Severity::grade(0.005), Severity::VeryLow);
        assert_eq!(Severity::grade(0.01), Severity::Low);
        assert_eq!(Severity::grade(0.049), Severity::Low);
        assert_eq!(Severity::grade(0.05), Severity::Medium);
        assert_eq!(Severity::grade(0.10), Severity::High);
        assert_eq!(Severity::grade(0.5), Severity::High);
    }

    #[test]
    fn full_catalogue_covers_all_types() {
        let cat = BugCatalog::core_full();
        assert_eq!(cat.len(), 42);
        assert_eq!(cat.type_ids(), (1..=14).collect::<Vec<u32>>());
        for t in cat.type_ids() {
            assert_eq!(cat.variants_of_type(t).len(), 3);
        }
    }

    #[test]
    fn small_catalogue_one_variant_per_type() {
        let cat = BugCatalog::core_small();
        assert_eq!(cat.len(), 14);
        assert_eq!(cat.type_ids(), (1..=14).collect::<Vec<u32>>());
    }

    #[test]
    fn memory_catalogue_covers_six_types() {
        let cat = MemBugCatalog::full();
        assert_eq!(cat.type_ids(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(cat.len(), 10);
    }

    #[test]
    fn extended_catalogues_add_new_families_without_touching_paper_ones() {
        let core = BugCatalog::core_extended();
        assert_eq!(core.len(), 48);
        assert_eq!(core.type_ids(), (1..=16).collect::<Vec<u32>>());
        assert_eq!(
            core.variants()[..42],
            BugCatalog::core_full().variants()[..],
            "extension must be a strict superset of the paper catalogue"
        );
        let mem = MemBugCatalog::extended();
        assert_eq!(mem.len(), 14);
        assert_eq!(mem.type_ids(), (1..=8).collect::<Vec<u32>>());
        assert_eq!(mem.variants()[..10], MemBugCatalog::full().variants()[..]);
    }
}

//! End-to-end experiment orchestration: probe simulation, stage-1 model
//! training, error collection, and the leave-one-bug-type-out evaluation
//! protocol of §V-B (Fig. 7).
//!
//! The expensive phase is *collection*: every probe is simulated on every
//! design of the experiment partition, bug-free and with every catalogue
//! bug, and one stage-1 model per (probe, engine) is trained to produce the
//! per-run inference errors. The cheap phase is *evaluation*: stage-2
//! classifiers (or the baseline) are re-fit per held-out bug type from the
//! collected error matrix.

use std::time::Duration;

use perfbug_uarch::{presets, simulate, ArchSet, BugSpec, MicroarchConfig};
use perfbug_workloads::{spec2006, BenchmarkSpec, Probe, Program, RowMatrix, WorkloadScale};

use crate::exec;

use crate::baseline::{BaselineClassifier, BaselineParams, BaselineSample};
use crate::bugs::{BugCatalog, Severity};
use crate::counter_select::{leakage_banned_counters, select_counters, CounterMode};
use crate::detmetrics::{Decision, DetectionMetrics};
use crate::stage1::{EngineSpec, FeatureSpec, RunSeries};
use crate::stage2::{Stage2Classifier, Stage2Params};

/// Ceiling applied to stage-1 inference errors so that non-convergent
/// models (the paper's LSTM outliers) cannot poison stage-2 statistics —
/// the paper likewise drops "LSTM results with huge errors".
pub(crate) const DELTA_CEILING: f64 = 1e6;

/// Simulation scale knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeScale {
    /// Workload scale (instructions per probe interval).
    pub workload: WorkloadScale,
    /// Counter sampling period in cycles (stands in for the paper's 500 k).
    pub step_cycles: u64,
}

impl Default for ProbeScale {
    fn default() -> Self {
        ProbeScale {
            workload: WorkloadScale::default(),
            step_cycles: 1000,
        }
    }
}

impl ProbeScale {
    /// Reduced scale for tests.
    pub fn tiny() -> Self {
        ProbeScale {
            workload: WorkloadScale::tiny(),
            step_cycles: 400,
        }
    }
}

/// The disjoint design sets of the experiment (Table II roles).
#[derive(Debug, Clone)]
pub struct ArchPartition {
    /// Set I — trains stage-1 models.
    pub train: Vec<MicroarchConfig>,
    /// Set II — validates stage-1 training; labels stage 2.
    pub val: Vec<MicroarchConfig>,
    /// Set III — additional stage-2 labels.
    pub stage2_extra: Vec<MicroarchConfig>,
    /// Set IV — held-out test designs.
    pub test: Vec<MicroarchConfig>,
}

impl ArchPartition {
    /// The paper's partition (Table II).
    pub fn paper() -> Self {
        ArchPartition {
            train: presets::by_set(ArchSet::I),
            val: presets::by_set(ArchSet::II),
            stage2_extra: presets::by_set(ArchSet::III),
            test: presets::by_set(ArchSet::IV),
        }
    }

    /// The reduced partition of §V-H (Fig. 13): training sets shrink and
    /// prefer real designs; the test set is unchanged.
    pub fn reduced() -> Self {
        let keep = |set: ArchSet, n: usize| -> Vec<MicroarchConfig> {
            let mut designs = presets::by_set(set);
            designs.sort_by_key(|a| !a.real); // real designs first
            designs.truncate(n);
            designs
        };
        ArchPartition {
            train: keep(ArchSet::I, 5),
            val: keep(ArchSet::II, 2),
            stage2_extra: keep(ArchSet::III, 2),
            test: presets::by_set(ArchSet::IV),
        }
    }

    /// Designs whose runs are evaluated by stage 2 (sets II, III and IV).
    pub fn eval_archs(&self) -> Vec<&MicroarchConfig> {
        self.val
            .iter()
            .chain(&self.stage2_extra)
            .chain(&self.test)
            .collect()
    }
}

/// Identifies one simulated run: a design and an optional catalogue bug.
#[derive(Debug, Clone, PartialEq)]
pub struct RunKey {
    /// Design name.
    pub arch: String,
    /// The design's experiment set.
    pub set: ArchSet,
    /// Index into the bug catalogue (`None` = bug-free).
    pub bug: Option<usize>,
}

/// Metadata of one collected probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeMeta {
    /// Probe identifier (`benchmark#ordinal`).
    pub id: String,
    /// Source benchmark.
    pub benchmark: String,
    /// SimPoint weight within its benchmark.
    pub weight: f64,
}

/// A captured (simulated, inferred) series for figure regeneration.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedSeries {
    /// Probe identifier.
    pub probe_id: String,
    /// Design name.
    pub arch: String,
    /// Catalogue bug index (`None` = bug-free).
    pub bug: Option<usize>,
    /// Engine name.
    pub engine: String,
    /// Simulated per-step target.
    pub simulated: Vec<f64>,
    /// Model-inferred per-step target.
    pub inferred: Vec<f64>,
}

/// Request to capture series for one (probe, design, bug) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureSpec {
    /// Probe identifier to capture.
    pub probe_id: String,
    /// Design name.
    pub arch: String,
    /// Catalogue bug index (`None` = bug-free).
    pub bug: Option<usize>,
}

/// Per-engine collection output.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResult {
    /// Engine display name.
    pub name: String,
    /// Eq.-(1) inference errors, `[probe][run key]`.
    pub deltas: Vec<Vec<f64>>,
    /// Total stage-1 training time across probes.
    pub train_time: Duration,
    /// Total stage-1 inference time across probes and runs.
    pub infer_time: Duration,
}

/// Everything the evaluation phase needs, collected in one pass.
///
/// Collections are the unit of persistence: [`crate::persist`] serialises
/// them with a versioned binary codec so evaluation-only experiments can
/// replay a saved corpus instead of re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct Collection {
    /// Run keys, shared by all per-probe vectors.
    pub keys: Vec<RunKey>,
    /// Probe metadata in probe order.
    pub probes: Vec<ProbeMeta>,
    /// Per-engine inference errors.
    pub engines: Vec<EngineResult>,
    /// Overall target metric (IPC) per `[probe][key]`.
    pub overall_ipc: Vec<Vec<f64>>,
    /// Aggregated per-run features for the baseline, `[probe][key]`.
    pub agg_features: Vec<Vec<Vec<f64>>>,
    /// Captured series for figures.
    pub captures: Vec<CapturedSeries>,
    /// The bug catalogue used.
    pub catalog: BugCatalog,
}

impl Collection {
    /// Zeroes the per-engine wall-clock timing fields — the only
    /// legitimately nondeterministic part of a collection (shard times
    /// sum, single-process times are measured in one go). Bit-identity
    /// checks (the replay/orchestrate guards, the shard property suites)
    /// call this on both sides before comparing encodings.
    pub fn zero_timings(&mut self) {
        for engine in &mut self.engines {
            engine.train_time = std::time::Duration::ZERO;
            engine.infer_time = std::time::Duration::ZERO;
        }
    }
}

/// Configuration of one collection pass.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Simulation scale.
    pub scale: ProbeScale,
    /// Stage-1 engines to train (sharing the simulations).
    pub engines: Vec<EngineSpec>,
    /// Counter selection mode.
    pub counter_mode: CounterMode,
    /// Stage-1 feature window size.
    pub window: usize,
    /// Whether design-parameter features are used (§V-G).
    pub arch_features: bool,
    /// Bug catalogue to inject.
    pub catalog: BugCatalog,
    /// Benchmarks providing probes.
    pub benchmarks: Vec<BenchmarkSpec>,
    /// Optional cap on the number of probes (round-robin across
    /// benchmarks, preserving coverage).
    pub max_probes: Option<usize>,
    /// Design partition.
    pub partition: ArchPartition,
    /// A bug silently injected into every presumed-bug-free design
    /// (Table V's "bugs in presumed bug-free training" rows).
    pub presumed_bugfree_bug: Option<BugSpec>,
    /// Series to capture for figure regeneration.
    pub captures: Vec<CaptureSpec>,
    /// Worker threads for run-level parallelism (defaults to the machine's
    /// available parallelism; clamped below at 1).
    pub threads: usize,
}

impl CollectionConfig {
    /// A reasonable default configuration at reproduction scale: the full
    /// Table II partition, the supplied engines and catalogue, automatic
    /// counter selection, window 1 and design features on.
    pub fn new(engines: Vec<EngineSpec>, catalog: BugCatalog) -> Self {
        CollectionConfig {
            scale: ProbeScale::default(),
            engines,
            counter_mode: CounterMode::default(),
            window: 1,
            arch_features: true,
            catalog,
            benchmarks: spec2006(),
            max_probes: None,
            partition: ArchPartition::paper(),
            presumed_bugfree_bug: None,
            captures: Vec::new(),
            threads: exec::default_threads(),
        }
    }
}

/// The simulation-unit grid of one collection pass.
///
/// A *unit* is one distinct (design, bug) combination; per probe, each
/// unit is simulated exactly once and its result is shared by every
/// consumer — stage-1 training (Set I), stage-1 validation (Set II), and
/// every evaluation key. In particular the bug-free reference run of each
/// design exists once per (probe, design) and is never re-simulated for
/// the evaluation pass. The index structure is handed to the shared
/// [`exec::collect_unit_grid`] driver as an [`exec::UnitGrid`].
struct SimGrid<'p> {
    /// All distinct designs: Set I first, then the evaluation designs.
    archs: Vec<&'p MicroarchConfig>,
    /// Distinct (arch index, catalogue bug index) combinations.
    units: Vec<(usize, Option<usize>)>,
    /// Unit of each Set-I bug-free training run.
    train_units: Vec<usize>,
    /// Unit of each Set-II bug-free validation run.
    val_units: Vec<usize>,
    /// Unit of each run key (same order as `keys`).
    key_units: Vec<usize>,
    /// The run-key list of the collection.
    keys: Vec<RunKey>,
}

impl<'p> SimGrid<'p> {
    /// Builds the grid (and the aligned key list) for a partition and
    /// catalogue.
    fn build(partition: &'p ArchPartition, catalog: &BugCatalog) -> Self {
        let mut archs: Vec<&MicroarchConfig> = partition.train.iter().collect();
        let mut units = Vec::new();
        let mut train_units = Vec::new();
        for idx in 0..archs.len() {
            train_units.push(units.len());
            units.push((idx, None));
        }
        let mut val_units = Vec::new();
        let mut key_units = Vec::new();
        let mut keys = Vec::new();
        for (ei, arch) in partition.eval_archs().into_iter().enumerate() {
            let arch_idx = archs.len();
            archs.push(arch);
            let bugfree_unit = units.len();
            units.push((arch_idx, None));
            // Validation runs are the members of `partition.val` (the
            // first entries of `eval_archs()`), not whichever designs
            // happen to carry a Set-II tag — custom partitions may
            // deliberately mix tags and vectors.
            if ei < partition.val.len() {
                val_units.push(bugfree_unit);
            }
            key_units.push(bugfree_unit);
            keys.push(RunKey {
                arch: arch.name.clone(),
                set: arch.set,
                bug: None,
            });
            for i in 0..catalog.len() {
                key_units.push(units.len());
                units.push((arch_idx, Some(i)));
                keys.push(RunKey {
                    arch: arch.name.clone(),
                    set: arch.set,
                    bug: Some(i),
                });
            }
        }
        SimGrid {
            archs,
            units,
            train_units,
            val_units,
            key_units,
            keys,
        }
    }
}

/// Number of distinct simulation units — (design, bug) combinations —
/// every probe of a collection pass runs. [`collect`] simulates exactly
/// `probes x this` runs; throughput tooling uses it to turn wall time
/// into runs/sec without re-deriving the grid shape.
pub fn simulation_units_per_probe(partition: &ArchPartition, catalog: &BugCatalog) -> usize {
    SimGrid::build(partition, catalog).units.len()
}

/// Selects up to `max` probes round-robin across benchmarks.
fn subsample_probes(per_benchmark: Vec<Vec<Probe>>, max: Option<usize>) -> Vec<Probe> {
    let total: usize = per_benchmark.iter().map(Vec::len).sum();
    let budget = max.unwrap_or(total).min(total);
    let mut taken = Vec::with_capacity(budget);
    let mut cursors = vec![0usize; per_benchmark.len()];
    while taken.len() < budget {
        let mut advanced = false;
        for (b, probes) in per_benchmark.iter().enumerate() {
            if taken.len() >= budget {
                break;
            }
            if cursors[b] < probes.len() {
                taken.push(probes[cursors[b]].clone());
                cursors[b] += 1;
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    taken
}

/// Runs the full collection pass: simulate, select counters, train stage-1
/// models and gather inference errors for every (probe, run key).
///
/// # Panics
///
/// Panics if the configuration has no engines, no benchmarks, or no
/// designs in a required set.
pub fn collect(config: &CollectionConfig) -> Collection {
    collect_sharded(config, exec::ShardSpec::full()).0
}

/// The simulation-independent shape of a collection pass, derivable from
/// the configuration alone (no probe is simulated).
///
/// It carries everything a persistence layer needs to lay out an output
/// file *before* the first probe finishes — the run-key axis, the engine
/// roster, the catalogue and the total probe count — which is what makes
/// crash-recoverable streaming collection
/// ([`crate::persist::collect_shard_or_resume`]) possible.
#[derive(Debug, Clone)]
pub struct PassIdentity {
    /// Run keys of the pass, shared by all per-probe vectors.
    pub keys: Vec<RunKey>,
    /// Engine display names, in configured engine order.
    pub engine_names: Vec<String>,
    /// The bug catalogue of the pass.
    pub catalog: BugCatalog,
    /// Total probe count of the full (unsharded) pass.
    pub total_probes: usize,
}

/// Everything [`collect_sharded_streaming`] derives from the
/// configuration before any simulation runs.
struct PreparedPass<'c> {
    grid: SimGrid<'c>,
    programs: Vec<Program>,
    probes: Vec<Probe>,
}

/// Builds the simulation grid and probe list of a pass, validating the
/// configuration.
fn prepare_pass(config: &CollectionConfig) -> PreparedPass<'_> {
    assert!(
        !config.engines.is_empty(),
        "collection needs at least one engine"
    );
    assert!(!config.benchmarks.is_empty(), "collection needs benchmarks");
    assert!(
        !config.partition.train.is_empty(),
        "Set I must not be empty"
    );
    assert!(
        !config.partition.test.is_empty(),
        "Set IV must not be empty"
    );

    let grid = SimGrid::build(&config.partition, &config.catalog);

    // Build programs and probes per benchmark.
    let programs: Vec<Program> = config
        .benchmarks
        .iter()
        .map(|b| b.program(&config.scale.workload))
        .collect();
    let per_benchmark: Vec<Vec<Probe>> = config
        .benchmarks
        .iter()
        .map(|b| b.probes(&config.scale.workload))
        .collect();
    let probes = subsample_probes(per_benchmark, config.max_probes);
    assert!(!probes.is_empty(), "no probes extracted");
    PreparedPass {
        grid,
        programs,
        probes,
    }
}

/// Derives the [`PassIdentity`] of a configuration without simulating
/// anything.
///
/// # Panics
///
/// As [`collect`].
pub fn pass_identity(config: &CollectionConfig) -> PassIdentity {
    let pass = prepare_pass(config);
    PassIdentity {
        keys: pass.grid.keys.clone(),
        engine_names: config.engines.iter().map(|e| e.name()).collect(),
        catalog: config.catalog.clone(),
        total_probes: pass.probes.len(),
    }
}

/// The streaming heart of sharded collection: runs the probes of
/// `shard`, skipping the first `skip` (already-durable probes of a
/// resumed attempt), and hands each probe's metadata and complete output
/// to `sink` in strictly increasing probe order as soon as it is
/// assembled. Returns the total probe count of the full pass.
///
/// A `sink` error aborts the pass (the error is returned verbatim);
/// nothing is retried. Every probe's pipeline depends only on its own
/// trace, so the streamed outputs are bit-identical to the corresponding
/// slice of [`collect_sharded`] for any `skip`.
///
/// # Panics
///
/// As [`collect`]. A shard may legitimately own zero probes (more shards
/// than probes); the *global* probe set must still be non-empty.
pub fn collect_sharded_streaming<E>(
    config: &CollectionConfig,
    shard: exec::ShardSpec,
    skip: usize,
    mut sink: impl FnMut(ProbeMeta, exec::ProbeOutput) -> Result<(), E>,
) -> Result<usize, E> {
    let pass = prepare_pass(config);
    let PreparedPass {
        grid,
        programs,
        probes,
    } = &pass;
    let keys = &grid.keys;
    let program_of = |probe: &Probe| -> &Program {
        let idx = config
            .benchmarks
            .iter()
            .position(|b| b.name == probe.benchmark)
            .expect("probe from configured benchmark");
        &programs[idx]
    };

    // Probe setup consults the persistent trace store before regenerating
    // any trace — gated on the PERFBUG_TRACE_DIR knob and on every bug of
    // the pass (catalogue variants *and* the presumed-bug-free defect)
    // being trace-invariant, so a stream-perturbing bug degrades to the
    // uncached path instead of replaying a trace it invalidates.
    let store = crate::tracecache::TraceStore::from_env().filter(|_| {
        config.catalog.trace_invariant()
            && config
                .presumed_bugfree_bug
                .is_none_or(|b| !b.perturbs_trace())
    });
    let traces =
        crate::tracecache::TraceProvider::new(store, &config.benchmarks, config.scale.workload);

    // Run-level parallel collection through the shared unit-grid driver
    // (`exec::collect_unit_grid_streaming`): trace generation, the
    // (probe x unit) simulation grid, per-probe counter selection and the
    // (probe x engine) training grid all run on the work-stealing pool,
    // with deterministic assembly for any worker count.
    let unit_grid = exec::UnitGrid {
        n_units: grid.units.len(),
        train_units: grid.train_units.clone(),
        val_units: grid.val_units.clone(),
        key_units: grid.key_units.clone(),
    };
    exec::collect_unit_grid_streaming(
        probes.len(),
        config.threads,
        shard,
        skip,
        &unit_grid,
        &config.engines,
        |pi| traces.trace(&probes[pi], program_of(&probes[pi])),
        |trace: &Vec<perfbug_workloads::Inst>, u| {
            let (arch_idx, bug_idx) = grid.units[u];
            let arch = grid.archs[arch_idx];
            // The presumed-bug-free defect contaminates every run: it is
            // part of the "design" for this experiment.
            let bug = bug_idx
                .map(|i| config.catalog.variants()[i])
                .or(config.presumed_bugfree_bug);
            let pr = simulate(arch, bug, trace, config.scale.step_cycles);
            let overall = pr.overall_ipc();
            (
                RunSeries {
                    rows: pr.counter_rows,
                    target: pr.ipc,
                    arch_features: arch.feature_vector(),
                },
                overall,
            )
        },
        |_pi, units| {
            let selected = match &config.counter_mode {
                CounterMode::Automatic(thresholds) => {
                    let mut rows = RowMatrix::new(0);
                    let mut target = Vec::new();
                    for &u in &grid.train_units {
                        rows.extend_from(&units[u].0.rows);
                        target.extend_from_slice(&units[u].0.target);
                    }
                    select_counters(&rows, &target, thresholds, &leakage_banned_counters())
                }
                CounterMode::Manual(cols) => cols.clone(),
            };
            FeatureSpec {
                selected,
                arch_features: config.arch_features,
                window: config.window.max(1),
            }
        },
        |pi, pos, engine, series, inferred| {
            let key = &keys[pos];
            let probe = &probes[pi];
            let wanted = config
                .captures
                .iter()
                .any(|c| c.probe_id == probe.id() && c.arch == key.arch && c.bug == key.bug);
            wanted.then(|| CapturedSeries {
                probe_id: probe.id(),
                arch: key.arch.clone(),
                bug: key.bug,
                engine: engine.name(),
                simulated: series.target.clone(),
                inferred: inferred.to_vec(),
            })
        },
        |pi, output| {
            let probe = &probes[pi];
            sink(
                ProbeMeta {
                    id: probe.id(),
                    benchmark: probe.benchmark.clone(),
                    weight: probe.weight,
                },
                output,
            )
        },
    )?;
    Ok(probes.len())
}

/// Runs one shard of the collection pass: only the probes in
/// `shard.probe_range(total)` are simulated and trained, producing a
/// partial [`Collection`] whose per-probe vectors cover exactly that
/// range (the run-key axis is always complete). Returns the shard's
/// collection and the total probe count of the full pass, so callers can
/// build the persistence manifest (`crate::persist::ShardManifest`).
///
/// Every probe's pipeline depends only on its own trace, so a probe's
/// results are bit-identical whether collected in a full pass or in any
/// shard; merging a disjoint covering set of shards
/// (`crate::persist::merge_collections`) reassembles the single-process
/// collection exactly (wall-clock timings aside, which sum over shards).
///
/// # Panics
///
/// As [`collect`]. A shard may legitimately own zero probes (more shards
/// than probes); the *global* probe set must still be non-empty.
pub fn collect_sharded(config: &CollectionConfig, shard: exec::ShardSpec) -> (Collection, usize) {
    let identity = pass_identity(config);
    let mut col = Collection {
        keys: identity.keys,
        probes: Vec::new(),
        engines: identity
            .engine_names
            .into_iter()
            .map(|name| EngineResult {
                name,
                deltas: Vec::new(),
                train_time: Duration::ZERO,
                infer_time: Duration::ZERO,
            })
            .collect(),
        overall_ipc: Vec::new(),
        agg_features: Vec::new(),
        captures: Vec::new(),
        catalog: identity.catalog,
    };
    let total = {
        let col = &mut col;
        let result: Result<usize, std::convert::Infallible> =
            collect_sharded_streaming(config, shard, 0, |meta, po| {
                col.probes.push(meta);
                col.overall_ipc.push(po.overall);
                col.agg_features.push(po.agg);
                for (engine, o) in col.engines.iter_mut().zip(po.engines) {
                    engine.deltas.push(o.deltas);
                    engine.train_time += o.train_time;
                    engine.infer_time += o.infer_time;
                    col.captures.extend(o.captures);
                }
                Ok(())
            });
        match result {
            Ok(total) => total,
            Err(never) => match never {},
        }
    };
    (col, total)
}

// --------------------------------------------------------------------------
// Evaluation
// --------------------------------------------------------------------------

/// Per-variant average relative IPC impact, measured on the held-out test
/// designs: SimPoint-weighted per benchmark, averaged over benchmarks (the
/// paper's "average IPC impact across the studied applications"), averaged
/// over the Set-IV designs.
pub fn severity_impacts(col: &Collection) -> Vec<f64> {
    let n_variants = col.catalog.len();
    let mut impacts = vec![0.0; n_variants];
    let benchmarks: Vec<String> = {
        let mut names: Vec<String> = col.probes.iter().map(|p| p.benchmark.clone()).collect();
        names.dedup();
        names.sort();
        names.dedup();
        names
    };
    let test_archs: Vec<&RunKey> = col
        .keys
        .iter()
        .filter(|k| k.set == ArchSet::IV && k.bug.is_none())
        .collect();
    for (v, impact) in impacts.iter_mut().enumerate() {
        let mut arch_sum = 0.0;
        for base_key in &test_archs {
            let bug_idx = col
                .keys
                .iter()
                .position(|k| k.arch == base_key.arch && k.bug == Some(v))
                .expect("bug key exists for every design");
            let base_idx = col
                .keys
                .iter()
                .position(|k| k.arch == base_key.arch && k.bug.is_none())
                .expect("bug-free key exists");
            let mut bench_sum = 0.0;
            let mut bench_count = 0.0;
            for bench in &benchmarks {
                let mut base_ipc = 0.0;
                let mut bug_ipc = 0.0;
                let mut weight_total = 0.0;
                for (p, meta) in col.probes.iter().enumerate() {
                    if &meta.benchmark != bench {
                        continue;
                    }
                    base_ipc += meta.weight * col.overall_ipc[p][base_idx];
                    bug_ipc += meta.weight * col.overall_ipc[p][bug_idx];
                    weight_total += meta.weight;
                }
                if weight_total > 0.0 && base_ipc > 0.0 {
                    bench_sum += (base_ipc - bug_ipc) / base_ipc;
                    bench_count += 1.0;
                }
            }
            if bench_count > 0.0 {
                arch_sum += bench_sum / bench_count;
            }
        }
        *impact = (arch_sum / test_archs.len().max(1) as f64).max(0.0);
    }
    impacts
}

/// The decisions of one leave-one-type-out fold.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// The held-out bug type.
    pub type_id: u32,
    /// Name of the held-out type.
    pub type_name: String,
    /// Test-time decisions of this fold.
    pub decisions: Vec<Decision>,
}

/// Full evaluation outcome.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Metrics pooled over all folds.
    pub metrics: DetectionMetrics,
    /// Per-fold decisions (for per-type ROC curves, Fig. 8).
    pub folds: Vec<FoldResult>,
    /// Measured per-variant impact (severity source).
    pub impacts: Vec<f64>,
}

fn sample_vector(deltas: &[Vec<f64>], probe_subset: &[usize], key_idx: usize) -> Vec<f64> {
    probe_subset.iter().map(|&p| deltas[p][key_idx]).collect()
}

/// Evaluates the two-stage methodology with the leave-one-bug-type-out
/// protocol, using `engine_idx` of the collection's engines and only the
/// probes in `probe_subset` (pass `0..n` for all probes; Fig. 9 passes
/// reduced subsets).
///
/// # Panics
///
/// Panics if indices are out of range or the subset is empty.
pub fn evaluate_two_stage_subset(
    col: &Collection,
    engine_idx: usize,
    params: Stage2Params,
    probe_subset: &[usize],
) -> Evaluation {
    assert!(!probe_subset.is_empty(), "need at least one probe");
    let deltas = &col.engines[engine_idx].deltas;
    let impacts = severity_impacts(col);
    let mut folds = Vec::new();

    for type_id in col.catalog.type_ids() {
        let held_out = col.catalog.variants_of_type(type_id);
        // Training samples from sets II and III.
        let mut train_pos = Vec::new();
        let mut train_neg = Vec::new();
        for (k, key) in col.keys.iter().enumerate() {
            if !matches!(key.set, ArchSet::II | ArchSet::III) {
                continue;
            }
            match key.bug {
                None => train_neg.push(sample_vector(deltas, probe_subset, k)),
                Some(v) if !held_out.contains(&v) => {
                    train_pos.push(sample_vector(deltas, probe_subset, k))
                }
                Some(_) => {}
            }
        }
        let clf = Stage2Classifier::fit(params, &train_pos, &train_neg);

        // Test on Set IV: the held-out type's variants plus bug-free runs.
        let mut decisions = Vec::new();
        for (k, key) in col.keys.iter().enumerate() {
            if key.set != ArchSet::IV {
                continue;
            }
            let (has_bug, severity) = match key.bug {
                None => (false, None),
                Some(v) if held_out.contains(&v) => (true, Some(Severity::grade(impacts[v]))),
                Some(_) => continue,
            };
            let sample = sample_vector(deltas, probe_subset, k);
            decisions.push(Decision {
                score: clf.score(&sample),
                flagged: clf.classify(&sample),
                has_bug,
                severity,
            });
        }
        let type_name = held_out
            .first()
            .map(|&v| col.catalog.variants()[v].type_name().to_string())
            .unwrap_or_default();
        folds.push(FoldResult {
            type_id,
            type_name,
            decisions,
        });
    }

    let pooled: Vec<Decision> = folds.iter().flat_map(|f| f.decisions.clone()).collect();
    Evaluation {
        metrics: DetectionMetrics::from_decisions(&pooled),
        folds,
        impacts,
    }
}

/// Evaluates the two-stage methodology over all probes.
pub fn evaluate_two_stage(col: &Collection, engine_idx: usize, params: Stage2Params) -> Evaluation {
    let all: Vec<usize> = (0..col.probes.len()).collect();
    evaluate_two_stage_subset(col, engine_idx, params, &all)
}

/// Evaluates the single-stage voting baseline (§II) under the same
/// leave-one-type-out protocol, using the collection's aggregated
/// features.
pub fn evaluate_baseline(col: &Collection, params: &BaselineParams) -> Evaluation {
    let impacts = severity_impacts(col);
    let mut folds = Vec::new();
    for type_id in col.catalog.type_ids() {
        let held_out = col.catalog.variants_of_type(type_id);
        // Per-probe training samples over sets II and III.
        let train_keys: Vec<usize> = col
            .keys
            .iter()
            .enumerate()
            .filter(|(_, key)| {
                matches!(key.set, ArchSet::II | ArchSet::III)
                    && key.bug.is_none_or(|v| !held_out.contains(&v))
            })
            .map(|(k, _)| k)
            .collect();
        let per_probe: Vec<Vec<BaselineSample>> = (0..col.probes.len())
            .map(|p| {
                train_keys
                    .iter()
                    .map(|&k| BaselineSample {
                        features: col.agg_features[p][k].clone(),
                        has_bug: col.keys[k].bug.is_some(),
                    })
                    .collect()
            })
            .collect();
        let clf = BaselineClassifier::fit(params, &per_probe);

        let mut decisions = Vec::new();
        for (k, key) in col.keys.iter().enumerate() {
            if key.set != ArchSet::IV {
                continue;
            }
            let (has_bug, severity) = match key.bug {
                None => (false, None),
                Some(v) if held_out.contains(&v) => (true, Some(Severity::grade(impacts[v]))),
                Some(_) => continue,
            };
            let features: Vec<&[f64]> = (0..col.probes.len())
                .map(|p| col.agg_features[p][k].as_slice())
                .collect();
            decisions.push(Decision {
                score: clf.score(&features),
                flagged: clf.classify(&features),
                has_bug,
                severity,
            });
        }
        let type_name = held_out
            .first()
            .map(|&v| col.catalog.variants()[v].type_name().to_string())
            .unwrap_or_default();
        folds.push(FoldResult {
            type_id,
            type_name,
            decisions,
        });
    }
    let pooled: Vec<Decision> = folds.iter().flat_map(|f| f.decisions.clone()).collect();
    Evaluation {
        metrics: DetectionMetrics::from_decisions(&pooled),
        folds,
        impacts,
    }
}

/// Pools the Eq.-(1) errors of bug-free Set-IV runs for one engine — the
/// population whose statistics Table IV reports.
pub fn bugfree_test_errors(col: &Collection, engine_idx: usize) -> Vec<f64> {
    let deltas = &col.engines[engine_idx].deltas;
    let mut out = Vec::new();
    for (k, key) in col.keys.iter().enumerate() {
        if key.set == ArchSet::IV && key.bug.is_none() {
            for probe_deltas in deltas {
                out.push(probe_deltas[k]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfbug_ml::{GbtParams, SplitStrategy};
    use perfbug_workloads::benchmark;

    /// A deliberately tiny configuration exercising the full pipeline.
    /// Engine 0 is the default histogram-split GBT; engine 1 is the same
    /// forest under the exact splitter, so every test doubles as a check
    /// that both split strategies coexist in one collection with distinct
    /// persisted catalog names.
    fn tiny_config() -> CollectionConfig {
        let catalog = BugCatalog::new(vec![
            BugSpec::SerializeOpcode {
                x: perfbug_workloads::Opcode::Logic,
            },
            BugSpec::L2ExtraLatency { t: 30 },
            BugSpec::MispredictExtraDelay { t: 25 },
        ]);
        let mut config = CollectionConfig::new(
            vec![
                EngineSpec::Gbt(GbtParams {
                    n_trees: 40,
                    ..GbtParams::default()
                }),
                EngineSpec::Gbt(GbtParams {
                    n_trees: 40,
                    split_strategy: SplitStrategy::Exact,
                    ..GbtParams::default()
                }),
            ],
            catalog,
        );
        config.scale = ProbeScale::tiny();
        config.benchmarks = vec![
            benchmark("458.sjeng").expect("suite"),
            benchmark("462.libquantum").expect("suite"),
        ];
        config.max_probes = Some(6);
        config.threads = 2;
        config
    }

    #[test]
    fn collection_shapes_are_consistent() {
        let config = tiny_config();
        let col = collect(&config);
        assert_eq!(col.probes.len(), 6);
        // 10 eval designs x (1 + 3 bugs) keys.
        assert_eq!(col.keys.len(), 10 * 4);
        // The persisted catalog tells the split strategies apart.
        let names: Vec<&str> = col.engines.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["GBT-40", "GBT-40-exact"]);
        for engine in &col.engines {
            assert_eq!(engine.deltas.len(), col.probes.len());
            for d in &engine.deltas {
                assert_eq!(d.len(), col.keys.len());
                assert!(d.iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
        assert_eq!(col.overall_ipc.len(), col.probes.len());
        assert_eq!(col.agg_features[0].len(), col.keys.len());
    }

    #[test]
    fn end_to_end_detection_beats_chance() {
        let config = tiny_config();
        let col = collect(&config);
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        // With severe injected bugs the detector must do better than a
        // coin flip on this tiny setup.
        assert!(eval.metrics.roc_auc > 0.5, "AUC {}", eval.metrics.roc_auc);
        assert_eq!(eval.folds.len(), 3);
        // Pooled decisions: 3 folds x (4 test designs x (1 neg + 1 pos)).
        assert_eq!(eval.metrics.positives + eval.metrics.negatives, 24);
        // The exact-splitter engine detects on the same corpus too.
        let exact = evaluate_two_stage(&col, 1, Stage2Params::default());
        assert!(exact.metrics.roc_auc > 0.5, "AUC {}", exact.metrics.roc_auc);
    }

    #[test]
    fn severity_impacts_nonnegative() {
        let config = tiny_config();
        let col = collect(&config);
        let impacts = severity_impacts(&col);
        assert_eq!(impacts.len(), 3);
        assert!(impacts.iter().all(|i| *i >= 0.0));
    }

    #[test]
    fn probe_subsetting_reduces_columns() {
        let config = tiny_config();
        let col = collect(&config);
        let full = evaluate_two_stage(&col, 0, Stage2Params::default());
        let subset = evaluate_two_stage_subset(&col, 0, Stage2Params::default(), &[0, 1, 2]);
        assert_eq!(full.folds.len(), subset.folds.len());
    }

    #[test]
    fn subsample_round_robins() {
        let config = tiny_config();
        let col = collect(&config);
        // Both benchmarks must be represented in the 6 probes.
        let benches: std::collections::HashSet<&str> =
            col.probes.iter().map(|p| p.benchmark.as_str()).collect();
        assert_eq!(benches.len(), 2);
    }

    #[test]
    fn bugfree_errors_are_per_probe_per_test_arch() {
        let config = tiny_config();
        let col = collect(&config);
        let errors = bugfree_test_errors(&col, 0);
        assert_eq!(errors.len(), 4 * col.probes.len());
    }
}

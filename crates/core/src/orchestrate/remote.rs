//! Distributed shard fan-out: a length-prefixed TCP worker protocol and
//! the [`RemoteLauncher`] that drives it from the supervision state
//! machine.
//!
//! PR 7 split supervision from process management behind the
//! [`Launcher`] seam; this module walks through it to leave the machine.
//! The shape is deliberately thin:
//!
//! * a **worker daemon** (`pborch worker-daemon`, built on
//!   [`serve_daemon`] + [`CommandAgent`]) listens on a socket, accepts
//!   one [`Frame::Launch`] per connection, re-invokes the worker binary
//!   exactly as [`ProcessLauncher`](super::ProcessLauncher) would, and
//!   streams back heartbeat / shard-checksum / exit frames;
//! * a [`RemoteLauncher`] on the supervisor side multiplexes N endpoints
//!   (host list from `--hosts` or [`HOSTS_ENV`]) behind the unchanged
//!   [`run_orchestrator`](super::run_orchestrator) loop — **a dead
//!   connection is just a failed attempt**: connect refusal and daemon
//!   rejection surface as spawn failures, a mid-stream hangup as a wait
//!   failure, and the existing retry/requeue/exclusion budget does the
//!   rest;
//! * `resume_offset` rides the protocol both ways (the launch frame
//!   carries the supervisor's durable-prefix knowledge, heartbeats carry
//!   the daemon's), so torn shards resume remotely exactly like they do
//!   locally.
//!
//! Framing reuses the cache codec's checksum primitive (FNV-1a 64,
//! `persist::fnv1a`): every frame is `len:u32le | tag:u8 | payload |
//! fnv1a(tag||payload):u64le`, decoded incrementally and rejected on any
//! truncation or bit flip. The byte-level spec lives in
//! `docs/FORMAT.md` §9; determinism of the *corpus* is untouched because
//! the protocol only moves launch requests and status — shard bytes are
//! still written by the worker process through the atomic persist path.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::process::Command;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::exec::ShardSpec;
use crate::persist::{self, ExperimentKind, PersistError};

use super::{verify_shard_file, ChildHandle, CollectPlan, ExitKind, Launcher, WorkerHandle};

/// Environment variable naming the worker-daemon endpoints
/// (`host:port[,host:port...]`) a distributed `pborch run` fans out to.
pub const HOSTS_ENV: &str = "PERFBUG_ORCH_HOSTS";

/// Wire protocol version, first field of every launch frame. Daemons
/// reject launches from a different protocol generation instead of
/// guessing at field layouts.
pub const PROTOCOL_VERSION: u32 = 1;

/// Ceiling on one frame's `len` field. Frames carry launch metadata and
/// status only (never corpus bytes), so anything near this is corruption
/// or a stray client, not a legitimate message.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Smallest legal `len`: a bare tag plus the 8-byte checksum.
const MIN_FRAME_LEN: u32 = 9;

const TAG_LAUNCH: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_REJECTED: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_EXITED: u8 = 5;
const TAG_SHARD_CHECKSUM: u8 = 6;

// --------------------------------------------------------------------------
// Frames
// --------------------------------------------------------------------------

/// One shard-launch request as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchRequest {
    /// Cache file prefix (for `pborch`, the spec name the daemon
    /// re-resolves locally — configs never cross the wire, identities
    /// do).
    pub prefix: String,
    /// Experiment kind of the pass.
    pub kind: ExperimentKind,
    /// Config fingerprint the daemon must reproduce from `prefix`; a
    /// mismatch (version skew, diverged spec) is rejected before any
    /// work starts.
    pub fingerprint: u64,
    /// The shard to collect.
    pub shard: ShardSpec,
    /// Supervisor-side attempt number (provenance only).
    pub attempt: u32,
    /// Cache directory the worker collects into.
    pub cache_dir: String,
    /// Durable part-file probes the supervisor believes exist — the
    /// resume hint that lets torn shards continue remotely.
    pub resume_offset: u64,
}

/// A protocol frame. Launch flows supervisor → daemon; everything else
/// flows back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Start one shard attempt.
    Launch(LaunchRequest),
    /// The daemon admitted the launch and spawned the worker;
    /// `resume_offset` is the durable prefix it sees on its side.
    Accepted {
        /// Daemon-side durable part-file probes at spawn time.
        resume_offset: u64,
    },
    /// The daemon refused the launch (fingerprint mismatch, unknown
    /// spec, spawn failure). The connection closes after this frame.
    Rejected {
        /// Human-readable refusal, surfaced in the run report's
        /// spawn-failed detail.
        reason: String,
    },
    /// Periodic liveness + progress signal while the worker runs.
    Heartbeat {
        /// Durable part-file probes of the running shard.
        durable_probes: u64,
    },
    /// FNV-1a 64 of the finished shard file, sent before a successful
    /// exit frame so the supervisor can cross-check the bytes it reads.
    ShardChecksum {
        /// Whole-file checksum of the shard the worker produced.
        checksum: u64,
    },
    /// The worker exited; final frame of a served launch.
    Exited {
        /// How the worker exited.
        exit: ExitKind,
    },
}

impl Frame {
    /// Frame name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Launch(_) => "launch",
            Frame::Accepted { .. } => "accepted",
            Frame::Rejected { .. } => "rejected",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::ShardChecksum { .. } => "shard-checksum",
            Frame::Exited { .. } => "exited",
        }
    }

    /// Serializes the frame: `len:u32le | tag:u8 | payload |
    /// fnv1a(tag||payload):u64le` with `len` counting everything after
    /// itself.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        match self {
            Frame::Launch(req) => {
                body.push(TAG_LAUNCH);
                put_u32(&mut body, PROTOCOL_VERSION);
                put_str(&mut body, &req.prefix);
                put_str(&mut body, req.kind.as_str());
                put_u64(&mut body, req.fingerprint);
                put_u32(&mut body, req.shard.index as u32);
                put_u32(&mut body, req.shard.count as u32);
                put_u32(&mut body, req.attempt);
                put_str(&mut body, &req.cache_dir);
                put_u64(&mut body, req.resume_offset);
            }
            Frame::Accepted { resume_offset } => {
                body.push(TAG_ACCEPTED);
                put_u64(&mut body, *resume_offset);
            }
            Frame::Rejected { reason } => {
                body.push(TAG_REJECTED);
                put_str(&mut body, reason);
            }
            Frame::Heartbeat { durable_probes } => {
                body.push(TAG_HEARTBEAT);
                put_u64(&mut body, *durable_probes);
            }
            Frame::ShardChecksum { checksum } => {
                body.push(TAG_SHARD_CHECKSUM);
                put_u64(&mut body, *checksum);
            }
            Frame::Exited { exit } => {
                body.push(TAG_EXITED);
                let (tag, code) = exit_to_wire(*exit);
                body.push(tag);
                put_u32(&mut body, code as u32);
            }
        }
        let checksum = persist::fnv1a(&body);
        let mut out = Vec::with_capacity(body.len() + 12);
        put_u32(&mut out, (body.len() + 8) as u32);
        out.extend_from_slice(&body);
        put_u64(&mut out, checksum);
        out
    }

    /// Incremental decode: `Ok(None)` while `buf` holds no complete
    /// frame yet, `Ok(Some((frame, consumed)))` on success, `Err` on a
    /// frame that can never become valid (bad length, checksum mismatch,
    /// malformed payload). Never panics on any input.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        let Some(len_bytes) = buf.get(..4) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(le4(len_bytes));
        if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&len) {
            return Err(FrameError(format!(
                "frame length {len} outside [{MIN_FRAME_LEN}, {MAX_FRAME_LEN}]"
            )));
        }
        let total = 4 + len as usize;
        let Some(body) = buf.get(4..total) else {
            return Ok(None);
        };
        // len >= MIN_FRAME_LEN guarantees the split point exists.
        let (payload, sum_bytes) = body.split_at(len as usize - 8);
        let expected = u64::from_le_bytes(le8(sum_bytes));
        let actual = persist::fnv1a(payload);
        if actual != expected {
            return Err(FrameError(format!(
                "frame checksum mismatch: computed {actual:016x}, frame says {expected:016x}"
            )));
        }
        let Some((&tag, rest)) = payload.split_first() else {
            return Err(FrameError("empty frame payload".into()));
        };
        let mut c = Cursor { buf: rest };
        let frame = match tag {
            TAG_LAUNCH => {
                let version = c.u32()?;
                if version != PROTOCOL_VERSION {
                    return Err(FrameError(format!(
                        "protocol version {version} (this build speaks {PROTOCOL_VERSION})"
                    )));
                }
                let prefix = c.str()?;
                let kind_str = c.str()?;
                let kind = ExperimentKind::parse(&kind_str)
                    .ok_or_else(|| FrameError(format!("unknown experiment kind {kind_str:?}")))?;
                let fingerprint = c.u64()?;
                let index = c.u32()? as usize;
                let count = c.u32()? as usize;
                if count == 0 || index >= count {
                    return Err(FrameError(format!("invalid shard {index}/{count}")));
                }
                let attempt = c.u32()?;
                let cache_dir = c.str()?;
                let resume_offset = c.u64()?;
                Frame::Launch(LaunchRequest {
                    prefix,
                    kind,
                    fingerprint,
                    shard: ShardSpec::new(index, count),
                    attempt,
                    cache_dir,
                    resume_offset,
                })
            }
            TAG_ACCEPTED => Frame::Accepted {
                resume_offset: c.u64()?,
            },
            TAG_REJECTED => Frame::Rejected { reason: c.str()? },
            TAG_HEARTBEAT => Frame::Heartbeat {
                durable_probes: c.u64()?,
            },
            TAG_EXITED => {
                let kind_tag = c.u8()?;
                let code = c.u32()? as i32;
                Frame::Exited {
                    exit: exit_from_wire(kind_tag, code)?,
                }
            }
            TAG_SHARD_CHECKSUM => Frame::ShardChecksum { checksum: c.u64()? },
            t => return Err(FrameError(format!("unknown frame tag {t}"))),
        };
        c.done()?;
        Ok(Some((frame, total)))
    }
}

/// Why a byte sequence cannot be (or become) a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire frame: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn exit_to_wire(exit: ExitKind) -> (u8, i32) {
    match exit {
        ExitKind::Success => (0, 0),
        ExitKind::Failure { code: Some(code) } => (1, code),
        ExitKind::Failure { code: None } => (2, 0),
    }
}

fn exit_from_wire(tag: u8, code: i32) -> Result<ExitKind, FrameError> {
    match tag {
        0 => Ok(ExitKind::Success),
        1 => Ok(ExitKind::Failure { code: Some(code) }),
        2 => Ok(ExitKind::Failure { code: None }),
        t => Err(FrameError(format!("unknown exit status tag {t}"))),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Infallible 4-byte copy of a slice already length-checked by the
/// caller; a short slice yields zeroes rather than a panic.
fn le4(bytes: &[u8]) -> [u8; 4] {
    let mut a = [0u8; 4];
    for (dst, src) in a.iter_mut().zip(bytes) {
        *dst = *src;
    }
    a
}

fn le8(bytes: &[u8]) -> [u8; 8] {
    let mut a = [0u8; 8];
    for (dst, src) in a.iter_mut().zip(bytes) {
        *dst = *src;
    }
    a
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    // pblint: allow(slice-index) -- `&'a [u8]` is a type annotation, not an index
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    // pblint: allow(slice-index) -- `&'a [u8]` is a type annotation, not an index
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError(format!(
                "payload truncated: needed {n} more bytes, had {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(le4(self.take(4)?)))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(le8(self.take(8)?)))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_LEN as usize {
            return Err(FrameError(format!("string length {n} exceeds frame cap")));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError("string field is not UTF-8".into()))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(FrameError(format!(
                "{} trailing payload bytes",
                self.buf.len()
            )))
        }
    }
}

/// Reads one complete frame from `stream`, honouring its configured read
/// timeout. EOF mid-frame and undecodable bytes are errors.
fn read_frame_blocking(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<Frame> {
    loop {
        match Frame::decode(buf)? {
            Some((frame, consumed)) => {
                buf.drain(..consumed);
                return Ok(frame);
            }
            None => {
                let mut tmp = [0u8; 4096];
                let n = stream.read(&mut tmp)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ));
                }
                buf.extend_from_slice(tmp.get(..n).unwrap_or(&[]));
            }
        }
    }
}

// --------------------------------------------------------------------------
// Supervisor side: RemoteLauncher
// --------------------------------------------------------------------------

/// Durable-progress and checksum reports received over the wire, shared
/// between the launcher and its live handles. `BTreeMap` keeps every
/// iteration (and therefore every report) deterministically ordered.
#[derive(Debug, Default)]
struct Observed {
    durable: BTreeMap<usize, u64>,
    checksums: BTreeMap<usize, u64>,
}

fn lock_observed(m: &Mutex<Observed>) -> MutexGuard<'_, Observed> {
    // A panicked holder cannot exist: accessors only insert/read plain
    // integers. Recover the guard rather than propagating poison.
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

type VerifyFn = Box<dyn FnMut(ShardSpec, Option<u64>) -> Result<(), String>>;

/// [`Launcher`] that starts shard attempts on remote worker daemons.
///
/// Endpoints are tried in rotation starting after the last successful
/// launch; one `launch` call walks the whole list before giving up, so a
/// single healthy daemon keeps a pass alive no matter how many dead
/// addresses surround it. Every failure mode maps onto the supervision
/// state machine's existing vocabulary — connect refusal / rejection →
/// spawn failure (requeue), mid-stream hangup → wait failure (requeue),
/// budget exhaustion → exclusion — so distributed runs inherit the
/// retry/byte-identity guarantees of local ones unchanged.
pub struct RemoteLauncher {
    endpoints: Vec<String>,
    next_endpoint: usize,
    prefix: String,
    kind: ExperimentKind,
    fingerprint: u64,
    cache_dir: String,
    plan: Option<CollectPlan>,
    connect_timeout: Duration,
    handshake_timeout: Duration,
    observed: Arc<Mutex<Observed>>,
    verify: VerifyFn,
}

impl RemoteLauncher {
    /// Launcher for a shared-filesystem plan (the loopback / NFS case CI
    /// exercises): daemons collect into `plan.dir`, the supervisor
    /// verifies shard files locally and cross-checks them against the
    /// daemon-reported checksum.
    pub fn for_plan(endpoints: Vec<String>, plan: &CollectPlan) -> Self {
        let verify_plan = plan.clone();
        let verify: VerifyFn = Box::new(move |shard, remote_sum| {
            verify_shard_file(&verify_plan, shard)?;
            if let Some(expected) = remote_sum {
                let path = verify_plan.shard_path(shard);
                let bytes = std::fs::read(&path)
                    .map_err(|e| format!("shard file {} unreadable: {e}", path.display()))?;
                let local = persist::fnv1a(&bytes);
                if local != expected {
                    return Err(format!(
                        "shard file {} checksum {local:016x} does not match the \
                         worker-reported {expected:016x} (divergent filesystems?)",
                        path.display()
                    ));
                }
            }
            Ok(())
        });
        Self::with_verify(
            endpoints,
            &plan.prefix,
            plan.kind,
            plan.fingerprint,
            &plan.dir.to_string_lossy(),
            Some(plan.clone()),
            verify,
        )
    }

    /// Fully explicit constructor (tests script `verify`; `plan: None`
    /// makes durable-progress accounting rely on heartbeats alone).
    pub fn with_verify(
        endpoints: Vec<String>,
        prefix: &str,
        kind: ExperimentKind,
        fingerprint: u64,
        cache_dir: &str,
        plan: Option<CollectPlan>,
        verify: VerifyFn,
    ) -> Self {
        RemoteLauncher {
            endpoints,
            next_endpoint: 0,
            prefix: prefix.to_string(),
            kind,
            fingerprint,
            cache_dir: cache_dir.to_string(),
            plan,
            connect_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(30),
            observed: Arc::new(Mutex::new(Observed::default())),
            verify,
        }
    }

    /// Overrides the connect/handshake timeouts (tests shrink them).
    pub fn set_timeouts(&mut self, connect: Duration, handshake: Duration) {
        self.connect_timeout = connect;
        self.handshake_timeout = handshake;
    }

    /// Best local knowledge of a shard's durable part-file prefix:
    /// the part file itself when the plan is visible on this
    /// filesystem, otherwise the last heartbeat.
    fn durable_for(&self, shard: ShardSpec) -> Option<u64> {
        if let Some(plan) = &self.plan {
            return Some(match persist::scan_part_file(&plan.part_path(shard)) {
                Ok(prefix) => prefix.probes,
                Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::NotFound => 0,
                Err(_) => 0,
            });
        }
        lock_observed(&self.observed)
            .durable
            .get(&shard.index)
            .copied()
    }

    fn try_endpoint(&self, endpoint: &str, req: &LaunchRequest) -> io::Result<RemoteHandle> {
        let addr = endpoint
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other(format!("{endpoint}: resolved to no address")))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        stream.write_all(&Frame::Launch(req.clone()).encode())?;
        stream.set_read_timeout(Some(self.handshake_timeout))?;
        let mut buf = Vec::new();
        match read_frame_blocking(&mut stream, &mut buf)? {
            Frame::Accepted { resume_offset } => {
                if resume_offset > 0 {
                    lock_observed(&self.observed)
                        .durable
                        .insert(req.shard.index, resume_offset);
                }
            }
            Frame::Rejected { reason } => {
                return Err(io::Error::other(format!("launch rejected: {reason}")));
            }
            other => {
                return Err(io::Error::other(format!(
                    "daemon sent {} during handshake",
                    other.name()
                )));
            }
        }
        stream.set_nonblocking(true)?;
        Ok(RemoteHandle {
            stream,
            buf,
            shard: req.shard.index,
            observed: Arc::clone(&self.observed),
            exit: None,
        })
    }
}

impl Launcher for RemoteLauncher {
    type Handle = RemoteHandle;

    fn launch(
        &mut self,
        shard: ShardSpec,
        attempt: u32,
        _worker: usize,
    ) -> io::Result<RemoteHandle> {
        let req = LaunchRequest {
            prefix: self.prefix.clone(),
            kind: self.kind,
            fingerprint: self.fingerprint,
            shard,
            attempt,
            cache_dir: self.cache_dir.clone(),
            resume_offset: self.durable_for(shard).unwrap_or(0),
        };
        let n = self.endpoints.len();
        let mut last_err = io::Error::other("no remote endpoints configured");
        for k in 0..n {
            let idx = (self.next_endpoint + k) % n;
            let Some(endpoint) = self.endpoints.get(idx).cloned() else {
                continue;
            };
            match self.try_endpoint(&endpoint, &req) {
                Ok(handle) => {
                    self.next_endpoint = (idx + 1) % n;
                    return Ok(handle);
                }
                Err(e) => last_err = io::Error::new(e.kind(), format!("{endpoint}: {e}")),
            }
        }
        Err(last_err)
    }

    fn verify(&mut self, shard: ShardSpec) -> Result<(), String> {
        let remote_sum = lock_observed(&self.observed)
            .checksums
            .get(&shard.index)
            .copied();
        (self.verify)(shard, remote_sum)
    }

    fn durable_probes(&mut self, shard: ShardSpec) -> Option<u64> {
        self.durable_for(shard)
    }

    fn tear_output(&mut self, shard: ShardSpec) {
        let Some(plan) = self.plan.as_ref() else {
            return;
        };
        let part = plan.part_path(shard);
        if let Ok(prefix) = persist::scan_part_file(&part) {
            if prefix.probes > 0 {
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&part) {
                    let _ = file.set_len(prefix.durable_len - 8);
                }
            }
        }
    }
}

/// Live connection to one remote shard attempt.
pub struct RemoteHandle {
    stream: TcpStream,
    buf: Vec<u8>,
    shard: usize,
    observed: Arc<Mutex<Observed>>,
    exit: Option<ExitKind>,
}

impl WorkerHandle for RemoteHandle {
    fn try_finish(&mut self) -> io::Result<Option<ExitKind>> {
        loop {
            // Drain every complete frame already buffered.
            loop {
                match Frame::decode(&self.buf)? {
                    None => break,
                    Some((frame, consumed)) => {
                        self.buf.drain(..consumed);
                        match frame {
                            Frame::Heartbeat { durable_probes } => {
                                lock_observed(&self.observed)
                                    .durable
                                    .insert(self.shard, durable_probes);
                            }
                            Frame::ShardChecksum { checksum } => {
                                lock_observed(&self.observed)
                                    .checksums
                                    .insert(self.shard, checksum);
                            }
                            Frame::Exited { exit } => self.exit = Some(exit),
                            other => {
                                return Err(io::Error::other(format!(
                                    "daemon sent {} while the attempt was running",
                                    other.name()
                                )));
                            }
                        }
                    }
                }
            }
            if let Some(exit) = self.exit {
                return Ok(Some(exit));
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                // EOF without an exit frame: the daemon (or its host)
                // died mid-attempt. Surfaces as a wait failure, which
                // requeues the shard within its budget.
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon connection closed before the exit notification",
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(tmp.get(..n).unwrap_or(&[])),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    fn kill(&mut self) {
        // Hanging up is the kill signal: the daemon kills its child the
        // moment the supervisor's connection drops.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

// --------------------------------------------------------------------------
// Daemon side
// --------------------------------------------------------------------------

/// Daemon-side policy for one launch: admission, spawning, and progress
/// introspection. [`CommandAgent`] is the production implementation;
/// tests script this directly to drive the loopback suite in-process.
pub trait ShardAgent: Send + Sync {
    /// Admission check before anything is spawned; `Err` becomes the
    /// [`Frame::Rejected`] reason.
    fn accept(&self, req: &LaunchRequest) -> Result<(), String> {
        let _ = req;
        Ok(())
    }

    /// Starts the worker for an admitted request.
    fn launch(&self, req: &LaunchRequest) -> io::Result<Box<dyn WorkerHandle + Send>>;

    /// Durable part-file probes visible on the daemon's filesystem
    /// (rides [`Frame::Accepted`] and every heartbeat).
    fn durable_probes(&self, req: &LaunchRequest) -> Option<u64> {
        let _ = req;
        None
    }

    /// Checksum of the finished shard file, sent before a successful
    /// exit frame.
    fn shard_checksum(&self, req: &LaunchRequest) -> Option<u64> {
        let _ = req;
        None
    }
}

/// Timing knobs of the daemon's per-connection supervision loop.
#[derive(Debug, Clone, Copy)]
pub struct DaemonOptions {
    /// Child poll / client liveness-check cadence.
    pub poll_interval: Duration,
    /// Interval between heartbeat frames.
    pub heartbeat_interval: Duration,
    /// How long a fresh connection may take to deliver its launch frame.
    pub handshake_timeout: Duration,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            poll_interval: Duration::from_millis(25),
            heartbeat_interval: Duration::from_millis(250),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Accept loop: serves every connection on its own thread until the
/// listener errors (or the process is killed — the daemon holds no state
/// that outlives its children, so SIGKILL is a legitimate shutdown).
pub fn serve_daemon(
    listener: TcpListener,
    agent: Arc<dyn ShardAgent>,
    options: DaemonOptions,
) -> io::Result<()> {
    loop {
        let (stream, _peer) = listener.accept()?;
        let agent = Arc::clone(&agent);
        std::thread::spawn(move || {
            let _ = serve_connection(stream, agent.as_ref(), options);
        });
    }
}

/// Serves one launch on an accepted connection: handshake, spawn,
/// supervise, report. The client hanging up at any point kills the
/// worker — the supervisor's socket shutdown *is* its kill signal, so no
/// orphaned child outlives its attempt.
pub fn serve_connection(
    mut stream: TcpStream,
    agent: &dyn ShardAgent,
    options: DaemonOptions,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(options.handshake_timeout))?;
    let mut buf = Vec::new();
    let req = match read_frame_blocking(&mut stream, &mut buf) {
        Ok(Frame::Launch(req)) => req,
        Ok(other) => {
            let _ = stream.write_all(
                &Frame::Rejected {
                    reason: format!("expected a launch frame, got {}", other.name()),
                }
                .encode(),
            );
            return Ok(());
        }
        // Undecodable handshake (stray client, protocol skew): reject
        // when the socket still works, then drop the connection.
        Err(e) => {
            let _ = stream.write_all(
                &Frame::Rejected {
                    reason: format!("bad handshake: {e}"),
                }
                .encode(),
            );
            return Err(e);
        }
    };
    if let Err(reason) = agent.accept(&req) {
        let _ = stream.write_all(&Frame::Rejected { reason }.encode());
        return Ok(());
    }
    let mut child = match agent.launch(&req) {
        Ok(child) => child,
        Err(e) => {
            let _ = stream.write_all(
                &Frame::Rejected {
                    reason: format!("spawn failed: {e}"),
                }
                .encode(),
            );
            return Ok(());
        }
    };
    let resume = agent.durable_probes(&req).unwrap_or(0);
    if stream
        .write_all(
            &Frame::Accepted {
                resume_offset: resume,
            }
            .encode(),
        )
        .is_err()
    {
        child.kill();
        return Ok(());
    }
    // Supervision loop. The timed read doubles as pacing and liveness
    // probe: the supervisor never sends after its launch frame, so EOF
    // (or any stray byte) means this attempt is dead — kill the child.
    stream.set_read_timeout(Some(options.poll_interval))?;
    let mut last_heartbeat = Instant::now();
    loop {
        match child.try_finish() {
            Ok(Some(exit)) => {
                if exit == ExitKind::Success {
                    if let Some(checksum) = agent.shard_checksum(&req) {
                        let _ = stream.write_all(&Frame::ShardChecksum { checksum }.encode());
                    }
                }
                let _ = stream.write_all(&Frame::Exited { exit }.encode());
                return Ok(());
            }
            Ok(None) => {}
            // The wait itself failed: worker state is unknowable. Close
            // without an exit frame — the supervisor records a wait
            // failure and requeues the shard on another attempt.
            Err(_) => {
                child.kill();
                return Ok(());
            }
        }
        if last_heartbeat.elapsed() >= options.heartbeat_interval {
            last_heartbeat = Instant::now();
            let beat = Frame::Heartbeat {
                durable_probes: agent.durable_probes(&req).unwrap_or(0),
            };
            if stream.write_all(&beat.encode()).is_err() {
                child.kill();
                return Ok(());
            }
        }
        let mut probe = [0u8; 64];
        match stream.read(&mut probe) {
            Ok(0) | Ok(_) => {
                child.kill();
                return Ok(());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                child.kill();
                return Ok(());
            }
        }
    }
}

/// [`ShardAgent`] that spawns one child process per admitted launch —
/// the daemon-side analogue of [`super::ProcessLauncher`]. `admit`
/// validates a request and resolves it to the local [`CollectPlan`]
/// (fingerprint equality, known prefix); `build` constructs the worker
/// `Command`.
pub struct CommandAgent<A, B> {
    /// Request validation + plan resolution; `Err` is the rejection
    /// reason sent back to the supervisor.
    pub admit: A,
    /// Builds the worker command for an admitted request.
    pub build: B,
}

impl<A, B> ShardAgent for CommandAgent<A, B>
where
    A: Fn(&LaunchRequest) -> Result<CollectPlan, String> + Send + Sync,
    B: Fn(&LaunchRequest) -> Command + Send + Sync,
{
    fn accept(&self, req: &LaunchRequest) -> Result<(), String> {
        (self.admit)(req).map(|_| ())
    }

    fn launch(&self, req: &LaunchRequest) -> io::Result<Box<dyn WorkerHandle + Send>> {
        let child = (self.build)(req).spawn()?;
        Ok(Box::new(ChildHandle(child)))
    }

    fn durable_probes(&self, req: &LaunchRequest) -> Option<u64> {
        let plan = (self.admit)(req).ok()?;
        Some(match persist::scan_part_file(&plan.part_path(req.shard)) {
            Ok(prefix) => prefix.probes,
            Err(_) => 0,
        })
    }

    fn shard_checksum(&self, req: &LaunchRequest) -> Option<u64> {
        let plan = (self.admit)(req).ok()?;
        let bytes = std::fs::read(plan.shard_path(req.shard)).ok()?;
        Some(persist::fnv1a(&bytes))
    }
}

/// Parses a `host:port[,host:port...]` endpoint list (commas and/or
/// whitespace separate entries).
pub fn parse_hosts(raw: &str) -> Result<Vec<String>, String> {
    let mut hosts = Vec::new();
    for entry in raw.split([',', ' ', '\t', '\n']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        if !entry.contains(':') {
            return Err(format!("endpoint {entry:?} is not host:port"));
        }
        hosts.push(entry.to_string());
    }
    if hosts.is_empty() {
        return Err("empty endpoint list".into());
    }
    Ok(hosts)
}

/// Endpoint list from [`HOSTS_ENV`]: `Ok(None)` when unset, `Err` when
/// set but unparsable.
pub fn hosts_from_env() -> Result<Option<Vec<String>>, String> {
    match std::env::var(HOSTS_ENV) {
        Ok(raw) => parse_hosts(&raw)
            .map(Some)
            .map_err(|e| format!("{HOSTS_ENV}: {e}")),
        Err(_) => Ok(None),
    }
}

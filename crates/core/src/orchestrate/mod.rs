//! Shard orchestration: a fault-tolerant process-pool driver for sharded
//! collection passes.
//!
//! PR 3 made collection shardable (`exec::ShardSpec`, one `.pbcol` shard
//! file per worker, `persist::merge_collections` reassembly), but shards
//! still had to be launched and babysat by hand — one
//! `PERFBUG_SHARD=<i>/<n>` invocation per terminal. This module is the
//! *driver* for that workflow:
//!
//! * the probe axis is partitioned into **more shards than workers** and
//!   fed through a work queue (not static assignment), so a slow or lost
//!   worker only delays its current shard, never a fixed fraction of the
//!   pass;
//! * shard workers run as **child processes** (re-invocations of the
//!   current binary with `PERFBUG_SHARD`-style arguments — see
//!   [`ProcessLauncher`] and the `pborch` binary in `crates/bench`);
//! * the supervisor monitors exit status, verifies each claimed success
//!   by decoding the shard file it should have produced (the shard file
//!   *is* the heartbeat — a worker that exits 0 without its file on disk
//!   failed), and enforces an optional per-shard timeout on hung workers;
//! * failed, hung or killed shards are **requeued onto surviving
//!   workers** with a bounded per-shard retry budget; a shard that
//!   exhausts its budget lands on the exclusion list and the run is
//!   reported as failed (never silently partial);
//! * the finished pass is assembled through the existing
//!   [`merge_collections`](crate::persist::merge_collections) path, so
//!   the result is bit-identical (wall-clock timings aside) to a
//!   single-process collection **for any schedule of worker losses** —
//!   shard workers write atomically (temp file + rename, see
//!   `docs/FORMAT.md`), so a killed worker can never leave a partial
//!   `.pbcol` visible to assembly;
//! * every run emits a machine-readable JSON **run report** (per-shard
//!   attempts, outcomes, worker assignments, timings) next to the cache
//!   file; `pbcol inspect` prints it as shard-attempt provenance.
//!
//! Supervision is deliberately split from process management: the state
//! machine ([`run_orchestrator`]) drives any [`Launcher`], and the unit
//! and property suites script launchers with deterministic failures,
//! while production uses [`ProcessLauncher`] over `std::process`.
//!
//! # Fault injection
//!
//! `PERFBUG_ORCH_FAULT=kill:<shard>[@<attempt>][,...]` ([`Fault`]) makes
//! the *orchestrator itself* kill the named shard's worker on the named
//! attempt (default: first). CI's `orchestrate-guard` leg uses this to
//! prove, on every push, that losing a worker mid-pass still converges to
//! the bit-identical corpus.

pub mod remote;

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use crate::exec::ShardSpec;
use crate::experiment::Collection;
use crate::persist::{
    self, cache_file_name, shard_file_name, CacheStatus, ExperimentKind, PersistError,
};

/// Environment variable holding injected orchestrator faults.
pub const FAULT_ENV: &str = "PERFBUG_ORCH_FAULT";

/// Extension of the JSON run report written beside the cache file
/// (`<prefix>-<kind>-<fingerprint>.orchrun.json`).
pub const REPORT_EXTENSION: &str = "orchrun.json";

/// The run-report path belonging to a full cache file path.
pub fn report_path_for(cache_file: &Path) -> PathBuf {
    cache_file.with_extension(REPORT_EXTENSION)
}

// --------------------------------------------------------------------------
// Faults
// --------------------------------------------------------------------------

/// An injected fault, parsed from [`FAULT_ENV`]. Faults are a test hook of
/// the *orchestrator* (it sabotages its own workers), so worker code needs
/// no fault-injection paths and children never see the variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Kill the worker running `shard` on attempt `attempt` right after
    /// launch, simulating worker loss (OOM kill, host failure, operator
    /// ctrl-C).
    Kill {
        /// Shard whose worker is killed.
        shard: usize,
        /// Attempt (0-based) on which the kill fires.
        attempt: u32,
    },
    /// Kill the worker *mid-shard*: wait until at least one probe chunk
    /// is durable in its part file ([`Launcher::durable_probes`]), then
    /// kill. Exercises the crash-recovery resume path — the retry must
    /// re-collect strictly fewer probes than the shard holds.
    KillMid {
        /// Shard whose worker is killed.
        shard: usize,
        /// Attempt (0-based) on which the kill fires.
        attempt: u32,
    },
    /// [`Fault::KillMid`], then tear the part file mid-chunk
    /// ([`Launcher::tear_output`]): the last durable chunk loses its
    /// tail, so recovery must truncate a *torn* chunk — not just pick up
    /// a cleanly cut prefix.
    Torn {
        /// Shard whose worker is killed.
        shard: usize,
        /// Attempt (0-based) on which the kill fires.
        attempt: u32,
    },
}

impl Fault {
    /// Parses a comma-separated fault list: `<op>:<shard>` (first
    /// attempt) or `<op>:<shard>@<attempt>`, with ops `kill`, `killmid`
    /// and `torn`.
    pub fn parse_list(raw: &str) -> Result<Vec<Fault>, String> {
        let mut faults = Vec::new();
        for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (op, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault {part:?} is not <op>:<shard>[@<attempt>]"))?;
            let (shard, attempt) = match rest.split_once('@') {
                Some((s, a)) => (
                    s,
                    a.parse().map_err(|_| format!("bad attempt in {part:?}"))?,
                ),
                None => (rest, 0),
            };
            let shard = shard
                .parse()
                .map_err(|_| format!("bad shard index in {part:?}"))?;
            faults.push(match op {
                "kill" => Fault::Kill { shard, attempt },
                "killmid" => Fault::KillMid { shard, attempt },
                "torn" => Fault::Torn { shard, attempt },
                _ => {
                    return Err(format!(
                        "unknown fault op {op:?} (supported: kill, killmid, torn)"
                    ))
                }
            });
        }
        Ok(faults)
    }

    /// Whether this fault targets the given (shard, attempt).
    pub fn matches(&self, shard: usize, attempt: u32) -> bool {
        let (Fault::Kill {
            shard: s,
            attempt: a,
        }
        | Fault::KillMid {
            shard: s,
            attempt: a,
        }
        | Fault::Torn {
            shard: s,
            attempt: a,
        }) = self;
        *s == shard && *a == attempt
    }

    /// Reads [`FAULT_ENV`]; empty when unset.
    ///
    /// A malformed value is an error the caller must surface — a typo'd
    /// fault must not silently run a fault-free pass that then looks
    /// like a passing guard.
    pub fn from_env() -> Result<Vec<Fault>, String> {
        match std::env::var(FAULT_ENV) {
            Ok(raw) => Self::parse_list(&raw)
                .map_err(|e| format!("{FAULT_ENV} must be <op>:<shard>[@<attempt>],...: {e}")),
            Err(_) => Ok(Vec::new()),
        }
    }
}

// --------------------------------------------------------------------------
// Configuration
// --------------------------------------------------------------------------

/// Supervision parameters of one orchestrated pass.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Concurrent worker processes (pool size).
    pub workers: usize,
    /// Shard count the probe axis is split into. Should exceed `workers`
    /// (work queue, not static assignment) so requeued shards land on
    /// surviving workers instead of serialising the tail.
    pub shards: usize,
    /// Per-shard attempt budget (>= 1). A shard failing this many times
    /// is excluded and the run reports failure.
    pub max_attempts: u32,
    /// Optional per-shard wall-clock timeout; a worker exceeding it is
    /// killed and its shard requeued.
    pub shard_timeout: Option<Duration>,
    /// Supervisor poll interval.
    pub poll_interval: Duration,
    /// Minimum delay before a failed shard's next attempt launches, so a
    /// transient condition (spawn pressure, a filesystem hiccup) cannot
    /// burn the whole retry budget within its own few milliseconds.
    pub retry_delay: Duration,
    /// Injected faults (see [`Fault`]); empty in production.
    pub faults: Vec<Fault>,
}

impl OrchestratorConfig {
    /// A configuration with `workers` workers over `shards` shards and
    /// default supervision knobs (3 attempts, no timeout, 20 ms poll,
    /// 100 ms retry delay, no faults).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `shards` is zero.
    pub fn new(workers: usize, shards: usize) -> Self {
        assert!(workers >= 1, "orchestrator needs at least one worker");
        assert!(shards >= 1, "orchestrator needs at least one shard");
        OrchestratorConfig {
            workers,
            shards,
            max_attempts: 3,
            shard_timeout: None,
            poll_interval: Duration::from_millis(20),
            retry_delay: Duration::from_millis(100),
            faults: Vec::new(),
        }
    }
}

// --------------------------------------------------------------------------
// Worker abstraction
// --------------------------------------------------------------------------

/// How a finished worker exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// Clean zero exit.
    Success,
    /// Nonzero exit, or termination by signal (`code: None`).
    Failure {
        /// The process exit code, when one exists.
        code: Option<i32>,
    },
}

/// A launched worker the supervisor can poll and kill.
pub trait WorkerHandle {
    /// Non-blocking completion check: `Ok(None)` while running.
    fn try_finish(&mut self) -> io::Result<Option<ExitKind>>;

    /// Terminates the worker and reaps it. Killing an already-finished
    /// worker is a no-op.
    fn kill(&mut self);
}

/// Launches shard workers and verifies their output. Implementations are
/// the seam between the supervision state machine and the outside world:
/// production launches child processes ([`ProcessLauncher`]), tests script
/// deterministic outcomes.
pub trait Launcher {
    /// Handle type of launched workers.
    type Handle: WorkerHandle;

    /// Starts a worker for `shard` (attempt `attempt`, pool slot
    /// `worker`).
    fn launch(&mut self, shard: ShardSpec, attempt: u32, worker: usize)
        -> io::Result<Self::Handle>;

    /// Confirms a zero-exit worker actually produced its shard — for
    /// collection workers, that the shard file exists and decodes. The
    /// error message names what was wrong.
    fn verify(&mut self, shard: ShardSpec) -> Result<(), String>;

    /// How many probes of `shard` are already durable in its part file
    /// (crash-recovery prefix, see `persist::scan_part`). `None` when the
    /// launcher cannot tell — the default for launchers without access to
    /// the collection plan. Drives [`Fault::KillMid`]/[`Fault::Torn`]
    /// timing and the report's `resumed_probes` accounting.
    fn durable_probes(&mut self, _shard: ShardSpec) -> Option<u64> {
        None
    }

    /// Tears `shard`'s part file mid-chunk after a [`Fault::Torn`] kill
    /// (cuts into the last durable chunk), so recovery must handle a
    /// torn write, not only a clean chunk boundary. Default: no-op.
    fn tear_output(&mut self, _shard: ShardSpec) {}
}

/// [`Launcher`] over real child processes.
///
/// `build` constructs the `Command` re-invoking the current binary (or
/// any worker binary) with the shard's arguments; `verify` typically
/// decodes the shard file the worker should have written. When `plan` is
/// set, the launcher can also inspect shard part files on disk — that
/// powers mid-write fault timing ([`Fault::KillMid`], [`Fault::Torn`])
/// and the `resumed_probes` accounting in the run report.
pub struct ProcessLauncher<B, V> {
    /// Builds the worker command for a (shard, attempt).
    pub build: B,
    /// Post-exit output verification.
    pub verify: V,
    /// The collection plan whose part files this launcher may inspect;
    /// `None` disables part-file awareness (faults degrade to immediate
    /// kills and resume goes unreported).
    pub plan: Option<CollectPlan>,
}

impl<B, V> Launcher for ProcessLauncher<B, V>
where
    B: FnMut(ShardSpec, u32) -> Command,
    V: FnMut(ShardSpec) -> Result<(), String>,
{
    type Handle = ChildHandle;

    fn launch(
        &mut self,
        shard: ShardSpec,
        attempt: u32,
        _worker: usize,
    ) -> io::Result<ChildHandle> {
        (self.build)(shard, attempt).spawn().map(ChildHandle)
    }

    fn verify(&mut self, shard: ShardSpec) -> Result<(), String> {
        (self.verify)(shard)
    }

    fn durable_probes(&mut self, shard: ShardSpec) -> Option<u64> {
        let plan = self.plan.as_ref()?;
        match persist::scan_part_file(&plan.part_path(shard)) {
            Ok(prefix) => Some(prefix.probes),
            // No part yet: the worker has durably written nothing.
            Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Some(0),
            // Unscannable part (e.g. the header itself is still mid-
            // write): nothing durable either.
            Err(_) => Some(0),
        }
    }

    fn tear_output(&mut self, shard: ShardSpec) {
        let Some(plan) = self.plan.as_ref() else {
            return;
        };
        let part = plan.part_path(shard);
        if let Ok(prefix) = persist::scan_part_file(&part) {
            if prefix.probes > 0 {
                // Cut into the last durable chunk's trailing checksum:
                // the classic torn write. Recovery must drop exactly
                // that chunk and resume one probe earlier.
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&part) {
                    let _ = file.set_len(prefix.durable_len - 8);
                }
            }
        }
    }
}

/// [`WorkerHandle`] over a spawned [`Child`].
pub struct ChildHandle(Child);

impl WorkerHandle for ChildHandle {
    fn try_finish(&mut self) -> io::Result<Option<ExitKind>> {
        Ok(self.0.try_wait()?.map(|status| {
            if status.success() {
                ExitKind::Success
            } else {
                ExitKind::Failure {
                    code: status.code(),
                }
            }
        }))
    }

    fn kill(&mut self) {
        // Kill can race a natural exit; either way the child must be
        // reaped so no zombie outlives the supervisor.
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

// --------------------------------------------------------------------------
// Run report
// --------------------------------------------------------------------------

/// How one launch of one shard ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Zero exit and the shard file verified.
    Success,
    /// Nonzero exit or death by signal.
    Exit {
        /// Worker exit code, `None` for signal deaths.
        code: Option<i32>,
    },
    /// Zero exit but the shard's output was missing or undecodable.
    BadOutput {
        /// What the verification found.
        why: String,
    },
    /// Exceeded the per-shard timeout and was killed.
    TimedOut,
    /// Killed by an injected [`Fault`].
    FaultKilled,
    /// The worker process could not be spawned at all.
    SpawnFailed {
        /// The spawn error.
        why: String,
    },
    /// Polling the worker failed; its state is unknown.
    WaitFailed {
        /// The wait error.
        why: String,
    },
}

impl AttemptOutcome {
    /// Whether the attempt completed its shard.
    pub fn is_success(&self) -> bool {
        matches!(self, AttemptOutcome::Success)
    }

    /// Stable machine-readable label used in the JSON report.
    pub fn label(&self) -> &'static str {
        match self {
            AttemptOutcome::Success => "success",
            AttemptOutcome::Exit { .. } => "exit",
            AttemptOutcome::BadOutput { .. } => "bad-output",
            AttemptOutcome::TimedOut => "timed-out",
            AttemptOutcome::FaultKilled => "fault-killed",
            AttemptOutcome::SpawnFailed { .. } => "spawn-failed",
            AttemptOutcome::WaitFailed { .. } => "wait-failed",
        }
    }

    /// Free-form detail (exit code / error message), when any.
    fn detail(&self) -> Option<String> {
        match self {
            AttemptOutcome::Exit { code: Some(c) } => Some(format!("exit code {c}")),
            AttemptOutcome::Exit { code: None } => Some("killed by signal".into()),
            AttemptOutcome::BadOutput { why }
            | AttemptOutcome::SpawnFailed { why }
            | AttemptOutcome::WaitFailed { why } => Some(why.clone()),
            _ => None,
        }
    }
}

impl fmt::Display for AttemptOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.detail() {
            Some(detail) => write!(f, "{} ({detail})", self.label()),
            None => f.write_str(self.label()),
        }
    }
}

/// One supervised launch: which shard, which attempt, which pool slot,
/// how it ended and how long it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttempt {
    /// Shard index.
    pub shard: usize,
    /// 0-based attempt number for this shard.
    pub attempt: u32,
    /// Pool slot (worker id) the attempt ran on.
    pub worker: usize,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Wall-clock duration of the attempt.
    pub duration: Duration,
    /// Probes already durable in the shard's part file when this attempt
    /// launched — the crash-recovery prefix a resuming worker skips.
    /// `None` when the launcher cannot inspect part files
    /// ([`Launcher::durable_probes`]).
    pub resumed_probes: Option<u64>,
}

/// Everything one orchestrated pass did, in launch order — the
/// machine-readable provenance of the assembled corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Shard count of the pass.
    pub shards: usize,
    /// Worker pool size.
    pub workers: usize,
    /// Per-shard attempt budget.
    pub max_attempts: u32,
    /// Every supervised launch, in launch order.
    pub attempts: Vec<ShardAttempt>,
    /// Shards that exhausted their budget (empty on success).
    pub excluded: Vec<usize>,
    /// Whether every shard completed.
    pub success: bool,
    /// Wall-clock time of the whole pass.
    pub wall_time: Duration,
}

impl RunReport {
    /// The report of a pass that found the corpus already cached and
    /// launched nothing.
    pub fn already_cached(config: &OrchestratorConfig) -> Self {
        RunReport {
            shards: config.shards,
            workers: config.workers,
            max_attempts: config.max_attempts,
            attempts: Vec::new(),
            excluded: Vec::new(),
            success: true,
            wall_time: Duration::ZERO,
        }
    }

    /// The attempts made for one shard, in attempt order.
    pub fn attempts_for(&self, shard: usize) -> Vec<&ShardAttempt> {
        self.attempts.iter().filter(|a| a.shard == shard).collect()
    }

    /// Serialises the report as JSON under the identity of the pass it
    /// supervised (schema documented in `docs/ARCHITECTURE.md`).
    pub fn to_json(&self, prefix: &str, kind: ExperimentKind, fingerprint: u64) -> String {
        let mut out = String::with_capacity(256 + 128 * self.attempts.len());
        out.push_str("{\n");
        out.push_str("  \"report_version\": 1,\n");
        out.push_str(&format!("  \"prefix\": {},\n", json_str(prefix)));
        out.push_str(&format!("  \"kind\": {},\n", json_str(kind.as_str())));
        out.push_str(&format!("  \"fingerprint\": \"{fingerprint:016x}\",\n"));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"max_attempts\": {},\n", self.max_attempts));
        out.push_str(&format!("  \"success\": {},\n", self.success));
        out.push_str(&format!(
            "  \"excluded_shards\": [{}],\n",
            self.excluded
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"wall_time_secs\": {:.6},\n",
            self.wall_time.as_secs_f64()
        ));
        out.push_str("  \"attempts\": [\n");
        for (i, a) in self.attempts.iter().enumerate() {
            let mut detail = match a.outcome.detail() {
                Some(d) => format!(", \"detail\": {}", json_str(&d)),
                None => String::new(),
            };
            if let Some(resumed) = a.resumed_probes {
                detail.push_str(&format!(", \"resumed_probes\": {resumed}"));
            }
            out.push_str(&format!(
                "    {{\"shard\": {}, \"attempt\": {}, \"worker\": {}, \"outcome\": {}, \
                 \"duration_secs\": {:.6}{detail}}}{}\n",
                a.shard,
                a.attempt,
                a.worker,
                json_str(a.outcome.label()),
                a.duration.as_secs_f64(),
                if i + 1 < self.attempts.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A short human-readable summary (one line per shard with retries,
    /// plus totals).
    pub fn summary(&self) -> String {
        let retried = (0..self.shards)
            .filter(|&s| self.attempts_for(s).len() > 1)
            .count();
        format!(
            "{} shards on {} workers: {} attempts total, {} shard(s) retried, {} excluded, {}",
            self.shards,
            self.workers,
            self.attempts.len(),
            retried,
            self.excluded.len(),
            if self.success { "success" } else { "FAILED" }
        )
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// --------------------------------------------------------------------------
// The supervision state machine
// --------------------------------------------------------------------------

/// One occupied pool slot.
struct Running<H> {
    shard: usize,
    attempt: u32,
    handle: H,
    started: Instant,
    /// An injected fault marked this attempt for death (fires
    /// immediately for [`Fault::Kill`], once a probe is durable for
    /// [`Fault::KillMid`] / [`Fault::Torn`]).
    fault: Option<Fault>,
    /// Durable part-file probes observed at launch (report accounting).
    resumed_probes: Option<u64>,
}

/// One queued (shard, attempt), optionally held back until `not_before`
/// (retries are delayed by [`OrchestratorConfig::retry_delay`]).
struct QueueItem {
    shard: usize,
    attempt: u32,
    not_before: Option<Instant>,
}

impl QueueItem {
    fn ready(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

/// Work queue plus retry/exclusion bookkeeping.
struct WorkState {
    queue: VecDeque<QueueItem>,
    done: Vec<bool>,
    excluded: Vec<usize>,
    attempts: Vec<ShardAttempt>,
    max_attempts: u32,
    retry_delay: Duration,
}

impl WorkState {
    /// Records a failed attempt and either requeues the shard (budget
    /// permitting, after the retry delay) or excludes it.
    #[allow(clippy::too_many_arguments)]
    fn fail(
        &mut self,
        shard: usize,
        attempt: u32,
        worker: usize,
        outcome: AttemptOutcome,
        dur: Duration,
        resumed_probes: Option<u64>,
    ) {
        self.attempts.push(ShardAttempt {
            shard,
            attempt,
            worker,
            outcome,
            duration: dur,
            resumed_probes,
        });
        if attempt + 1 < self.max_attempts {
            self.queue.push_back(QueueItem {
                shard,
                attempt: attempt + 1,
                not_before: Some(Instant::now() + self.retry_delay),
            });
        } else {
            self.excluded.push(shard);
        }
    }

    /// Records a successful attempt.
    fn succeed(
        &mut self,
        shard: usize,
        attempt: u32,
        worker: usize,
        dur: Duration,
        resumed_probes: Option<u64>,
    ) {
        self.attempts.push(ShardAttempt {
            shard,
            attempt,
            worker,
            outcome: AttemptOutcome::Success,
            duration: dur,
            resumed_probes,
        });
        // pblint: allow(slice-index) -- `done` is sized to config.shards and
        // every shard id comes from the 0..shards queue; .get_mut would hide
        // a supervisor bookkeeping bug instead of surfacing it in tests.
        self.done[shard] = true;
    }
}

/// Runs one orchestrated pass: feeds the shard queue to the worker pool,
/// supervises exits/timeouts/faults, retries within the budget, and
/// returns the full report. Pure supervision — assembly and persistence
/// are the caller's ([`orchestrate_collection`]'s) job.
pub fn run_orchestrator<L: Launcher>(config: &OrchestratorConfig, launcher: &mut L) -> RunReport {
    assert!(config.workers >= 1 && config.shards >= 1);
    assert!(
        config.max_attempts >= 1,
        "attempt budget must be at least 1"
    );
    let t0 = Instant::now();
    let mut state = WorkState {
        queue: (0..config.shards)
            .map(|shard| QueueItem {
                shard,
                attempt: 0,
                not_before: None,
            })
            .collect(),
        done: vec![false; config.shards],
        excluded: Vec::new(),
        attempts: Vec::new(),
        max_attempts: config.max_attempts,
        retry_delay: config.retry_delay,
    };
    let mut slots: Vec<Option<Running<L::Handle>>> = (0..config.workers).map(|_| None).collect();

    loop {
        let mut progressed = false;

        // Fill idle slots from the queue (skipping retries still inside
        // their delay window — they stay queued until ready).
        for (w, slot) in slots.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let now = Instant::now();
            let Some(pos) = state.queue.iter().position(|item| item.ready(now)) else {
                break;
            };
            let Some(QueueItem { shard, attempt, .. }) = state.queue.remove(pos) else {
                break;
            };
            let spec = ShardSpec::new(shard, config.shards);
            // Sample the durable part-file prefix *before* the worker
            // launches: exactly what a resuming attempt will skip.
            let resumed_probes = if attempt > 0 {
                launcher.durable_probes(spec)
            } else {
                None
            };
            match launcher.launch(spec, attempt, w) {
                Ok(handle) => {
                    let fault = config
                        .faults
                        .iter()
                        .copied()
                        .find(|f| f.matches(shard, attempt));
                    *slot = Some(Running {
                        shard,
                        attempt,
                        handle,
                        started: Instant::now(),
                        fault,
                        resumed_probes,
                    });
                }
                Err(e) => {
                    state.fail(
                        shard,
                        attempt,
                        w,
                        AttemptOutcome::SpawnFailed { why: e.to_string() },
                        Duration::ZERO,
                        resumed_probes,
                    );
                }
            }
            progressed = true;
        }

        // Supervise occupied slots.
        for (w, slot) in slots.iter_mut().enumerate() {
            let Some(run) = slot.as_mut() else { continue };
            let (shard, attempt) = (run.shard, run.attempt);
            if let Some(fault) = run.fault {
                let spec = ShardSpec::new(shard, config.shards);
                // `Kill` fires the moment the supervisor observes the
                // attempt. The write-sensitive faults wait until at least
                // one probe chunk is durable so the kill lands mid-shard
                // (a launcher with no payload visibility fires at once).
                let fire = match fault {
                    Fault::Kill { .. } => true,
                    Fault::KillMid { .. } | Fault::Torn { .. } => {
                        launcher.durable_probes(spec).is_none_or(|p| p >= 1)
                    }
                };
                if fire {
                    run.handle.kill();
                    if matches!(fault, Fault::Torn { .. }) {
                        launcher.tear_output(spec);
                    }
                    let dur = run.started.elapsed();
                    let resumed = run.resumed_probes;
                    state.fail(shard, attempt, w, AttemptOutcome::FaultKilled, dur, resumed);
                    *slot = None;
                    progressed = true;
                    continue;
                }
            }
            let finished = match run.handle.try_finish() {
                Ok(finished) => finished,
                Err(e) => {
                    run.handle.kill();
                    let dur = run.started.elapsed();
                    let resumed = run.resumed_probes;
                    state.fail(
                        shard,
                        attempt,
                        w,
                        AttemptOutcome::WaitFailed { why: e.to_string() },
                        dur,
                        resumed,
                    );
                    *slot = None;
                    progressed = true;
                    continue;
                }
            };
            match finished {
                Some(ExitKind::Success) => {
                    let dur = run.started.elapsed();
                    let resumed = run.resumed_probes;
                    match launcher.verify(ShardSpec::new(shard, config.shards)) {
                        Ok(()) => state.succeed(shard, attempt, w, dur, resumed),
                        Err(why) => state.fail(
                            shard,
                            attempt,
                            w,
                            AttemptOutcome::BadOutput { why },
                            dur,
                            resumed,
                        ),
                    }
                    *slot = None;
                    progressed = true;
                }
                Some(ExitKind::Failure { code }) => {
                    let dur = run.started.elapsed();
                    let resumed = run.resumed_probes;
                    state.fail(
                        shard,
                        attempt,
                        w,
                        AttemptOutcome::Exit { code },
                        dur,
                        resumed,
                    );
                    *slot = None;
                    progressed = true;
                }
                None => {
                    if let Some(limit) = config.shard_timeout {
                        if run.started.elapsed() >= limit {
                            run.handle.kill();
                            let dur = run.started.elapsed();
                            let resumed = run.resumed_probes;
                            state.fail(shard, attempt, w, AttemptOutcome::TimedOut, dur, resumed);
                            *slot = None;
                            progressed = true;
                        }
                    }
                }
            }
        }

        if state.queue.is_empty() && slots.iter().all(Option::is_none) {
            break;
        }
        if !progressed {
            std::thread::sleep(config.poll_interval);
        }
    }

    let success = state.done.iter().all(|&d| d);
    state.excluded.sort_unstable();
    state.excluded.dedup();
    RunReport {
        shards: config.shards,
        workers: config.workers,
        max_attempts: config.max_attempts,
        attempts: state.attempts,
        excluded: state.excluded,
        success,
        wall_time: t0.elapsed(),
    }
}

// --------------------------------------------------------------------------
// Collection front door
// --------------------------------------------------------------------------

/// Identity of the collection pass an orchestrator drives: where shard
/// and cache files live and what they are named/fingerprinted as.
#[derive(Debug, Clone)]
pub struct CollectPlan {
    /// Cache directory shard and full files live in.
    pub dir: PathBuf,
    /// Cache file prefix (e.g. the bench target name).
    pub prefix: String,
    /// Experiment kind of the pass.
    pub kind: ExperimentKind,
    /// Config fingerprint of the pass.
    pub fingerprint: u64,
}

impl CollectPlan {
    /// Path of the full cache file this plan assembles into.
    pub fn full_path(&self) -> PathBuf {
        self.dir
            .join(cache_file_name(&self.prefix, self.kind, self.fingerprint))
    }

    /// Path of one shard file of this plan.
    pub fn shard_path(&self, shard: ShardSpec) -> PathBuf {
        self.dir.join(shard_file_name(
            &self.prefix,
            self.kind,
            self.fingerprint,
            shard.index,
            shard.count,
        ))
    }

    /// Path of one shard's resumable part file (the in-progress sibling a
    /// crashed worker leaves behind; see `persist::part_path_for`).
    pub fn part_path(&self, shard: ShardSpec) -> PathBuf {
        persist::part_path_for(&self.shard_path(shard))
    }
}

/// A finished orchestrated collection.
#[derive(Debug)]
pub struct OrchestratedRun {
    /// The assembled (or replayed) full collection.
    pub collection: Collection,
    /// How the collection was obtained (`Replayed` when the full file
    /// already existed, `Assembled` after a worker pass).
    pub status: CacheStatus,
    /// Supervision provenance.
    pub report: RunReport,
    /// Where the JSON report was written.
    pub report_path: PathBuf,
}

/// Why an orchestrated collection failed.
#[derive(Debug)]
pub enum OrchestrateError {
    /// A persistence error (stale/corrupt cache, unwritable directory,
    /// failed assembly).
    Persist(PersistError),
    /// One or more shards exhausted their attempt budget; the report
    /// names them and their attempts.
    Incomplete(Box<RunReport>),
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Persist(e) => write!(f, "persistence: {e}"),
            OrchestrateError::Incomplete(report) => write!(
                f,
                "shards {:?} exhausted their {}-attempt budget ({})",
                report.excluded,
                report.max_attempts,
                report.summary()
            ),
        }
    }
}

impl std::error::Error for OrchestrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestrateError::Persist(e) => Some(e),
            OrchestrateError::Incomplete(_) => None,
        }
    }
}

impl From<PersistError> for OrchestrateError {
    fn from(e: PersistError) -> Self {
        OrchestrateError::Persist(e)
    }
}

/// Verifies one shard file of `plan`: present, checksum-clean, matching
/// fingerprint and manifest. This is the orchestrator's success check
/// for a zero-exit worker. Deliberately header + checksum only
/// ([`persist::read_header_checked`]) — it catches truncation and
/// corruption anywhere in the file without decoding the payload, which
/// the assembly step decodes (and fully validates) exactly once anyway.
pub fn verify_shard_file(plan: &CollectPlan, shard: ShardSpec) -> Result<(), String> {
    let path = plan.shard_path(shard);
    let bytes = std::fs::read(&path)
        .map_err(|e| format!("shard file {} unreadable: {e}", path.display()))?;
    let header = persist::read_header_checked(&bytes)
        .map_err(|e| format!("shard file {}: {e}", path.display()))?;
    if header.fingerprint != plan.fingerprint {
        return Err(format!(
            "shard file {} was collected under config {:016x}, expected {:016x}",
            path.display(),
            header.fingerprint,
            plan.fingerprint
        ));
    }
    if header.manifest.index as usize != shard.index
        || header.manifest.count as usize != shard.count
    {
        return Err(format!(
            "shard file {} holds {}, expected shard {}/{}",
            path.display(),
            header.manifest,
            shard.index,
            shard.count
        ));
    }
    Ok(())
}

/// Orchestrates a full collection pass end to end:
///
/// 1. replay the full cache file if it (or a complete shard set) already
///    exists — nothing is launched;
/// 2. otherwise run the worker pool over the shard queue
///    ([`run_orchestrator`]) with `worker_command` building each child's
///    `Command`, verifying every claimed success by decoding its shard
///    file;
/// 3. write the JSON run report beside the cache file (always, also on
///    failure);
/// 4. assemble the full collection through the shard-merge path and save
///    it.
///
/// The assembled corpus is bit-identical (wall-clock timings aside) to a
/// single-process collection regardless of how many attempts died along
/// the way, because shard files are written atomically and every retry
/// recomputes a deterministic shard.
pub fn orchestrate_collection<B>(
    plan: &CollectPlan,
    config: &OrchestratorConfig,
    worker_command: B,
) -> Result<OrchestratedRun, OrchestrateError>
where
    B: FnMut(ShardSpec, u32) -> Command,
{
    let mut launcher = ProcessLauncher {
        build: worker_command,
        verify: |shard| verify_shard_file(plan, shard),
        plan: Some(plan.clone()),
    };
    orchestrate_collection_with(plan, config, &mut launcher)
}

/// [`orchestrate_collection`] over any [`Launcher`] — the seam the
/// distributed path ([`remote::RemoteLauncher`]) plugs into: same
/// replay-first short circuit, same report, same shard-merge assembly,
/// only the transport that starts workers differs.
pub fn orchestrate_collection_with<L: Launcher>(
    plan: &CollectPlan,
    config: &OrchestratorConfig,
    launcher: &mut L,
) -> Result<OrchestratedRun, OrchestrateError> {
    std::fs::create_dir_all(&plan.dir).map_err(PersistError::from)?;
    let full = plan.full_path();
    let report_path = report_path_for(&full);
    if let Some((collection, status)) =
        persist::load_or_assemble(&full, plan.kind, plan.fingerprint)?
    {
        return Ok(OrchestratedRun {
            collection,
            status,
            report: RunReport::already_cached(config),
            report_path,
        });
    }

    let report = run_orchestrator(config, launcher);
    std::fs::write(
        &report_path,
        report.to_json(&plan.prefix, plan.kind, plan.fingerprint),
    )
    .map_err(PersistError::from)?;
    if !report.success {
        return Err(OrchestrateError::Incomplete(Box::new(report)));
    }
    match persist::load_or_assemble(&full, plan.kind, plan.fingerprint)? {
        Some((collection, status)) => Ok(OrchestratedRun {
            collection,
            status,
            report,
            report_path,
        }),
        // Every shard verified yet no complete set merged: something
        // outside this pass removed files; surface it loudly.
        None => Err(OrchestrateError::Persist(PersistError::Shard(
            "orchestrated pass finished but no complete shard set was found to assemble".into(),
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Scripted behaviour of one (shard, attempt).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum FakeRun {
        /// Exits 0 and verification passes.
        Ok,
        /// Exits with the given code.
        Exit(i32),
        /// Never finishes (until killed by timeout or fault).
        Hang,
        /// Exits 0 but verification fails (no output).
        NoOutput,
        /// The wait itself errors (e.g. the worker's pidfd went away).
        WaitErr,
    }

    struct FakeHandle {
        run: FakeRun,
    }

    impl WorkerHandle for FakeHandle {
        fn try_finish(&mut self) -> io::Result<Option<ExitKind>> {
            Ok(match self.run {
                FakeRun::Ok | FakeRun::NoOutput => Some(ExitKind::Success),
                FakeRun::Exit(code) => Some(ExitKind::Failure { code: Some(code) }),
                FakeRun::Hang => None,
                FakeRun::WaitErr => return Err(io::Error::other("wait syscall failed")),
            })
        }

        fn kill(&mut self) {}
    }

    /// Launcher scripted per (shard, attempt); unscripted pairs succeed.
    struct FakeLauncher {
        script: HashMap<(usize, u32), FakeRun>,
        /// Last launched run per shard, consulted by verify.
        last: HashMap<usize, FakeRun>,
        /// (shard, attempt, worker) launch log.
        launches: Vec<(usize, u32, usize)>,
        /// Scripted part-file visibility: what `durable_probes` reports.
        durable: Option<u64>,
        /// Shards `tear_output` was invoked for.
        torn: Vec<usize>,
    }

    impl FakeLauncher {
        fn new(script: &[((usize, u32), FakeRun)]) -> Self {
            FakeLauncher {
                script: script.iter().copied().collect(),
                last: HashMap::new(),
                launches: Vec::new(),
                durable: None,
                torn: Vec::new(),
            }
        }
    }

    impl Launcher for FakeLauncher {
        type Handle = FakeHandle;

        fn launch(
            &mut self,
            shard: ShardSpec,
            attempt: u32,
            worker: usize,
        ) -> io::Result<FakeHandle> {
            let run = self
                .script
                .get(&(shard.index, attempt))
                .copied()
                .unwrap_or(FakeRun::Ok);
            self.last.insert(shard.index, run);
            self.launches.push((shard.index, attempt, worker));
            Ok(FakeHandle { run })
        }

        fn verify(&mut self, shard: ShardSpec) -> Result<(), String> {
            match self.last.get(&shard.index) {
                Some(FakeRun::NoOutput) => Err("no shard file".into()),
                _ => Ok(()),
            }
        }

        fn durable_probes(&mut self, _shard: ShardSpec) -> Option<u64> {
            self.durable
        }

        fn tear_output(&mut self, shard: ShardSpec) {
            self.torn.push(shard.index);
        }
    }

    fn quick_config(workers: usize, shards: usize) -> OrchestratorConfig {
        let mut config = OrchestratorConfig::new(workers, shards);
        config.poll_interval = Duration::from_millis(1);
        config.retry_delay = Duration::from_millis(1);
        config
    }

    #[test]
    fn clean_pass_runs_every_shard_once() {
        let config = quick_config(3, 7);
        let mut launcher = FakeLauncher::new(&[]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success);
        assert!(report.excluded.is_empty());
        assert_eq!(report.attempts.len(), 7);
        let mut shards: Vec<usize> = report.attempts.iter().map(|a| a.shard).collect();
        shards.sort_unstable();
        assert_eq!(shards, (0..7).collect::<Vec<_>>());
        assert!(report.attempts.iter().all(|a| a.outcome.is_success()));
    }

    #[test]
    fn failed_shard_is_requeued_and_recovers() {
        let config = quick_config(2, 4);
        let mut launcher = FakeLauncher::new(&[((1, 0), FakeRun::Exit(3))]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success);
        let attempts = report.attempts_for(1);
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[0].outcome, AttemptOutcome::Exit { code: Some(3) });
        assert!(attempts[1].outcome.is_success());
    }

    #[test]
    fn retries_are_bounded_and_shard_excluded() {
        let mut config = quick_config(2, 3);
        config.max_attempts = 3;
        let mut launcher = FakeLauncher::new(&[
            ((2, 0), FakeRun::Exit(1)),
            ((2, 1), FakeRun::Exit(1)),
            ((2, 2), FakeRun::Exit(1)),
            // Never consulted: the budget is exhausted after attempt 2.
            ((2, 3), FakeRun::Ok),
        ]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(!report.success);
        assert_eq!(report.excluded, vec![2]);
        assert_eq!(report.attempts_for(2).len(), 3);
        // The other shards still completed: the pass degrades, never
        // abandons surviving work.
        assert!(report
            .attempts_for(0)
            .iter()
            .any(|a| a.outcome.is_success()));
        assert!(report
            .attempts_for(1)
            .iter()
            .any(|a| a.outcome.is_success()));
    }

    #[test]
    fn poisoned_wait_reports_shard_failure_instead_of_aborting() {
        // A wait error on the worker handle (poisoned pidfd, EBADF, ...)
        // must surface as a WaitFailed attempt and burn through the
        // shard's budget — never panic the supervisor, never stall the
        // surviving shards.
        let mut config = quick_config(2, 3);
        config.max_attempts = 2;
        let mut launcher =
            FakeLauncher::new(&[((1, 0), FakeRun::WaitErr), ((1, 1), FakeRun::WaitErr)]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(!report.success);
        assert_eq!(report.excluded, vec![1]);
        let attempts = report.attempts_for(1);
        assert_eq!(attempts.len(), 2);
        assert!(attempts
            .iter()
            .all(|a| matches!(a.outcome, AttemptOutcome::WaitFailed { .. })));
        assert!(attempts.iter().all(|a| a.outcome.detail().is_some()));
        for ok in [0, 2] {
            assert!(report
                .attempts_for(ok)
                .iter()
                .any(|a| a.outcome.is_success()));
        }
    }

    #[test]
    fn zero_exit_without_output_is_a_failure() {
        let config = quick_config(1, 2);
        let mut launcher = FakeLauncher::new(&[((0, 0), FakeRun::NoOutput)]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success);
        let attempts = report.attempts_for(0);
        assert_eq!(attempts.len(), 2);
        assert!(matches!(
            attempts[0].outcome,
            AttemptOutcome::BadOutput { .. }
        ));
    }

    #[test]
    fn hung_worker_times_out_and_shard_recovers() {
        let mut config = quick_config(2, 2);
        config.shard_timeout = Some(Duration::from_millis(30));
        let mut launcher = FakeLauncher::new(&[((0, 0), FakeRun::Hang)]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success);
        let attempts = report.attempts_for(0);
        assert_eq!(attempts[0].outcome, AttemptOutcome::TimedOut);
        assert!(attempts[1].outcome.is_success());
    }

    #[test]
    fn injected_fault_kills_first_attempt_only() {
        let mut config = quick_config(2, 4);
        config.faults = Fault::parse_list("kill:2").expect("fault");
        let mut launcher = FakeLauncher::new(&[]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success);
        let attempts = report.attempts_for(2);
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[0].outcome, AttemptOutcome::FaultKilled);
        assert!(attempts[1].outcome.is_success());
        // Fault applies to shard 2 alone.
        for s in [0usize, 1, 3] {
            assert_eq!(report.attempts_for(s).len(), 1, "shard {s}");
        }
    }

    #[test]
    fn torn_fault_tears_output_and_retry_reports_resume() {
        let mut config = quick_config(2, 3);
        config.faults = Fault::parse_list("torn:1").expect("fault");
        let mut launcher = FakeLauncher::new(&[((1, 0), FakeRun::Hang)]);
        // The launcher sees 2 durable probes in shard 1's part file, so
        // the torn fault fires and the retry records what it resumed.
        launcher.durable = Some(2);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success, "{}", report.summary());
        assert_eq!(launcher.torn, vec![1], "tear follows the kill");
        let attempts = report.attempts_for(1);
        assert_eq!(attempts[0].outcome, AttemptOutcome::FaultKilled);
        assert_eq!(
            attempts[0].resumed_probes, None,
            "first attempt resumes nothing"
        );
        assert!(attempts[1].outcome.is_success());
        assert_eq!(attempts[1].resumed_probes, Some(2));
        let json = report.to_json("demo", ExperimentKind::Core, 7);
        assert!(
            json.contains("\"resumed_probes\": 2"),
            "resume accounting must land in the report JSON:\n{json}"
        );
    }

    #[test]
    fn mid_write_faults_wait_for_a_durable_probe() {
        // durable_probes scripted to 0: a KillMid fault must NOT fire
        // while nothing is durable, so the hang is ended by the timeout
        // instead (the fault targets attempt 0 only; the retry runs
        // clean).
        let mut config = quick_config(1, 1);
        config.shard_timeout = Some(Duration::from_millis(30));
        config.faults = Fault::parse_list("killmid:0").expect("fault");
        let mut launcher = FakeLauncher::new(&[((0, 0), FakeRun::Hang)]);
        launcher.durable = Some(0);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success, "{}", report.summary());
        let attempts = report.attempts_for(0);
        assert_eq!(
            attempts[0].outcome,
            AttemptOutcome::TimedOut,
            "killmid with nothing durable must not fire"
        );
        assert!(attempts[1].outcome.is_success());
        assert!(launcher.torn.is_empty(), "killmid never tears");
    }

    #[test]
    fn requeued_shard_can_run_on_a_different_worker() {
        // One worker hangs forever on shard 0; with a timeout the retry
        // must be able to land on the other (surviving) slot.
        let mut config = quick_config(2, 2);
        config.shard_timeout = Some(Duration::from_millis(20));
        let mut launcher = FakeLauncher::new(&[((0, 0), FakeRun::Hang)]);
        let report = run_orchestrator(&config, &mut launcher);
        assert!(report.success);
        let retry = report
            .attempts_for(0)
            .into_iter()
            .find(|a| a.attempt == 1)
            .expect("retry attempt")
            .clone();
        assert!(retry.outcome.is_success());
        assert!(retry.worker < 2);
    }

    #[test]
    fn fault_parsing() {
        assert_eq!(
            Fault::parse_list("kill:3").unwrap(),
            vec![Fault::Kill {
                shard: 3,
                attempt: 0
            }]
        );
        assert_eq!(
            Fault::parse_list("kill:1@2, kill:0").unwrap(),
            vec![
                Fault::Kill {
                    shard: 1,
                    attempt: 2
                },
                Fault::Kill {
                    shard: 0,
                    attempt: 0
                }
            ]
        );
        assert_eq!(
            Fault::parse_list("killmid:2, torn:1@1").unwrap(),
            vec![
                Fault::KillMid {
                    shard: 2,
                    attempt: 0
                },
                Fault::Torn {
                    shard: 1,
                    attempt: 1
                }
            ]
        );
        assert_eq!(Fault::parse_list("").unwrap(), vec![]);
        assert!(Fault::parse_list("boom:1").is_err());
        assert!(Fault::parse_list("kill:x").is_err());
        assert!(Fault::parse_list("kill:1@y").is_err());
    }

    #[test]
    fn fault_matching_targets_one_shard_attempt() {
        for fault in Fault::parse_list("kill:2@1,killmid:2@1,torn:2@1").unwrap() {
            assert!(fault.matches(2, 1));
            assert!(!fault.matches(2, 0));
            assert!(!fault.matches(1, 1));
        }
    }

    #[test]
    fn report_json_carries_attempts_and_identity() {
        let mut config = quick_config(2, 3);
        config.faults = Fault::parse_list("kill:1").expect("fault");
        let mut launcher = FakeLauncher::new(&[((0, 0), FakeRun::Exit(7))]);
        let report = run_orchestrator(&config, &mut launcher);
        let json = report.to_json("demo", ExperimentKind::Core, 0xdead_beef);
        assert!(json.contains("\"report_version\": 1"));
        assert!(json.contains("\"prefix\": \"demo\""));
        assert!(json.contains("\"kind\": \"core\""));
        assert!(json.contains("\"fingerprint\": \"00000000deadbeef\""));
        assert!(json.contains("\"outcome\": \"fault-killed\""));
        assert!(json.contains("\"outcome\": \"exit\""));
        assert!(json.contains("\"detail\": \"exit code 7\""));
        assert!(json.contains("\"excluded_shards\": []"));
        assert!(json.contains("\"success\": true"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_path_swaps_extension() {
        assert_eq!(
            report_path_for(Path::new("/c/demo-core-ff.pbcol")),
            Path::new("/c/demo-core-ff.orchrun.json")
        );
    }
}

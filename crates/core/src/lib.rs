//! # perfbug-core
//!
//! The two-stage, machine-learning-based microprocessor performance-bug
//! detection methodology of *"Automatic Microprocessor Performance Bug
//! Detection"* (HPCA 2021), built on the substrates of this workspace:
//! synthetic SPEC-like workloads with SimPoint probes
//! ([`perfbug_workloads`]), a cycle-level out-of-order core simulator
//! ([`perfbug_uarch`]), a cache-hierarchy simulator ([`perfbug_memsim`])
//! and from-scratch ML engines ([`perfbug_ml`]).
//!
//! ## Pipeline
//!
//! 1. [`counter_select`] — per-probe two-step Pearson counter selection.
//! 2. [`stage1`] — one IPC (or AMAT) regression model per probe, trained
//!    on bug-free legacy designs; Eq. (1) inference-error signal.
//! 3. [`stage2`] — rule-based classifier over per-probe errors (γ ratios,
//!    trained α, η = 15, λ = 5).
//! 4. [`experiment`] — the leave-one-bug-type-out evaluation protocol over
//!    the Table II design sets; [`baseline`] is the single-stage voting
//!    detector the paper compares against.
//!
//! ```no_run
//! use perfbug_core::bugs::BugCatalog;
//! use perfbug_core::experiment::{collect, evaluate_two_stage, CollectionConfig};
//! use perfbug_core::stage1::EngineSpec;
//! use perfbug_core::stage2::Stage2Params;
//!
//! let config = CollectionConfig::new(vec![EngineSpec::gbt250()], BugCatalog::core_small());
//! let collection = collect(&config);
//! let eval = evaluate_two_stage(&collection, 0, Stage2Params::default());
//! println!("TPR {:.2} FPR {:.2}", eval.metrics.tpr, eval.metrics.fpr);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bugs;
pub mod counter_select;
pub mod detmetrics;
pub mod exec;
pub mod experiment;
pub mod fuzz;
pub mod localize;
pub mod memory;
pub mod orchestrate;
pub mod persist;
pub mod report;
pub mod serve;
pub mod stage1;
pub mod stage2;
pub mod tracecache;

pub use bugs::{BugCatalog, MemBugCatalog, Severity};
pub use detmetrics::{Decision, DetectionMetrics};
pub use exec::ShardSpec;
pub use experiment::{
    collect, collect_sharded, evaluate_baseline, evaluate_two_stage, evaluate_two_stage_subset,
    ArchPartition, Collection, CollectionConfig, ProbeScale, RunKey,
};
pub use fuzz::{Family, FuzzSpec, FuzzedCatalog, FuzzedVariant};
pub use memory::{collect_memory, collect_memory_sharded, MemCollectionConfig, TargetMetric};
pub use orchestrate::{
    orchestrate_collection, run_orchestrator, CollectPlan, Fault, OrchestrateError,
    OrchestratedRun, OrchestratorConfig, RunReport,
};
pub use persist::{
    collect_memory_or_load, collect_memory_shard_or_load, collect_memory_shard_or_resume,
    collect_or_load, collect_shard_or_load, collect_shard_or_resume, config_fingerprint,
    load_collection, mem_config_fingerprint, merge_collections, merge_shard_files, part_path_for,
    save_collection, scan_part, scan_part_file, verify_stream, CacheStatus, ChunkEntry,
    ExperimentKind, FileHeader, PersistError, ProbeReader, RecoveredPrefix, ShardManifest,
    ShardOutcome, ShardStreamWriter,
};
pub use stage1::{inference_error, EngineSpec, FeatureSpec, ProbeModel, RunSeries};
pub use stage2::{Stage2Classifier, Stage2Params};

//! Detection-quality metrics: TPR, FPR, precision, ROC AUC and
//! per-severity true-positive rates (Eq. 3 and Table V's columns).

use perfbug_ml::metrics::{roc_auc, roc_curve, RocPoint};

use crate::bugs::Severity;

/// One test-time decision of a detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Continuous bug-likelihood score (higher = more suspicious).
    pub score: f64,
    /// The detector's binary verdict at its operating point.
    pub flagged: bool,
    /// Ground truth: whether a bug was actually injected.
    pub has_bug: bool,
    /// Severity of the injected bug (`None` for bug-free designs).
    pub severity: Option<Severity>,
}

/// Aggregated detection metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionMetrics {
    /// False-positive rate `FP / N`.
    pub fpr: f64,
    /// True-positive rate (recall) `TP / P`.
    pub tpr: f64,
    /// Precision `TP / (TP + FP)` (1.0 when nothing is flagged).
    pub precision: f64,
    /// Area under the ROC curve over the scores.
    pub roc_auc: f64,
    /// TPR restricted to each severity bucket (order of
    /// [`Severity::all`]); `None` when the bucket has no samples.
    pub tpr_by_severity: [Option<f64>; 4],
    /// Number of positive test cases.
    pub positives: usize,
    /// Number of negative test cases.
    pub negatives: usize,
}

impl DetectionMetrics {
    /// Computes all metrics from pooled decisions.
    ///
    /// # Panics
    ///
    /// Panics if `decisions` is empty.
    pub fn from_decisions(decisions: &[Decision]) -> Self {
        assert!(!decisions.is_empty(), "no decisions to score");
        let positives = decisions.iter().filter(|d| d.has_bug).count();
        let negatives = decisions.len() - positives;
        let tp = decisions.iter().filter(|d| d.has_bug && d.flagged).count();
        let fp = decisions.iter().filter(|d| !d.has_bug && d.flagged).count();
        let tpr = if positives > 0 {
            tp as f64 / positives as f64
        } else {
            0.0
        };
        let fpr = if negatives > 0 {
            fp as f64 / negatives as f64
        } else {
            0.0
        };
        let precision = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            1.0
        };
        let scores: Vec<f64> = decisions.iter().map(|d| d.score).collect();
        let labels: Vec<bool> = decisions.iter().map(|d| d.has_bug).collect();
        let auc = roc_auc(&scores, &labels);

        let mut tpr_by_severity = [None; 4];
        for (i, sev) in Severity::all().into_iter().enumerate() {
            let bucket: Vec<&Decision> = decisions
                .iter()
                .filter(|d| d.severity == Some(sev))
                .collect();
            if !bucket.is_empty() {
                let hits = bucket.iter().filter(|d| d.flagged).count();
                tpr_by_severity[i] = Some(hits as f64 / bucket.len() as f64);
            }
        }
        DetectionMetrics {
            fpr,
            tpr,
            precision,
            roc_auc: auc,
            tpr_by_severity,
            positives,
            negatives,
        }
    }

    /// ROC curve over the pooled decision scores.
    pub fn roc(decisions: &[Decision]) -> Vec<RocPoint> {
        let scores: Vec<f64> = decisions.iter().map(|d| d.score).collect();
        let labels: Vec<bool> = decisions.iter().map(|d| d.has_bug).collect();
        roc_curve(&scores, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(score: f64, flagged: bool, has_bug: bool, severity: Option<Severity>) -> Decision {
        Decision {
            score,
            flagged,
            has_bug,
            severity,
        }
    }

    #[test]
    fn perfect_detector() {
        let decisions = vec![
            d(2.0, true, true, Some(Severity::High)),
            d(1.5, true, true, Some(Severity::Low)),
            d(0.2, false, false, None),
            d(0.1, false, false, None),
        ];
        let m = DetectionMetrics::from_decisions(&decisions);
        assert_eq!(m.tpr, 1.0);
        assert_eq!(m.fpr, 0.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.roc_auc, 1.0);
        assert_eq!(m.tpr_by_severity[3], Some(1.0)); // High
        assert_eq!(m.tpr_by_severity[0], None); // no Very-Low samples
        assert_eq!(m.positives, 2);
        assert_eq!(m.negatives, 2);
    }

    #[test]
    fn partial_detector() {
        let decisions = vec![
            d(2.0, true, true, Some(Severity::High)),
            d(0.5, false, true, Some(Severity::VeryLow)),
            d(1.2, true, false, None),
            d(0.1, false, false, None),
        ];
        let m = DetectionMetrics::from_decisions(&decisions);
        assert!((m.tpr - 0.5).abs() < 1e-12);
        assert!((m.fpr - 0.5).abs() < 1e-12);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert_eq!(m.tpr_by_severity[0], Some(0.0));
        assert_eq!(m.tpr_by_severity[3], Some(1.0));
    }

    #[test]
    fn nothing_flagged_has_unit_precision() {
        let decisions = vec![
            d(0.1, false, true, Some(Severity::Low)),
            d(0.0, false, false, None),
        ];
        let m = DetectionMetrics::from_decisions(&decisions);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.tpr, 0.0);
    }

    #[test]
    fn roc_is_exposed() {
        let decisions = vec![
            d(0.9, true, true, None),
            d(0.8, true, false, None),
            d(0.3, false, true, None),
            d(0.1, false, false, None),
        ];
        let curve = DetectionMetrics::roc(&decisions);
        assert!(curve.len() >= 3);
    }

    #[test]
    fn roc_tied_scores_one_point_per_threshold() {
        // Five decisions but only two distinct scores: the curve must have
        // exactly one point per threshold (plus the (0,0) anchor) with the
        // tied group consumed atomically — not one point per decision.
        let decisions = vec![
            d(0.7, true, true, None),
            d(0.7, true, false, None),
            d(0.7, true, true, None),
            d(0.2, false, false, None),
            d(0.2, false, true, None),
        ];
        let curve = DetectionMetrics::roc(&decisions);
        let expected = vec![
            perfbug_ml::metrics::RocPoint {
                fpr: 0.0,
                tpr: 0.0,
                threshold: f64::INFINITY,
            },
            perfbug_ml::metrics::RocPoint {
                fpr: 0.5,
                tpr: 2.0 / 3.0,
                threshold: 0.7,
            },
            perfbug_ml::metrics::RocPoint {
                fpr: 1.0,
                tpr: 1.0,
                threshold: 0.2,
            },
        ];
        assert_eq!(curve, expected);
    }
}

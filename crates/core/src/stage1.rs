//! Stage 1 — per-probe IPC modelling (§III-C).
//!
//! One regression model is trained *per probe* on counter time series from
//! presumed-bug-free designs (Set I), early-stopped on the validation
//! designs (Set II). Applying the model to a design under test yields an
//! inference-error signal (Eq. 1) that stage 2 turns into a bug verdict.

use perfbug_ml::{
    Cnn, CnnParams, Dataset, Gbt, GbtParams, Lasso, LassoParams, Lstm, LstmParams, Mlp, MlpParams,
    Regressor, Sequence, SequenceRegressor, SplitStrategy,
};
use perfbug_workloads::RowMatrix;

/// One simulated probe run prepared for modelling: per-step counter rows,
/// the per-step target (IPC for the core study, IPC or AMAT for the memory
/// study) and the design's static parameter features.
#[derive(Debug, Clone)]
pub struct RunSeries {
    /// Per-step counter feature rows (full counter set; selection happens
    /// in [`FeatureSpec`]), stored contiguously.
    pub rows: RowMatrix,
    /// Per-step target values aligned with `rows`.
    pub target: Vec<f64>,
    /// Static microarchitecture design-parameter features.
    pub arch_features: Vec<f64>,
}

/// Feature assembly configuration for one probe's model.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSpec {
    /// Selected counter column indices.
    pub selected: Vec<usize>,
    /// Whether to append the design-parameter features (§V-G ablation).
    pub arch_features: bool,
    /// Time-series window size `w` (§III-C item 4; default 1).
    pub window: usize,
}

impl FeatureSpec {
    /// Builds the per-step feature vectors of one run.
    ///
    /// A window of `w` concatenates the selected counters of steps
    /// `t-w+1..=t` (clamped at the series start) and appends the static
    /// design features once.
    pub fn build(&self, run: &RunSeries) -> Vec<Vec<f64>> {
        let w = self.window.max(1);
        (0..run.rows.len())
            .map(|t| {
                let mut row = Vec::with_capacity(self.selected.len() * w + run.arch_features.len());
                for k in 0..w {
                    let idx = t.saturating_sub(w - 1 - k);
                    let src = run.rows.row(idx);
                    row.extend(self.selected.iter().map(|&c| src[c]));
                }
                if self.arch_features {
                    row.extend_from_slice(&run.arch_features);
                }
                row
            })
            .collect()
    }
}

/// Stage-1 engine family and hyper-parameters.
///
/// Names follow the paper: `<layers>-<family>-<width>` for neural engines
/// and `GBT-<trees>` for boosted trees. A boosted-tree engine using the
/// exact splitter (instead of the default histogram split finding) is
/// named `GBT-<trees>-exact`, so the persisted engine catalog of a
/// [`crate::experiment::Collection`] records which trainer produced each
/// delta matrix and the two variants can coexist in one collection.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// L1-regularised linear regression.
    Lasso(LassoParams),
    /// Multi-layer perceptron.
    Mlp(MlpParams),
    /// 1-D convolutional network.
    Cnn(CnnParams),
    /// LSTM over the step sequence.
    Lstm(LstmParams),
    /// Gradient-boosted trees.
    Gbt(GbtParams),
}

impl EngineSpec {
    /// The paper's display name for this configuration.
    pub fn name(&self) -> String {
        match self {
            EngineSpec::Lasso(_) => "Lasso".to_string(),
            EngineSpec::Mlp(p) => format!(
                "{}-MLP-{}",
                p.hidden.len(),
                p.hidden.first().copied().unwrap_or(0)
            ),
            EngineSpec::Cnn(p) => format!("{}-CNN-{}", p.conv_blocks, p.hidden),
            EngineSpec::Lstm(p) => format!("{}-LSTM-{}", p.layers, p.hidden),
            EngineSpec::Gbt(p) => match p.split_strategy {
                SplitStrategy::Histogram { .. } => format!("GBT-{}", p.n_trees),
                SplitStrategy::Exact => format!("GBT-{}-exact", p.n_trees),
            },
        }
    }

    /// The paper's best-performing configuration (GBT-250).
    pub fn gbt250() -> Self {
        EngineSpec::Gbt(GbtParams {
            n_trees: 250,
            ..GbtParams::default()
        })
    }

    /// GBT-150 (the other boosted-tree row of Table IV).
    pub fn gbt150() -> Self {
        EngineSpec::Gbt(GbtParams {
            n_trees: 150,
            ..GbtParams::default()
        })
    }
}

enum Trained {
    Row(Box<dyn Regressor + Send>),
    Seq(Box<Lstm>),
}

impl std::fmt::Debug for Trained {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trained::Row(_) => write!(f, "Trained::Row"),
            Trained::Seq(_) => write!(f, "Trained::Seq"),
        }
    }
}

/// A trained stage-1 model for one probe.
#[derive(Debug)]
pub struct ProbeModel {
    features: FeatureSpec,
    model: Trained,
}

impl ProbeModel {
    /// Trains a model on the bug-free training runs, early-stopping on the
    /// validation runs where the engine supports it. Runs are borrowed so
    /// the caller's simulation results can be shared between consumers
    /// without cloning the counter series.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or contains empty runs.
    pub fn train(
        engine: &EngineSpec,
        features: FeatureSpec,
        train: &[&RunSeries],
        val: &[&RunSeries],
    ) -> ProbeModel {
        assert!(!train.is_empty(), "stage 1 needs training runs");
        let model = match engine {
            EngineSpec::Lstm(params) => {
                let to_seq = |runs: &[&RunSeries]| -> Vec<Sequence> {
                    runs.iter()
                        .filter(|r| !r.rows.is_empty())
                        .map(|r| {
                            Sequence::new(features.build(r), r.target.clone())
                                .expect("aligned rows/targets")
                        })
                        .collect()
                };
                let train_seqs = to_seq(train);
                let val_seqs = to_seq(val);
                let mut lstm = Lstm::new(*params);
                lstm.fit_sequences(
                    &train_seqs,
                    if val_seqs.is_empty() {
                        None
                    } else {
                        Some(&val_seqs)
                    },
                );
                Trained::Seq(Box::new(lstm))
            }
            _ => {
                let to_dataset = |runs: &[&RunSeries]| -> Dataset {
                    let mut rows = Vec::new();
                    let mut y = Vec::new();
                    for r in runs {
                        rows.extend(features.build(r));
                        y.extend_from_slice(&r.target);
                    }
                    Dataset::from_rows(&rows, &y).expect("aligned rows/targets")
                };
                let train_data = to_dataset(train);
                assert!(!train_data.is_empty(), "training runs contain no steps");
                let val_data = to_dataset(val);
                let val_ref = (!val_data.is_empty()).then_some(&val_data);
                let mut boxed: Box<dyn Regressor + Send> = match engine {
                    EngineSpec::Lasso(p) => Box::new(Lasso::new(*p)),
                    EngineSpec::Mlp(p) => Box::new(Mlp::new(p.clone())),
                    EngineSpec::Cnn(p) => Box::new(Cnn::new(*p)),
                    // Stage-1 fits run on the collection engine's
                    // (probe x engine) training grid, which already
                    // saturates the machine — keep the GBT's per-node
                    // histogram builds serial rather than spawning nested
                    // threads inside every pool worker (output is
                    // bit-identical either way).
                    EngineSpec::Gbt(p) => Box::new(Gbt::new(*p).with_hist_threads(1)),
                    EngineSpec::Lstm(_) => unreachable!("handled above"),
                };
                boxed.fit(&train_data, val_ref);
                Trained::Row(boxed)
            }
        };
        ProbeModel { features, model }
    }

    /// Infers the per-step target for one run. Row engines take the whole
    /// step sequence through [`Regressor::predict_batch`], so engines with
    /// a linear-algebra forward pass run one blocked kernel call per layer
    /// instead of a `gemv` per step.
    pub fn infer(&self, run: &RunSeries) -> Vec<f64> {
        let rows = self.features.build(run);
        match &self.model {
            Trained::Row(m) => m.predict_batch(&rows),
            Trained::Seq(m) => m.predict_sequence(&rows),
        }
    }

    /// The feature specification this model was trained with.
    pub fn features(&self) -> &FeatureSpec {
        &self.features
    }
}

/// The paper's Eq. (1): trapezoidal area between the simulated and inferred
/// target series — approximately the total absolute error, chosen so that a
/// large error in a few steps is not averaged away (unlike MSE).
///
/// The trapezoid rule integrates `|actual - inferred|` over the `n - 1`
/// unit intervals between samples, which half-weights the two endpoints.
/// A series of fewer than two samples spans zero intervals, so its area is
/// 0 — the degenerate cases are the limit of the general formula rather
/// than a special full-weight rule (a 1-sample series used to return the
/// full `|a - b|`, double the weight the same sample carries as an
/// endpoint of any longer series).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn inference_error(actual: &[f64], inferred: &[f64]) -> f64 {
    assert_eq!(actual.len(), inferred.len(), "series must align");
    let mut sum = 0.0;
    for j in 1..actual.len() {
        sum += (actual[j] - inferred[j]).abs() + (actual[j - 1] - inferred[j - 1]).abs();
    }
    sum / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_run(offset: f64, n: usize) -> RunSeries {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|t| {
                let x = (t as f64 * 0.4).sin() + offset;
                vec![x, x * 2.0, 0.5]
            })
            .collect();
        let target: Vec<f64> = rows.iter().map(|r| r[0] * 0.8 + 0.1).collect();
        RunSeries {
            rows: RowMatrix::from_rows(&rows),
            target,
            arch_features: vec![offset],
        }
    }

    #[test]
    fn eq1_matches_hand_computation() {
        let actual = [1.0, 2.0, 3.0];
        let inferred = [1.5, 1.5, 3.5];
        // |e| = [0.5, 0.5, 0.5]; sum over j=2..3 of (|e_j|+|e_{j-1}|)/2
        // = (0.5+0.5)/2 + (0.5+0.5)/2 = 1.0.
        assert!((inference_error(&actual, &inferred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_degenerate_lengths() {
        assert_eq!(inference_error(&[], &[]), 0.0);
        // One sample spans zero trapezoid intervals: zero area, matching
        // the n >= 2 formula's endpoint weighting as the series shrinks.
        assert_eq!(inference_error(&[2.0], &[3.0]), 0.0);
    }

    #[test]
    fn eq1_single_sample_is_trapezoid_limit() {
        // A 2-sample series with equal per-step error |e| integrates to
        // exactly |e| (each endpoint contributes |e|/2); removing one
        // interval removes the whole area. The n = 1 case must therefore
        // sit on the same formula (0 intervals -> 0), not re-weight the
        // lone sample at full |e|.
        assert_eq!(inference_error(&[1.0, 1.0], &[3.0, 3.0]), 2.0);
        assert_eq!(inference_error(&[1.0], &[3.0]), 0.0);
    }

    #[test]
    fn eq1_zero_on_perfect_inference() {
        let y = [0.3, 0.4, 0.5, 0.4];
        assert_eq!(inference_error(&y, &y), 0.0);
    }

    #[test]
    fn windowed_features_stack_history() {
        let run = toy_run(0.0, 5);
        let spec = FeatureSpec {
            selected: vec![0, 2],
            arch_features: true,
            window: 2,
        };
        let built = spec.build(&run);
        assert_eq!(built.len(), 5);
        // 2 selected x window 2 + 1 arch feature.
        assert_eq!(built[3].len(), 5);
        // Step 3's window is steps 2 and 3.
        assert_eq!(built[3][0], run.rows.row(2)[0]);
        assert_eq!(built[3][2], run.rows.row(3)[0]);
        // First step clamps to itself.
        assert_eq!(built[0][0], run.rows.row(0)[0]);
        assert_eq!(built[0][2], run.rows.row(0)[0]);
    }

    #[test]
    fn gbt_model_fits_bug_free_runs() {
        let train: Vec<RunSeries> = (0..4).map(|i| toy_run(i as f64 * 0.2, 30)).collect();
        let train_refs: Vec<&RunSeries> = train.iter().collect();
        let val = toy_run(0.15, 30);
        let features = FeatureSpec {
            selected: vec![0, 1],
            arch_features: true,
            window: 1,
        };
        let model = ProbeModel::train(&EngineSpec::gbt250(), features, &train_refs, &[&val]);
        let test = toy_run(0.1, 30);
        let inferred = model.infer(&test);
        let err = inference_error(&test.target, &inferred);
        // Near-interpolation on this trivial function.
        assert!(err < 0.5, "error {err}");
    }

    #[test]
    fn lstm_engine_trains_and_infers() {
        let train: Vec<RunSeries> = (0..3).map(|i| toy_run(i as f64 * 0.2, 15)).collect();
        let train_refs: Vec<&RunSeries> = train.iter().collect();
        let features = FeatureSpec {
            selected: vec![0],
            arch_features: false,
            window: 1,
        };
        let engine = EngineSpec::Lstm(LstmParams {
            hidden: 8,
            max_epochs: 40,
            ..LstmParams::default()
        });
        let model = ProbeModel::train(&engine, features, &train_refs, &[]);
        let preds = model.infer(&train[0]);
        assert_eq!(preds.len(), 15);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn engine_names_match_paper_convention() {
        assert_eq!(EngineSpec::gbt250().name(), "GBT-250");
        assert_eq!(
            EngineSpec::Gbt(GbtParams {
                n_trees: 250,
                split_strategy: SplitStrategy::Exact,
                ..GbtParams::default()
            })
            .name(),
            "GBT-250-exact"
        );
        assert_eq!(
            EngineSpec::Lstm(LstmParams {
                layers: 1,
                hidden: 500,
                ..LstmParams::default()
            })
            .name(),
            "1-LSTM-500"
        );
        assert_eq!(
            EngineSpec::Mlp(MlpParams {
                hidden: vec![2500],
                ..MlpParams::default()
            })
            .name(),
            "1-MLP-2500"
        );
        assert_eq!(
            EngineSpec::Cnn(CnnParams {
                conv_blocks: 4,
                hidden: 150,
                ..CnnParams::default()
            })
            .name(),
            "4-CNN-150"
        );
        assert_eq!(EngineSpec::Lasso(LassoParams::default()).name(), "Lasso");
    }
}

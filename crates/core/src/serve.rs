//! The detection service core behind `pbserve`/`pbsub`: a line-delimited
//! JSON protocol over TCP, a multi-tenant corpus store keyed by config
//! fingerprint, and the submit/tail/fetch request loop.
//!
//! The orchestrator (PR 7) inverted "run an experiment" into "drive a
//! shard queue"; this module inverts control once more into a long-lived
//! service: clients submit an experiment *identity* (a spec name — the
//! server re-resolves the config, so arbitrary configs never cross the
//! wire), the server collects it through the existing orchestrate/persist
//! paths, and **repeat submissions replay from cache without a single
//! simulation** — the zero-positive regression-diagnosis workflow where
//! the same config is interrogated many times.
//!
//! Protocol: one request line in, event lines out, connection closes
//! after the final `done`/`error` event. Every line is a *flat* JSON
//! object (string/integer/boolean fields only) — deterministic to emit,
//! trivial to parse, and greppable in CI logs. The run report rides the
//! `report` event as an escaped string of the standard `orchrun.json`
//! schema.
//!
//! Storage: the store root holds one subdirectory per config fingerprint
//! (`<root>/<fingerprint:016x>/`), each an ordinary cache directory —
//! `pbcol verify`/`prune` operate on tenants individually or on the
//! whole store at once, and one tenant's stale files can never strand
//! another's complete shard set.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::exec;
use crate::orchestrate::{json_str, report_path_for, CollectPlan};
use crate::persist::{self, CacheStatus, ExperimentKind};

/// Environment variable naming the address `pbserve` listens on (and
/// `pbsub` connects to). Default: [`DEFAULT_ADDR`].
pub const ADDR_ENV: &str = "PERFBUG_SERVE_ADDR";

/// Environment variable naming the multi-tenant store root directory.
pub const STORE_ENV: &str = "PERFBUG_SERVE_STORE";

/// Default service address when [`ADDR_ENV`] is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";

/// Longest accepted request line; anything bigger is a stray client.
const MAX_REQUEST_LINE: u64 = 64 * 1024;

// --------------------------------------------------------------------------
// Flat JSON
// --------------------------------------------------------------------------

/// A field value of the flat line protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// JSON string.
    Str(String),
    /// JSON integer (the protocol never uses floats).
    Num(i64),
    /// JSON boolean.
    Bool(bool),
}

impl JsonValue {
    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is an integer.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (string / integer / boolean values only,
/// no nesting) into a sorted field map. Rejects anything else — the
/// protocol is deliberately not a general JSON parser.
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = line.chars().peekable();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    let mut fields = BTreeMap::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            skip_ws(&mut chars);
            let value = parse_value(&mut chars)?;
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(fields)
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\r' | '\n')) {
        chars.next();
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Result<JsonValue, String> {
    match chars.peek() {
        Some('"') => parse_string(chars).map(JsonValue::Str),
        Some('t') => parse_literal(chars, "true").map(|_| JsonValue::Bool(true)),
        Some('f') => parse_literal(chars, "false").map(|_| JsonValue::Bool(false)),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars).map(JsonValue::Num),
        other => Err(format!(
            "expected a string, integer or boolean, got {other:?}"
        )),
    }
}

fn parse_literal(chars: &mut Chars<'_>, lit: &str) -> Result<(), String> {
    for expected in lit.chars() {
        if chars.next() != Some(expected) {
            return Err(format!("malformed literal (expected {lit:?})"));
        }
    }
    Ok(())
}

fn parse_number(chars: &mut Chars<'_>) -> Result<i64, String> {
    let mut raw = String::new();
    if chars.peek() == Some(&'-') {
        raw.push('-');
        chars.next();
    }
    while let Some(c) = chars.peek() {
        if c.is_ascii_digit() {
            raw.push(*c);
            chars.next();
        } else {
            break;
        }
    }
    // Floats and exponents are outside the protocol.
    if matches!(chars.peek(), Some('.' | 'e' | 'E')) {
        return Err("non-integer numbers are not part of the protocol".into());
    }
    raw.parse::<i64>()
        .map_err(|_| format!("integer {raw:?} out of range"))
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or("malformed \\u escape")?;
                        code = code * 16 + digit;
                    }
                    out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

// --------------------------------------------------------------------------
// Requests
// --------------------------------------------------------------------------

/// One experiment submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Named spec to collect (the server resolves it to a config).
    pub spec: String,
    /// Worker pool size; `0` collects in-process (no child processes).
    pub workers: usize,
    /// Shard count for orchestrated passes; `0` defaults server-side.
    pub shards: usize,
    /// Per-shard attempt budget for orchestrated passes.
    pub max_attempts: u32,
    /// Optional per-shard timeout.
    pub timeout_secs: Option<u64>,
    /// Optional worker-daemon endpoints (distributed fan-out).
    pub hosts: Option<String>,
}

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Collect (or replay) an experiment, streaming progress events.
    Submit(SubmitRequest),
    /// List the store's tenants.
    Status,
    /// Serve a cached result without ever collecting.
    Fetch {
        /// Named spec to look up.
        spec: String,
    },
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields = parse_flat_object(line)?;
        let op = fields
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"op\" field")?;
        match op {
            "status" => Ok(Request::Status),
            "fetch" => Ok(Request::Fetch {
                spec: required_str(&fields, "spec")?,
            }),
            "submit" => {
                let timeout = match fields.get("timeout_secs").map(JsonValue::as_num) {
                    None => None,
                    Some(Some(n)) if n >= 0 => Some(n as u64),
                    Some(_) => return Err("\"timeout_secs\" must be a non-negative integer".into()),
                };
                Ok(Request::Submit(SubmitRequest {
                    spec: required_str(&fields, "spec")?,
                    workers: optional_usize(&fields, "workers")?.unwrap_or(0),
                    shards: optional_usize(&fields, "shards")?.unwrap_or(0),
                    max_attempts: optional_usize(&fields, "max_attempts")?.unwrap_or(3) as u32,
                    timeout_secs: timeout,
                    hosts: fields
                        .get("hosts")
                        .and_then(JsonValue::as_str)
                        .map(str::to_string),
                }))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Serializes the request as its protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::Status => "{\"op\": \"status\"}".to_string(),
            Request::Fetch { spec } => {
                format!("{{\"op\": \"fetch\", \"spec\": {}}}", json_str(spec))
            }
            Request::Submit(s) => {
                let mut out = format!(
                    "{{\"op\": \"submit\", \"spec\": {}, \"workers\": {}, \"shards\": {}, \
                     \"max_attempts\": {}",
                    json_str(&s.spec),
                    s.workers,
                    s.shards,
                    s.max_attempts
                );
                if let Some(t) = s.timeout_secs {
                    out.push_str(&format!(", \"timeout_secs\": {t}"));
                }
                if let Some(h) = &s.hosts {
                    out.push_str(&format!(", \"hosts\": {}", json_str(h)));
                }
                out.push('}');
                out
            }
        }
    }
}

fn required_str(fields: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, String> {
    fields
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn optional_usize(
    fields: &BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<Option<usize>, String> {
    match fields.get(key) {
        None => Ok(None),
        Some(JsonValue::Num(n)) if *n >= 0 => Ok(Some(*n as usize)),
        Some(_) => Err(format!("field {key:?} must be a non-negative integer")),
    }
}

// --------------------------------------------------------------------------
// Store
// --------------------------------------------------------------------------

/// Multi-tenant corpus store: one cache directory per config
/// fingerprint under a common root.
#[derive(Debug, Clone)]
pub struct ServeStore {
    /// Store root; tenants are `<root>/<fingerprint:016x>/`.
    pub root: PathBuf,
}

/// One tenant directory of the store.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantSummary {
    /// Directory name (the 16-hex-digit fingerprint).
    pub tenant: String,
    /// Files currently in the tenant directory.
    pub files: usize,
}

impl ServeStore {
    /// Store rooted at `root` (created lazily per tenant).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeStore { root: root.into() }
    }

    /// The tenant directory of one config fingerprint.
    pub fn tenant_dir(&self, fingerprint: u64) -> PathBuf {
        self.root.join(format!("{fingerprint:016x}"))
    }

    /// The collection plan a submission with this identity runs under.
    pub fn plan(&self, prefix: &str, kind: ExperimentKind, fingerprint: u64) -> CollectPlan {
        CollectPlan {
            dir: self.tenant_dir(fingerprint),
            prefix: prefix.to_string(),
            kind,
            fingerprint,
        }
    }

    /// Existing tenants, sorted by fingerprint.
    pub fn tenants(&self) -> io::Result<Vec<TenantSummary>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !is_tenant_dir_name(&name) || !entry.path().is_dir() {
                continue;
            }
            let files = std::fs::read_dir(entry.path())?
                .filter_map(Result::ok)
                .filter(|e| e.path().is_file())
                .count();
            out.push(TenantSummary {
                tenant: name,
                files,
            });
        }
        out.sort();
        Ok(out)
    }
}

/// Whether `name` is a tenant directory name: exactly 16 lowercase hex
/// digits (a formatted config fingerprint).
pub fn is_tenant_dir_name(name: &str) -> bool {
    name.len() == 16
        && name
            .chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
}

// --------------------------------------------------------------------------
// Backend + server loop
// --------------------------------------------------------------------------

/// How a served collection pass ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Cache disposition of the pass.
    pub status: CacheStatus,
    /// Probes in the resulting collection.
    pub probes: usize,
}

/// What the server delegates to the experiment layer: resolving a spec
/// name to its identity, and actually collecting a cold corpus. The
/// bench crate implements this over its named specs; tests script it.
pub trait ExperimentBackend: Send + Sync {
    /// Experiment identity of a named spec, without running anything.
    fn identity(&self, spec: &str) -> Result<(ExperimentKind, u64), String>;

    /// Collects the corpus for `plan` (the cache may be cold or
    /// partial). Implementations go through the standard persist /
    /// orchestrate paths so cache files stay byte-compatible.
    fn run(&self, submit: &SubmitRequest, plan: &CollectPlan) -> Result<RunOutcome, String>;
}

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// How long a connected client may take to send its request line.
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Accept loop: serves every client on its own thread. Collections of
/// the same fingerprint are serialized through a per-tenant lock (two
/// submissions of one config cannot double-collect; the loser replays
/// the winner's cache), while distinct tenants proceed concurrently.
pub fn serve(
    listener: TcpListener,
    backend: Arc<dyn ExperimentBackend>,
    store: ServeStore,
    options: ServeOptions,
) -> io::Result<()> {
    let locks: TenantLocks = Arc::new(Mutex::new(BTreeMap::new()));
    loop {
        let (stream, _peer) = listener.accept()?;
        let backend = Arc::clone(&backend);
        let store = store.clone();
        let locks = Arc::clone(&locks);
        std::thread::spawn(move || {
            let _ = handle_client(stream, backend.as_ref(), &store, &locks, options);
        });
    }
}

type TenantLocks = Arc<Mutex<BTreeMap<u64, Arc<Mutex<()>>>>>;

fn tenant_lock(locks: &TenantLocks, fingerprint: u64) -> Arc<Mutex<()>> {
    let mut map = match locks.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    Arc::clone(map.entry(fingerprint).or_default())
}

/// Serves one client connection end to end.
pub fn handle_client(
    mut stream: TcpStream,
    backend: &dyn ExperimentBackend,
    store: &ServeStore,
    locks: &TenantLocks,
    options: ServeOptions,
) -> io::Result<()> {
    stream.set_read_timeout(Some(options.read_timeout))?;
    let mut line = String::new();
    {
        let mut reader = BufReader::new(stream.try_clone()?).take(MAX_REQUEST_LINE);
        reader.read_line(&mut line)?;
    }
    let request = match Request::parse(line.trim_end()) {
        Ok(request) => request,
        Err(reason) => {
            emit(
                &mut stream,
                &format!(
                    "{{\"event\": \"error\", \"reason\": {}}}",
                    json_str(&reason)
                ),
            )?;
            return Ok(());
        }
    };
    match dispatch(&mut stream, backend, store, locks, &request) {
        Ok(()) => Ok(()),
        Err(reason) => emit(
            &mut stream,
            &format!(
                "{{\"event\": \"error\", \"reason\": {}}}",
                json_str(&reason)
            ),
        ),
    }
}

fn dispatch(
    stream: &mut TcpStream,
    backend: &dyn ExperimentBackend,
    store: &ServeStore,
    locks: &TenantLocks,
    request: &Request,
) -> Result<(), String> {
    match request {
        Request::Status => {
            let tenants = store.tenants().map_err(|e| format!("store scan: {e}"))?;
            for t in &tenants {
                emit_r(
                    stream,
                    &format!(
                        "{{\"event\": \"tenant\", \"tenant\": {}, \"files\": {}}}",
                        json_str(&t.tenant),
                        t.files
                    ),
                )?;
            }
            emit_r(
                stream,
                &format!(
                    "{{\"event\": \"done\", \"status\": \"ok\", \"tenants\": {}}}",
                    tenants.len()
                ),
            )
        }
        Request::Fetch { spec } => {
            let (kind, fingerprint) = backend.identity(spec)?;
            let plan = store.plan(spec, kind, fingerprint);
            emit_accepted(stream, spec, kind, fingerprint, &plan)?;
            match persist::load_or_assemble(&plan.full_path(), kind, fingerprint)
                .map_err(|e| format!("cache load: {e}"))?
            {
                Some((collection, status)) => {
                    emit_cache_hit(stream, status, collection.probes.len())?;
                    emit_report(stream, &plan)?;
                    emit_done(stream, "cache-hit", 0, collection.probes.len())
                }
                None => emit_r(
                    stream,
                    "{\"event\": \"done\", \"status\": \"absent\", \"simulations_run\": 0, \
                     \"probes\": 0}",
                ),
            }
        }
        Request::Submit(submit) => {
            let (kind, fingerprint) = backend.identity(&submit.spec)?;
            let plan = store.plan(&submit.spec, kind, fingerprint);
            emit_accepted(stream, &submit.spec, kind, fingerprint, &plan)?;
            std::fs::create_dir_all(&plan.dir).map_err(|e| format!("store dir: {e}"))?;
            // Fast path first: cache hits are served without taking the
            // tenant lock, so tailing readers never queue behind a
            // collection in progress.
            if let Some((collection, status)) =
                persist::load_or_assemble(&plan.full_path(), kind, fingerprint)
                    .map_err(|e| format!("cache load: {e}"))?
            {
                emit_cache_hit(stream, status, collection.probes.len())?;
                emit_report(stream, &plan)?;
                return emit_done(stream, "cache-hit", 0, collection.probes.len());
            }
            let lock = tenant_lock(locks, fingerprint);
            let _guard = match lock.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Double-check under the lock: a concurrent submission of
            // the same config may have collected while we waited.
            if let Some((collection, status)) =
                persist::load_or_assemble(&plan.full_path(), kind, fingerprint)
                    .map_err(|e| format!("cache load: {e}"))?
            {
                emit_cache_hit(stream, status, collection.probes.len())?;
                emit_report(stream, &plan)?;
                return emit_done(stream, "cache-hit", 0, collection.probes.len());
            }
            emit_r(
                stream,
                &format!(
                    "{{\"event\": \"collecting\", \"workers\": {}, \"shards\": {}}}",
                    submit.workers, submit.shards
                ),
            )?;
            // The delta is exact while submissions are serial (the CI
            // smoke) and an upper bound when tenants collect
            // concurrently — the counter is process-global.
            let sims_before = exec::simulations_run();
            let outcome = backend.run(submit, &plan)?;
            let sims = exec::simulations_run().saturating_sub(sims_before);
            emit_report(stream, &plan)?;
            // The cache was cold under the tenant lock, so whatever the
            // backend's persist path reports (Collected in-process,
            // Assembled after a worker pass), this submission did the
            // collecting.
            let _ = outcome.status;
            emit_done_sims(stream, "collected", sims, outcome.probes)
        }
    }
}

fn emit(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn emit_r(stream: &mut TcpStream, line: &str) -> Result<(), String> {
    emit(stream, line).map_err(|e| format!("client write: {e}"))
}

fn emit_accepted(
    stream: &mut TcpStream,
    spec: &str,
    kind: ExperimentKind,
    fingerprint: u64,
    plan: &CollectPlan,
) -> Result<(), String> {
    emit_r(
        stream,
        &format!(
            "{{\"event\": \"accepted\", \"spec\": {}, \"kind\": {}, \
             \"fingerprint\": \"{fingerprint:016x}\", \"tenant\": {}}}",
            json_str(spec),
            json_str(kind.as_str()),
            json_str(&plan.dir.to_string_lossy())
        ),
    )
}

fn emit_cache_hit(
    stream: &mut TcpStream,
    status: CacheStatus,
    probes: usize,
) -> Result<(), String> {
    let how = match status {
        CacheStatus::Replayed => "replayed",
        CacheStatus::Assembled => "assembled",
        CacheStatus::Collected => "collected",
    };
    emit_r(
        stream,
        &format!("{{\"event\": \"cache-hit\", \"how\": \"{how}\", \"probes\": {probes}}}"),
    )
}

/// Streams the `orchrun.json` run report (when one exists) as an escaped
/// string — the report schema is unchanged; only the transport differs.
fn emit_report(stream: &mut TcpStream, plan: &CollectPlan) -> Result<(), String> {
    let path = report_path_for(&plan.full_path());
    let Ok(content) = std::fs::read_to_string(&path) else {
        return Ok(());
    };
    emit_r(
        stream,
        &format!(
            "{{\"event\": \"report\", \"path\": {}, \"content\": {}}}",
            json_str(&path.to_string_lossy()),
            json_str(&content)
        ),
    )
}

fn emit_done(stream: &mut TcpStream, status: &str, sims: u64, probes: usize) -> Result<(), String> {
    emit_done_sims(stream, status, sims, probes)
}

fn emit_done_sims(
    stream: &mut TcpStream,
    status: &str,
    sims: u64,
    probes: usize,
) -> Result<(), String> {
    emit_r(
        stream,
        &format!(
            "{{\"event\": \"done\", \"status\": \"{status}\", \"simulations_run\": {sims}, \
             \"probes\": {probes}}}"
        ),
    )
}

// --------------------------------------------------------------------------
// Client
// --------------------------------------------------------------------------

/// Terminal state of one request, distilled from the final `done` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOutcome {
    /// `done.status`: `collected`, `cache-hit`, `absent` or `ok`.
    pub status: String,
    /// `done.simulations_run`, when present.
    pub simulations_run: Option<u64>,
    /// `done.probes`, when present.
    pub probes: Option<u64>,
}

/// Sends one request and tails the event stream until the connection
/// closes, invoking `on_event` per raw line. `Err` on transport failure,
/// a server `error` event, or a stream that ends without `done`.
pub fn request(
    addr: &str,
    request: &Request,
    mut on_event: impl FnMut(&str),
) -> Result<ServeOutcome, String> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("{addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: resolved to no address"))?;
    let mut stream = TcpStream::connect(target).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(format!("{}\n", request.to_json()).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let reader = BufReader::new(stream);
    let mut outcome = None;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("receive: {e}"))?;
        on_event(&line);
        let fields =
            parse_flat_object(&line).map_err(|e| format!("unparsable event line {line:?}: {e}"))?;
        match fields.get("event").and_then(JsonValue::as_str) {
            Some("error") => {
                let reason = fields
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("(no reason)");
                return Err(format!("server error: {reason}"));
            }
            Some("done") => {
                outcome = Some(ServeOutcome {
                    status: fields
                        .get("status")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    simulations_run: fields
                        .get("simulations_run")
                        .and_then(JsonValue::as_num)
                        .and_then(|n| u64::try_from(n).ok()),
                    probes: fields
                        .get("probes")
                        .and_then(JsonValue::as_num)
                        .and_then(|n| u64::try_from(n).ok()),
                });
            }
            _ => {}
        }
    }
    outcome.ok_or_else(|| "stream ended without a done event".into())
}

/// Service address from [`ADDR_ENV`], falling back to [`DEFAULT_ADDR`].
pub fn addr_from_env() -> String {
    std::env::var(ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_string())
}

/// Store root from [`STORE_ENV`], when set.
pub fn store_from_env() -> Option<PathBuf> {
    std::env::var(STORE_ENV).ok().map(PathBuf::from)
}

/// Report path helper re-exported for operators reading the store
/// directly (`<full cache path>.orchrun.json` sibling).
pub fn report_path_in(plan: &CollectPlan) -> PathBuf {
    report_path_for(&plan.full_path())
}

/// Whether `path` looks like a multi-tenant store root (exists and
/// contains at least one tenant directory).
pub fn looks_like_store(path: &Path) -> bool {
    std::fs::read_dir(path)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .any(|e| is_tenant_dir_name(&e.file_name().to_string_lossy()) && e.path().is_dir())
        })
        .unwrap_or(false)
}

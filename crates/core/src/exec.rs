//! Run-level parallel execution engine.
//!
//! The collection phase of the methodology is embarrassingly parallel at
//! *run* granularity — every (probe, design, bug) simulation and every
//! (probe, engine) stage-1 training job is independent — but the work is
//! heavily skewed: buggy runs stall pipelines for many more cycles than
//! healthy ones, and neural engines train orders of magnitude longer than
//! boosted trees. This module provides the scheduler the collection passes
//! (`experiment::collect`, `memory::collect_memory`) are built on:
//!
//! * a sharded **work-stealing index scheduler** ([`Scheduler`]) — each
//!   worker owns a contiguous shard of the task range and claims indices
//!   with a single atomic `fetch_add`; once its shard is drained it steals
//!   from the shard with the most remaining work, so skewed run costs
//!   cannot idle a core;
//! * **lock-free per-slot result writes** ([`SlotVec`]) — every task
//!   publishes its result through its own `OnceLock`, eliminating the
//!   global results mutex of the previous probe-granular loop;
//! * [`parallel_map`] / [`parallel_map_with`] — scoped-thread drivers that
//!   tie the two together and preserve index order, so results are
//!   byte-identical regardless of worker count;
//! * [`collect_unit_grid`] — the shared three-phase collection driver over
//!   a (probe × unit) simulation grid. The core and memory experiments
//!   used to each carry their own copy of this pipeline (~120 structurally
//!   identical lines); both now parameterise this single driver with their
//!   trace builder, simulator and counter-selection policy;
//! * [`ShardSpec`] — multi-process scale-out. A shard restricts the driver
//!   to a deterministic contiguous probe range of the grid; because every
//!   probe's pipeline is independent and deterministic, the union of any
//!   shard partition's outputs is identical to a single-process run. The
//!   persistence layer (`crate::persist`) gives shards an on-disk merge
//!   format (see `docs/FORMAT.md` and `docs/ARCHITECTURE.md`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::experiment::{CapturedSeries, EngineResult, DELTA_CEILING};
use crate::stage1::{inference_error, EngineSpec, FeatureSpec, ProbeModel, RunSeries};

/// The number of worker threads to use when the caller does not override
/// it: the machine's available parallelism (1 when that cannot be
/// determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One worker's contiguous slice of the task range.
#[derive(Debug)]
struct Shard {
    /// Next unclaimed task index; may legitimately run past `end` when
    /// thieves race, which simply means the shard is drained.
    next: AtomicUsize,
    /// One past the last task index of the shard.
    end: usize,
}

impl Shard {
    fn remaining(&self) -> usize {
        self.end.saturating_sub(self.next.load(Ordering::Relaxed))
    }

    /// Claims the next index of this shard, if any is left.
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.end).then_some(i)
    }
}

/// Work-stealing scheduler over the task indices `0..n_tasks`.
///
/// Claiming is wait-free in the common case (one `fetch_add` on the
/// worker's own shard) and lock-free when stealing.
#[derive(Debug)]
pub struct Scheduler {
    shards: Vec<Shard>,
}

impl Scheduler {
    /// Partitions `0..n_tasks` into `workers` near-equal contiguous shards.
    pub fn new(n_tasks: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let base = n_tasks / workers;
        let extra = n_tasks % workers;
        let mut shards = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            shards.push(Shard {
                next: AtomicUsize::new(start),
                end: start + len,
            });
            start += len;
        }
        Scheduler { shards }
    }

    /// Claims the next task for `worker`: from its own shard while it
    /// lasts, then by stealing from the fullest other shard. Returns
    /// `None` only once every task index has been claimed.
    pub fn claim(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.shards[worker % self.shards.len()].claim() {
            return Some(i);
        }
        loop {
            let victim = self
                .shards
                .iter()
                .max_by_key(|s| s.remaining())
                .filter(|s| s.remaining() > 0)?;
            if let Some(i) = victim.claim() {
                return Some(i);
            }
            // Lost the race for the victim's last tasks; rescan.
        }
    }
}

/// A fixed-size vector of write-once result slots.
///
/// Each parallel task publishes into its own slot, so no lock is shared
/// between workers and results keep task order.
#[derive(Debug)]
pub struct SlotVec<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> SlotVec<T> {
    /// Creates `n` empty slots.
    pub fn new(n: usize) -> Self {
        SlotVec {
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Publishes the result of task `i`.
    ///
    /// # Panics
    ///
    /// Panics if slot `i` was already filled — every task index must be
    /// claimed exactly once.
    pub fn set(&self, i: usize, value: T) {
        if self.slots[i].set(value).is_err() {
            panic!("slot {i} filled twice");
        }
    }

    /// Reads the result of task `i`, if published.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.slots[i].get()
    }

    /// Unwraps all slots into a plain vector, preserving task order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is still empty.
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|| panic!("slot {i} never filled"))
            })
            .collect()
    }
}

/// Runs `task(worker_state, index)` for every index in `0..n_tasks` on
/// `threads` scoped workers (clamped to at least 1) and returns the
/// results in index order. `init` builds one reusable state per worker
/// (scratch buffers, pools); the single-threaded path runs inline without
/// spawning.
pub fn parallel_map_with<T, S, I, F>(n_tasks: usize, threads: usize, init: I, task: F) -> Vec<T>
where
    T: Send + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n_tasks.max(1));
    if threads == 1 {
        let mut state = init();
        return (0..n_tasks).map(|i| task(&mut state, i)).collect();
    }
    let scheduler = Scheduler::new(n_tasks, threads);
    let slots = SlotVec::new(n_tasks);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let scheduler = &scheduler;
            let slots = &slots;
            let init = &init;
            let task = &task;
            scope.spawn(move || {
                let mut state = init();
                while let Some(i) = scheduler.claim(worker) {
                    slots.set(i, task(&mut state, i));
                }
            });
        }
    });
    slots.into_vec()
}

/// [`parallel_map_with`] without per-worker state.
pub fn parallel_map<T, F>(n_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n_tasks, threads, || (), |(), i| task(i))
}

// --------------------------------------------------------------------------
// Shared unit-grid collection driver
// --------------------------------------------------------------------------

/// Process-wide count of simulation units run by [`collect_unit_grid`].
///
/// Incremented once per (probe, unit) simulation task. The replay tooling
/// (`examples/replay.rs`, the CI replay guard, `speed_test`) samples it
/// around a cache load to prove that an evaluation-only replay performed
/// zero simulations.
static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of simulation units run by this process so far.
pub fn simulations_run() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

/// Process-wide count of probe traces regenerated from their workload
/// program (`Probe::trace`) by the collection paths.
///
/// The trace-cache tooling (`examples/trace_cache.rs`, the CI trace-cache
/// guard, `speed_test`, `core/tests/trace_equiv.rs`) samples it around a
/// warm collection pass to prove that a populated
/// [`TraceStore`](crate::tracecache::TraceStore) serves every trace from
/// disk — zero regenerations — while cold passes and cache rejections are
/// visible as a non-zero delta.
static TRACE_REGENERATIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of probe traces regenerated by this process so far.
pub fn traces_regenerated() -> u64 {
    TRACE_REGENERATIONS.load(Ordering::Relaxed)
}

/// Records one trace regeneration (called by every collection-path
/// `Probe::trace` site, cached or not).
pub(crate) fn note_trace_regenerated() {
    TRACE_REGENERATIONS.fetch_add(1, Ordering::Relaxed);
}

/// One process's slice of a sharded collection pass.
///
/// A shard owns a deterministic contiguous range of the probe axis of the
/// (probe × unit) grid — the same near-equal partition for every process,
/// so `count` cooperating processes cover every probe exactly once. Shard
/// 0 of 1 ([`ShardSpec::full`]) is the unsharded single-process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's shard index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the probe axis is split into.
    pub count: usize,
}

impl ShardSpec {
    /// Builds a shard spec, validating `index < count`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be at least 1");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardSpec { index, count }
    }

    /// The unsharded spec: one shard covering everything.
    pub fn full() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Parses the canonical `<index>/<count>` notation (e.g. `0/4`) used
    /// by `PERFBUG_SHARD` and the orchestrator CLIs.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (index, count) = raw
            .split_once('/')
            .ok_or_else(|| format!("shard spec must be <index>/<count> (e.g. 0/4), got {raw:?}"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in {raw:?}"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in {raw:?}"))?;
        if count == 0 {
            return Err(format!("shard count must be at least 1 in {raw:?}"));
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this spec covers the whole probe range by itself.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// The contiguous probe range this shard owns out of `n_probes`.
    ///
    /// Near-equal partition, identical to the scheduler's: the first
    /// `n_probes % count` shards take one extra probe. Shards beyond the
    /// probe count legitimately own an empty range.
    pub fn probe_range(&self, n_probes: usize) -> std::ops::Range<usize> {
        let base = n_probes / self.count;
        let extra = n_probes % self.count;
        let start = self.index * base + self.index.min(extra);
        let len = base + usize::from(self.index < extra);
        start..start + len
    }
}

/// The index structure of one collection pass's simulation-unit grid.
///
/// A *unit* is one distinct (design, bug) combination; every probe
/// simulates each unit exactly once and the result is shared by all its
/// consumers. The vectors index into `0..n_units`.
#[derive(Debug, Clone)]
pub struct UnitGrid {
    /// Number of distinct units per probe.
    pub n_units: usize,
    /// Units providing stage-1 training runs (Set-I bug-free designs).
    pub train_units: Vec<usize>,
    /// Units providing stage-1 validation runs (Set-II bug-free designs).
    pub val_units: Vec<usize>,
    /// Unit of each evaluation run key, in key order.
    pub key_units: Vec<usize>,
}

/// Everything [`collect_unit_grid`] produces, in probe order.
#[derive(Debug)]
pub struct GridOutput {
    /// Per-engine inference errors and stage-1 timings.
    pub engines: Vec<EngineResult>,
    /// Overall target metric per `[probe][key]`.
    pub overall: Vec<Vec<f64>>,
    /// Aggregated per-run baseline features per `[probe][key]`.
    pub agg_features: Vec<Vec<Vec<f64>>>,
    /// Captured (simulated, inferred) series, in (probe, engine) order.
    pub captures: Vec<CapturedSeries>,
}

/// Output of one (probe, engine) stage-1 training task, as surfaced per
/// probe by [`collect_unit_grid_streaming`].
#[derive(Debug)]
pub struct EngineProbeOutput {
    /// Eq.-(1) inference errors for this probe, one per run key.
    pub deltas: Vec<f64>,
    /// Wall-clock stage-1 training time of this (probe, engine) task.
    pub train_time: Duration,
    /// Wall-clock stage-1 inference time of this (probe, engine) task.
    pub infer_time: Duration,
    /// Captured (simulated, inferred) series, in key order.
    pub captures: Vec<CapturedSeries>,
}

/// Everything one probe's pipeline produced, handed to the
/// [`collect_unit_grid_streaming`] completion callback as soon as the
/// probe's block finishes.
#[derive(Debug)]
pub struct ProbeOutput {
    /// Overall target metric, one per run key.
    pub overall: Vec<f64>,
    /// Aggregated per-run baseline features, one row per run key.
    pub agg: Vec<Vec<f64>>,
    /// Per-engine stage-1 outputs, in configured engine order.
    pub engines: Vec<EngineProbeOutput>,
}

/// Runs the shared three-phase collection pipeline over a (probe × unit)
/// grid on the work-stealing pool:
///
/// * **Phase A** — the (probe × unit) simulation grid (`simulate`), fed by
///   one trace per probe (`make_trace`);
/// * **Phase B** — per-probe counter selection (`prepare`) plus the
///   baseline's aggregated mean-row features and overall-metric vector;
/// * **Phase C** — the (probe × engine) stage-1 training grid, producing
///   Eq.-(1) inference errors (ceiling-clamped at
///   `experiment::DELTA_CEILING`) and optional captured series
///   (`capture`).
///
/// `shard` restricts the driver to that shard's probe range
/// ([`ShardSpec::probe_range`]); probe indices handed to the callbacks are
/// always absolute grid indices, so a probe's pipeline is bit-identical
/// whether it runs in a full pass or inside any shard.
///
/// Probes are processed in blocks of `max(threads, 2)` to bound peak
/// memory; results are published into per-task slots and assembled in
/// deterministic index order, so the output is identical for any worker
/// count and any block size.
// One parameter per pipeline customisation point; bundling them into a
// struct of closures would only move the argument list.
#[allow(clippy::too_many_arguments)]
pub fn collect_unit_grid<T, MkTrace, Sim, Prep, Cap>(
    n_probes: usize,
    threads: usize,
    shard: ShardSpec,
    grid: &UnitGrid,
    engines: &[EngineSpec],
    make_trace: MkTrace,
    simulate: Sim,
    prepare: Prep,
    capture: Cap,
) -> GridOutput
where
    T: Send + Sync,
    MkTrace: Fn(usize) -> T + Sync,
    Sim: Fn(&T, usize) -> (RunSeries, f64) + Sync,
    Prep: Fn(usize, &[(RunSeries, f64)]) -> FeatureSpec + Sync,
    Cap: Fn(usize, usize, &EngineSpec, &RunSeries, &[f64]) -> Option<CapturedSeries> + Sync,
{
    let shard_len = shard.probe_range(n_probes).len();
    let mut out = GridOutput {
        engines: engines
            .iter()
            .map(|e| EngineResult {
                name: e.name(),
                deltas: Vec::with_capacity(shard_len),
                train_time: Duration::ZERO,
                infer_time: Duration::ZERO,
            })
            .collect(),
        overall: Vec::with_capacity(shard_len),
        agg_features: Vec::with_capacity(shard_len),
        captures: Vec::new(),
    };
    let result: Result<(), std::convert::Infallible> = collect_unit_grid_streaming(
        n_probes,
        threads,
        shard,
        0,
        grid,
        engines,
        make_trace,
        simulate,
        prepare,
        capture,
        |_probe, po| {
            out.overall.push(po.overall);
            out.agg_features.push(po.agg);
            for (engine, o) in out.engines.iter_mut().zip(po.engines) {
                engine.deltas.push(o.deltas);
                engine.train_time += o.train_time;
                engine.infer_time += o.infer_time;
                out.captures.extend(o.captures);
            }
            Ok(())
        },
    );
    match result {
        Ok(()) => out,
        Err(never) => match never {},
    }
}

/// The streaming variant of [`collect_unit_grid`]: identical pipeline,
/// but each probe's complete output is handed to `on_probe(absolute
/// probe index, output)` as soon as its block's deterministic assembly
/// reaches it, instead of being accumulated in memory. The callback runs
/// on the calling thread, in strictly increasing probe order, and may
/// fail — a `Err` aborts the pass immediately (work already queued in
/// the current block is finished first).
///
/// `skip` drops the first `skip` probes of the shard's range without
/// simulating them — the resume path: a crashed worker whose durable
/// prefix already holds `skip` probes continues from the first missing
/// one. Because every probe's pipeline depends only on its own trace,
/// the probes that *are* run produce bit-identical output regardless of
/// `skip` (block boundaries shift, which affects nothing but batching).
#[allow(clippy::too_many_arguments)]
pub fn collect_unit_grid_streaming<T, MkTrace, Sim, Prep, Cap, E>(
    n_probes: usize,
    threads: usize,
    shard: ShardSpec,
    skip: usize,
    grid: &UnitGrid,
    engines: &[EngineSpec],
    make_trace: MkTrace,
    simulate: Sim,
    prepare: Prep,
    capture: Cap,
    mut on_probe: impl FnMut(usize, ProbeOutput) -> Result<(), E>,
) -> Result<(), E>
where
    T: Send + Sync,
    MkTrace: Fn(usize) -> T + Sync,
    Sim: Fn(&T, usize) -> (RunSeries, f64) + Sync,
    Prep: Fn(usize, &[(RunSeries, f64)]) -> FeatureSpec + Sync,
    Cap: Fn(usize, usize, &EngineSpec, &RunSeries, &[f64]) -> Option<CapturedSeries> + Sync,
{
    let threads = threads.max(1);
    let n_units = grid.n_units;
    let n_engines = engines.len();
    let block = threads.max(2);
    let range = shard.probe_range(n_probes);
    let start = range.start + skip.min(range.len());

    for block_start in (start..range.end).step_by(block) {
        let block_len = (range.end - block_start).min(block);

        // Trace generation, one task per probe.
        let traces: Vec<T> = parallel_map(block_len, threads, |i| make_trace(block_start + i));

        // Phase A: the (probe x unit) simulation grid.
        let sims: Vec<(RunSeries, f64)> = parallel_map(block_len * n_units, threads, |t| {
            let (pi, u) = (t / n_units, t % n_units);
            SIMULATIONS.fetch_add(1, Ordering::Relaxed);
            simulate(&traces[pi], u)
        });
        let sims_of = |pi: usize| &sims[pi * n_units..(pi + 1) * n_units];

        // Phase B: per-probe counter selection and baseline aggregates
        // (mean counter row + design features + the overall metric).
        type Prepped = (FeatureSpec, Vec<Vec<f64>>, Vec<f64>);
        let preps: Vec<Prepped> = parallel_map(block_len, threads, |pi| {
            let units = sims_of(pi);
            let features = prepare(block_start + pi, units);
            let agg: Vec<Vec<f64>> = grid
                .key_units
                .iter()
                .map(|&u| {
                    let (series, overall) = &units[u];
                    let n = series.rows.len().max(1) as f64;
                    let mut mean = vec![0.0; series.rows.width()];
                    for row in &series.rows {
                        for (m, v) in mean.iter_mut().zip(row) {
                            *m += v;
                        }
                    }
                    mean.iter_mut().for_each(|m| *m /= n);
                    mean.extend_from_slice(&series.arch_features);
                    mean.push(*overall);
                    mean
                })
                .collect();
            let overall = grid.key_units.iter().map(|&u| units[u].1).collect();
            (features, agg, overall)
        });

        // Phase C: the (probe x engine) stage-1 training grid.
        let outputs: Vec<EngineProbeOutput> = parallel_map(block_len * n_engines, threads, |t| {
            let (pi, e) = (t / n_engines, t % n_engines);
            let units = sims_of(pi);
            let engine = &engines[e];
            let train_refs: Vec<&RunSeries> =
                grid.train_units.iter().map(|&u| &units[u].0).collect();
            let val_refs: Vec<&RunSeries> = grid.val_units.iter().map(|&u| &units[u].0).collect();
            let t0 = Instant::now();
            let model = ProbeModel::train(engine, preps[pi].0.clone(), &train_refs, &val_refs);
            let train_time = t0.elapsed();
            let t1 = Instant::now();
            let mut deltas = Vec::with_capacity(grid.key_units.len());
            let mut captures = Vec::new();
            for (pos, &u) in grid.key_units.iter().enumerate() {
                let series = &units[u].0;
                let inferred = model.infer(series);
                let mut delta = inference_error(&series.target, &inferred);
                if !delta.is_finite() || delta > DELTA_CEILING {
                    delta = DELTA_CEILING;
                }
                deltas.push(delta);
                if let Some(c) = capture(block_start + pi, pos, engine, series, &inferred) {
                    captures.push(c);
                }
            }
            EngineProbeOutput {
                deltas,
                train_time,
                infer_time: t1.elapsed(),
                captures,
            }
        });

        // Deterministic assembly in (probe, engine) order, consuming the
        // task outputs so deltas and captures move instead of cloning.
        let mut outputs = outputs.into_iter();
        for (pi, (_, agg, overall)) in preps.into_iter().enumerate() {
            let probe_engines: Vec<EngineProbeOutput> = (0..n_engines)
                .map(|_| outputs.next().expect("one output per (probe, engine)"))
                .collect();
            on_probe(
                block_start + pi,
                ProbeOutput {
                    overall,
                    agg,
                    engines: probe_engines,
                },
            )?;
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scheduler_claims_every_task_exactly_once() {
        for (n, workers) in [(0, 3), (1, 4), (7, 2), (100, 8), (5, 16)] {
            let scheduler = Scheduler::new(n, workers);
            let mut seen = vec![0u32; n];
            for w in 0..workers {
                while let Some(i) = scheduler.claim(w) {
                    seen[i] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "n={n} workers={workers}: {seen:?}"
            );
        }
    }

    #[test]
    fn stealing_drains_skewed_shards() {
        // Worker 1 never claims; worker 0 must steal worker 1's shard dry.
        let scheduler = Scheduler::new(10, 2);
        let mut count = 0;
        while scheduler.claim(0).is_some() {
            count += 1;
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_serial() {
        let serial = parallel_map(257, 1, |i| (i as u64).wrapping_mul(0x9e3779b9));
        let parallel = parallel_map(257, 8, |i| (i as u64).wrapping_mul(0x9e3779b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_state_is_reused() {
        // Each worker counts its claims in local state; the total across
        // workers must equal the task count.
        let total = AtomicU64::new(0);
        let out = parallel_map_with(
            64,
            4,
            || 0u64,
            |claims, i| {
                *claims += 1;
                total.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_task_set() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn shard_ranges_partition_every_probe_count() {
        for n_probes in [0usize, 1, 5, 7, 16, 100] {
            for count in [1usize, 2, 3, 5, 8, 13] {
                let mut covered = vec![0u32; n_probes];
                let mut prev_end = 0;
                for index in 0..count {
                    let range = ShardSpec::new(index, count).probe_range(n_probes);
                    assert_eq!(range.start, prev_end, "shards must be contiguous");
                    prev_end = range.end;
                    for p in range {
                        covered[p] += 1;
                    }
                }
                assert_eq!(prev_end, n_probes);
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "n={n_probes} count={count}: {covered:?}"
                );
            }
        }
    }

    #[test]
    fn shard_full_covers_everything() {
        assert!(ShardSpec::full().is_full());
        assert_eq!(ShardSpec::full().probe_range(9), 0..9);
    }

    #[test]
    fn shard_index_out_of_range_panics() {
        let result = std::panic::catch_unwind(|| ShardSpec::new(3, 3));
        assert!(result.is_err());
    }

    #[test]
    fn slotvec_rejects_double_set() {
        let slots = SlotVec::new(2);
        slots.set(0, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slots.set(0, 2)));
        assert!(result.is_err());
    }
}

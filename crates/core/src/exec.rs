//! Run-level parallel execution engine.
//!
//! The collection phase of the methodology is embarrassingly parallel at
//! *run* granularity — every (probe, design, bug) simulation and every
//! (probe, engine) stage-1 training job is independent — but the work is
//! heavily skewed: buggy runs stall pipelines for many more cycles than
//! healthy ones, and neural engines train orders of magnitude longer than
//! boosted trees. This module provides the scheduler the collection passes
//! (`experiment::collect`, `memory::collect_memory`) are built on:
//!
//! * a sharded **work-stealing index scheduler** ([`Scheduler`]) — each
//!   worker owns a contiguous shard of the task range and claims indices
//!   with a single atomic `fetch_add`; once its shard is drained it steals
//!   from the shard with the most remaining work, so skewed run costs
//!   cannot idle a core;
//! * **lock-free per-slot result writes** ([`SlotVec`]) — every task
//!   publishes its result through its own `OnceLock`, eliminating the
//!   global results mutex of the previous probe-granular loop;
//! * [`parallel_map`] / [`parallel_map_with`] — scoped-thread drivers that
//!   tie the two together and preserve index order, so results are
//!   byte-identical regardless of worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The number of worker threads to use when the caller does not override
/// it: the machine's available parallelism (1 when that cannot be
/// determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One worker's contiguous slice of the task range.
#[derive(Debug)]
struct Shard {
    /// Next unclaimed task index; may legitimately run past `end` when
    /// thieves race, which simply means the shard is drained.
    next: AtomicUsize,
    /// One past the last task index of the shard.
    end: usize,
}

impl Shard {
    fn remaining(&self) -> usize {
        self.end.saturating_sub(self.next.load(Ordering::Relaxed))
    }

    /// Claims the next index of this shard, if any is left.
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.end).then_some(i)
    }
}

/// Work-stealing scheduler over the task indices `0..n_tasks`.
///
/// Claiming is wait-free in the common case (one `fetch_add` on the
/// worker's own shard) and lock-free when stealing.
#[derive(Debug)]
pub struct Scheduler {
    shards: Vec<Shard>,
}

impl Scheduler {
    /// Partitions `0..n_tasks` into `workers` near-equal contiguous shards.
    pub fn new(n_tasks: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let base = n_tasks / workers;
        let extra = n_tasks % workers;
        let mut shards = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            shards.push(Shard {
                next: AtomicUsize::new(start),
                end: start + len,
            });
            start += len;
        }
        Scheduler { shards }
    }

    /// Claims the next task for `worker`: from its own shard while it
    /// lasts, then by stealing from the fullest other shard. Returns
    /// `None` only once every task index has been claimed.
    pub fn claim(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.shards[worker % self.shards.len()].claim() {
            return Some(i);
        }
        loop {
            let victim = self
                .shards
                .iter()
                .max_by_key(|s| s.remaining())
                .filter(|s| s.remaining() > 0)?;
            if let Some(i) = victim.claim() {
                return Some(i);
            }
            // Lost the race for the victim's last tasks; rescan.
        }
    }
}

/// A fixed-size vector of write-once result slots.
///
/// Each parallel task publishes into its own slot, so no lock is shared
/// between workers and results keep task order.
#[derive(Debug)]
pub struct SlotVec<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> SlotVec<T> {
    /// Creates `n` empty slots.
    pub fn new(n: usize) -> Self {
        SlotVec {
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Publishes the result of task `i`.
    ///
    /// # Panics
    ///
    /// Panics if slot `i` was already filled — every task index must be
    /// claimed exactly once.
    pub fn set(&self, i: usize, value: T) {
        if self.slots[i].set(value).is_err() {
            panic!("slot {i} filled twice");
        }
    }

    /// Reads the result of task `i`, if published.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.slots[i].get()
    }

    /// Unwraps all slots into a plain vector, preserving task order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is still empty.
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|| panic!("slot {i} never filled"))
            })
            .collect()
    }
}

/// Runs `task(worker_state, index)` for every index in `0..n_tasks` on
/// `threads` scoped workers (clamped to at least 1) and returns the
/// results in index order. `init` builds one reusable state per worker
/// (scratch buffers, pools); the single-threaded path runs inline without
/// spawning.
pub fn parallel_map_with<T, S, I, F>(n_tasks: usize, threads: usize, init: I, task: F) -> Vec<T>
where
    T: Send + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n_tasks.max(1));
    if threads == 1 {
        let mut state = init();
        return (0..n_tasks).map(|i| task(&mut state, i)).collect();
    }
    let scheduler = Scheduler::new(n_tasks, threads);
    let slots = SlotVec::new(n_tasks);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let scheduler = &scheduler;
            let slots = &slots;
            let init = &init;
            let task = &task;
            scope.spawn(move || {
                let mut state = init();
                while let Some(i) = scheduler.claim(worker) {
                    slots.set(i, task(&mut state, i));
                }
            });
        }
    });
    slots.into_vec()
}

/// [`parallel_map_with`] without per-worker state.
pub fn parallel_map<T, F>(n_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n_tasks, threads, || (), |(), i| task(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scheduler_claims_every_task_exactly_once() {
        for (n, workers) in [(0, 3), (1, 4), (7, 2), (100, 8), (5, 16)] {
            let scheduler = Scheduler::new(n, workers);
            let mut seen = vec![0u32; n];
            for w in 0..workers {
                while let Some(i) = scheduler.claim(w) {
                    seen[i] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "n={n} workers={workers}: {seen:?}"
            );
        }
    }

    #[test]
    fn stealing_drains_skewed_shards() {
        // Worker 1 never claims; worker 0 must steal worker 1's shard dry.
        let scheduler = Scheduler::new(10, 2);
        let mut count = 0;
        while scheduler.claim(0).is_some() {
            count += 1;
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_serial() {
        let serial = parallel_map(257, 1, |i| (i as u64).wrapping_mul(0x9e3779b9));
        let parallel = parallel_map(257, 8, |i| (i as u64).wrapping_mul(0x9e3779b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_state_is_reused() {
        // Each worker counts its claims in local state; the total across
        // workers must equal the task count.
        let total = AtomicU64::new(0);
        let out = parallel_map_with(
            64,
            4,
            || 0u64,
            |claims, i| {
                *claims += 1;
                total.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_task_set() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn slotvec_rejects_double_set() {
        let slots = SlotVec::new(2);
        slots.set(0, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slots.set(0, 2)));
        assert!(result.is_err());
    }
}

//! Collection persistence: a versioned, deterministic binary codec for
//! [`Collection`] plus evaluation-only replay.
//!
//! The expensive phase of every experiment is *collection* (simulate each
//! probe on each design with each bug, train stage-1 models); the cheap
//! phase is *evaluation*. The paper reuses one collected corpus across
//! many models and thresholds (Figs. 8–13, Tables IV–VII), so this module
//! lets a collection be saved once and replayed by any number of
//! evaluation-only runs without touching the simulator.
//!
//! The codec is hand-rolled (the build environment is offline — no serde):
//! little-endian fixed-width integers, `f64::to_bits` for floats, and
//! length-prefixed sequences, which makes encoding byte-deterministic for
//! a given collection. Every file carries
//!
//! * a magic tag and a [`FORMAT_VERSION`] — files from an older codec are
//!   rejected with [`PersistError::Version`], never reinterpreted;
//! * the **config fingerprint** of the producing collection pass — loading
//!   under a different [`CollectionConfig`] fails with
//!   [`PersistError::Fingerprint`], so a stale cache is rejected rather
//!   than silently reused;
//! * a trailing FNV-1a checksum over the whole header + payload —
//!   truncated or corrupted files fail with [`PersistError::Corrupt`].
//!
//! [`collect_or_load`] / [`collect_memory_or_load`] are the front doors:
//! they replay a saved collection when the cache file exists and collect
//! (then save) otherwise. Pair them with [`cache_file_name`], which embeds
//! the fingerprint in the file name so distinct configurations can never
//! collide on one path.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::Opcode;

use crate::bugs::BugCatalog;
use crate::experiment::{
    collect, CapturedSeries, Collection, CollectionConfig, EngineResult, ProbeMeta, RunKey,
};
use crate::memory::{collect_memory, MemCollectionConfig};

/// Version of the on-disk format. Bump on any layout change; readers
/// reject every other version.
pub const FORMAT_VERSION: u32 = 1;

/// Version of the *corpus semantics*: what the collection pipeline would
/// produce for a given configuration. Folded into every config
/// fingerprint, so bumping it invalidates caches without changing the
/// codec. Bump whenever a change makes collection output numerically
/// different under an unchanged config (simulator timing fixes, counter
/// or feature semantics, engine training/inference numerics, Eq.-(1)
/// changes) — otherwise an old cache would silently replay data the
/// current code no longer produces.
pub const CORPUS_REVISION: u32 = 1;

/// Magic tag opening every serialised collection.
const MAGIC: [u8; 4] = *b"PBCL";

/// Canonical file extension of serialised collections.
pub const FILE_EXTENSION: &str = "pbcol";

// --------------------------------------------------------------------------
// Errors
// --------------------------------------------------------------------------

/// Why a collection could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The bytes are not a well-formed collection file (bad magic, failed
    /// checksum, truncation, or an invalid enum tag).
    Corrupt(String),
    /// The file was written by a different codec version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The file was collected under a different configuration.
    Fingerprint {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the requesting configuration.
        expected: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt collection file: {why}"),
            PersistError::Version { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            PersistError::Fingerprint { found, expected } => write!(
                f,
                "stale cache: collected under config {found:016x}, requested {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

// --------------------------------------------------------------------------
// Fingerprints
// --------------------------------------------------------------------------

/// 64-bit FNV-1a over a byte slice (also the file checksum primitive).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of everything in a [`CollectionConfig`] that shapes the
/// collected data. `threads` is deliberately excluded: the engine is
/// deterministic for any worker count, so parallelism is an execution
/// detail, not part of the corpus identity.
pub fn config_fingerprint(config: &CollectionConfig) -> u64 {
    let canon = format!(
        "core/v{FORMAT_VERSION}/c{CORPUS_REVISION}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.scale,
        config.engines,
        config.counter_mode,
        config.window,
        config.arch_features,
        config.catalog.variants(),
        // The whole benchmark specs, not just their names: k, seed and
        // phase structure all shape the probe set and traces.
        config.benchmarks,
        config.max_probes,
        config.partition,
        config.presumed_bugfree_bug,
        config.captures,
    );
    fnv1a(canon.as_bytes())
}

/// Fingerprint of a [`MemCollectionConfig`], excluding `threads` for the
/// same reason as [`config_fingerprint`].
pub fn mem_config_fingerprint(config: &MemCollectionConfig) -> u64 {
    let canon = format!(
        "mem/v{FORMAT_VERSION}/c{CORPUS_REVISION}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.workload,
        config.step_cycles,
        config.engines,
        config.metric,
        config.counter_mode,
        config.catalog.variants(),
        config.max_probes,
    );
    fnv1a(canon.as_bytes())
}

/// The canonical cache file name for a fingerprinted collection:
/// `<prefix>-<fingerprint hex>.pbcol`. Because the fingerprint is part of
/// the name, a configuration change maps to a fresh file instead of a
/// stale-cache error.
pub fn cache_file_name(prefix: &str, fingerprint: u64) -> String {
    format!("{prefix}-{fingerprint:016x}.{FILE_EXTENSION}")
}

// --------------------------------------------------------------------------
// Primitive codec
// --------------------------------------------------------------------------

/// Append-only encoder over a growable byte buffer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(i) => {
                self.u8(1);
                self.usize(i);
            }
        }
    }

    fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }
}

/// Cursor-based decoder; every read is bounds-checked so truncated input
/// surfaces as [`PersistError::Corrupt`] instead of a panic.
struct Dec<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Dec<'b> {
    fn new(bytes: &'b [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| PersistError::Corrupt(format!("truncated at byte {}", self.pos)))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("length {v} overflows")))
    }

    /// A length prefix that is about to drive an allocation; bounded by
    /// the remaining payload so corrupt lengths cannot exhaust memory.
    fn len(&mut self) -> Result<usize, PersistError> {
        let v = self.usize()?;
        if v > self.bytes.len().saturating_sub(self.pos) {
            return Err(PersistError::Corrupt(format!(
                "length {v} exceeds remaining {} bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(PersistError::Corrupt(format!("invalid bool tag {t}"))),
        }
    }

    fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid utf-8 string".into()))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn opt_usize(&mut self) -> Result<Option<usize>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            t => Err(PersistError::Corrupt(format!("invalid option tag {t}"))),
        }
    }

    fn duration(&mut self) -> Result<Duration, PersistError> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(PersistError::Corrupt(format!(
                "invalid subsecond nanos {nanos}"
            )));
        }
        Ok(Duration::new(secs, nanos))
    }
}

// --------------------------------------------------------------------------
// Domain codec
// --------------------------------------------------------------------------

/// Stable wire codes for [`Opcode`]; append-only — never renumber.
const OPCODES: [Opcode; 19] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Xor,
    Opcode::Logic,
    Opcode::Shift,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Popcnt,
    Opcode::FpAdd,
    Opcode::FpMul,
    Opcode::FpDiv,
    Opcode::VecInt,
    Opcode::VecFp,
    Opcode::Load,
    Opcode::Store,
    Opcode::Branch,
    Opcode::Jump,
    Opcode::IndirectBranch,
    Opcode::Nop,
];

fn enc_opcode(enc: &mut Enc, op: Opcode) {
    let code = OPCODES
        .iter()
        .position(|&o| o == op)
        .expect("every opcode has a wire code");
    enc.u8(code as u8);
}

fn dec_opcode(dec: &mut Dec) -> Result<Opcode, PersistError> {
    let code = dec.u8()?;
    OPCODES
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| PersistError::Corrupt(format!("invalid opcode code {code}")))
}

fn enc_arch_set(enc: &mut Enc, set: ArchSet) {
    enc.u8(match set {
        ArchSet::I => 0,
        ArchSet::II => 1,
        ArchSet::III => 2,
        ArchSet::IV => 3,
    });
}

fn dec_arch_set(dec: &mut Dec) -> Result<ArchSet, PersistError> {
    match dec.u8()? {
        0 => Ok(ArchSet::I),
        1 => Ok(ArchSet::II),
        2 => Ok(ArchSet::III),
        3 => Ok(ArchSet::IV),
        t => Err(PersistError::Corrupt(format!("invalid arch set tag {t}"))),
    }
}

/// Bug specs are tagged with their paper type id (1–14), then their
/// parameters in declaration order.
fn enc_bug(enc: &mut Enc, bug: &BugSpec) {
    enc.u8(bug.type_id() as u8);
    match *bug {
        BugSpec::SerializeOpcode { x }
        | BugSpec::IssueOnlyIfOldest { x }
        | BugSpec::IfOldestIssueOnlyX { x } => enc_opcode(enc, x),
        BugSpec::DelayIfDependsOn { x, y, t } => {
            enc_opcode(enc, x);
            enc_opcode(enc, y);
            enc.u32(t);
        }
        BugSpec::IqBelowDelay { n, t }
        | BugSpec::RobBelowDelay { n, t }
        | BugSpec::StoresToLineDelay { n, t } => {
            enc.u32(n);
            enc.u32(t);
        }
        BugSpec::MispredictExtraDelay { t } | BugSpec::L2ExtraLatency { t } => enc.u32(t),
        BugSpec::WritesToRegDelay { n, t, periodic } => {
            enc.u32(n);
            enc.u32(t);
            enc.bool(periodic);
        }
        BugSpec::FewerPhysRegs { n } => enc.u32(n),
        BugSpec::LongBranchDelay { bytes, t } => {
            enc.u8(bytes);
            enc.u32(t);
        }
        BugSpec::OpcodeUsesRegDelay { x, r, t } => {
            enc_opcode(enc, x);
            enc.u8(r);
            enc.u32(t);
        }
        BugSpec::BtbIndexMask { lost_bits } => enc.u32(lost_bits),
    }
}

fn dec_bug(dec: &mut Dec) -> Result<BugSpec, PersistError> {
    Ok(match dec.u8()? {
        1 => BugSpec::SerializeOpcode {
            x: dec_opcode(dec)?,
        },
        2 => BugSpec::IssueOnlyIfOldest {
            x: dec_opcode(dec)?,
        },
        3 => BugSpec::IfOldestIssueOnlyX {
            x: dec_opcode(dec)?,
        },
        4 => BugSpec::DelayIfDependsOn {
            x: dec_opcode(dec)?,
            y: dec_opcode(dec)?,
            t: dec.u32()?,
        },
        5 => BugSpec::IqBelowDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        6 => BugSpec::RobBelowDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        7 => BugSpec::MispredictExtraDelay { t: dec.u32()? },
        8 => BugSpec::StoresToLineDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        9 => BugSpec::WritesToRegDelay {
            n: dec.u32()?,
            t: dec.u32()?,
            periodic: dec.bool()?,
        },
        10 => BugSpec::L2ExtraLatency { t: dec.u32()? },
        11 => BugSpec::FewerPhysRegs { n: dec.u32()? },
        12 => BugSpec::LongBranchDelay {
            bytes: dec.u8()?,
            t: dec.u32()?,
        },
        13 => BugSpec::OpcodeUsesRegDelay {
            x: dec_opcode(dec)?,
            r: dec.u8()?,
            t: dec.u32()?,
        },
        14 => BugSpec::BtbIndexMask {
            lost_bits: dec.u32()?,
        },
        t => return Err(PersistError::Corrupt(format!("invalid bug type tag {t}"))),
    })
}

fn enc_collection(enc: &mut Enc, col: &Collection) {
    enc.usize(col.keys.len());
    for key in &col.keys {
        enc.str(&key.arch);
        enc_arch_set(enc, key.set);
        enc.opt_usize(key.bug);
    }
    enc.usize(col.probes.len());
    for p in &col.probes {
        enc.str(&p.id);
        enc.str(&p.benchmark);
        enc.f64(p.weight);
    }
    enc.usize(col.engines.len());
    for e in &col.engines {
        enc.str(&e.name);
        enc.duration(e.train_time);
        enc.duration(e.infer_time);
        enc.usize(e.deltas.len());
        for row in &e.deltas {
            enc.f64s(row);
        }
    }
    enc.usize(col.overall_ipc.len());
    for row in &col.overall_ipc {
        enc.f64s(row);
    }
    enc.usize(col.agg_features.len());
    for probe_rows in &col.agg_features {
        enc.usize(probe_rows.len());
        for row in probe_rows {
            enc.f64s(row);
        }
    }
    enc.usize(col.captures.len());
    for c in &col.captures {
        enc.str(&c.probe_id);
        enc.str(&c.arch);
        enc.opt_usize(c.bug);
        enc.str(&c.engine);
        enc.f64s(&c.simulated);
        enc.f64s(&c.inferred);
    }
    enc.usize(col.catalog.len());
    for bug in col.catalog.variants() {
        enc_bug(enc, bug);
    }
}

fn dec_collection(dec: &mut Dec) -> Result<Collection, PersistError> {
    let n_keys = dec.len()?;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        keys.push(RunKey {
            arch: dec.str()?,
            set: dec_arch_set(dec)?,
            bug: dec.opt_usize()?,
        });
    }
    let n_probes = dec.len()?;
    let mut probes = Vec::with_capacity(n_probes);
    for _ in 0..n_probes {
        probes.push(ProbeMeta {
            id: dec.str()?,
            benchmark: dec.str()?,
            weight: dec.f64()?,
        });
    }
    let n_engines = dec.len()?;
    let mut engines = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        let name = dec.str()?;
        let train_time = dec.duration()?;
        let infer_time = dec.duration()?;
        let n_rows = dec.len()?;
        let mut deltas = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            deltas.push(dec.f64s()?);
        }
        engines.push(EngineResult {
            name,
            deltas,
            train_time,
            infer_time,
        });
    }
    let n_overall = dec.len()?;
    let mut overall_ipc = Vec::with_capacity(n_overall);
    for _ in 0..n_overall {
        overall_ipc.push(dec.f64s()?);
    }
    let n_agg = dec.len()?;
    let mut agg_features = Vec::with_capacity(n_agg);
    for _ in 0..n_agg {
        let n_rows = dec.len()?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            rows.push(dec.f64s()?);
        }
        agg_features.push(rows);
    }
    let n_caps = dec.len()?;
    let mut captures = Vec::with_capacity(n_caps);
    for _ in 0..n_caps {
        captures.push(CapturedSeries {
            probe_id: dec.str()?,
            arch: dec.str()?,
            bug: dec.opt_usize()?,
            engine: dec.str()?,
            simulated: dec.f64s()?,
            inferred: dec.f64s()?,
        });
    }
    let n_bugs = dec.len()?;
    if n_bugs == 0 {
        return Err(PersistError::Corrupt("empty bug catalogue".into()));
    }
    let mut variants = Vec::with_capacity(n_bugs);
    for _ in 0..n_bugs {
        variants.push(dec_bug(dec)?);
    }
    Ok(Collection {
        keys,
        probes,
        engines,
        overall_ipc,
        agg_features,
        captures,
        catalog: BugCatalog::new(variants),
    })
}

// --------------------------------------------------------------------------
// File format
// --------------------------------------------------------------------------

/// Serialises a collection under a config fingerprint.
///
/// Layout: `MAGIC | version u32 | fingerprint u64 | payload | fnv64` where
/// the trailing checksum covers everything before it.
pub fn encode_collection(col: &Collection, fingerprint: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.buf.extend_from_slice(&MAGIC);
    enc.u32(FORMAT_VERSION);
    enc.u64(fingerprint);
    enc_collection(&mut enc, col);
    let checksum = fnv1a(&enc.buf);
    enc.u64(checksum);
    enc.buf
}

/// Decodes a serialised collection, validating magic, version, checksum
/// and the config fingerprint (in that order).
pub fn decode_collection(bytes: &[u8], expected: u64) -> Result<Collection, PersistError> {
    // Header (magic + version + fingerprint) and trailing checksum.
    const HEADER: usize = 4 + 4 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(PersistError::Corrupt(format!(
            "{} bytes is too short for a collection file",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut dec = Dec::new(body);
    if dec.take(4)? != MAGIC {
        return Err(PersistError::Corrupt("bad magic".into()));
    }
    let version = dec.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let stored_checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_checksum {
        return Err(PersistError::Corrupt("checksum mismatch".into()));
    }
    let fingerprint = dec.u64()?;
    if fingerprint != expected {
        return Err(PersistError::Fingerprint {
            found: fingerprint,
            expected,
        });
    }
    let col = dec_collection(&mut dec)?;
    if dec.pos != body.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after payload",
            body.len() - dec.pos
        )));
    }
    Ok(col)
}

/// Saves a collection to `path` (atomically: write to a sibling temp file,
/// then rename), tagged with `fingerprint`.
pub fn save_collection(
    path: &Path,
    col: &Collection,
    fingerprint: u64,
) -> Result<(), PersistError> {
    // Unique per process and call: concurrent savers of the same path must
    // not clobber each other's in-flight temp file — last rename wins with
    // a complete file.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let bytes = encode_collection(col, fingerprint);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("{FILE_EXTENSION}.{}-{seq}.tmp", std::process::id()));
    fs::write(&tmp, &bytes)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Loads a collection from `path`, rejecting version, checksum and
/// fingerprint mismatches.
pub fn load_collection(path: &Path, fingerprint: u64) -> Result<Collection, PersistError> {
    let bytes = fs::read(path)?;
    decode_collection(&bytes, fingerprint)
}

/// How [`collect_or_load`] obtained its collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The cache file existed and was replayed without simulating.
    Replayed,
    /// The collection was freshly simulated and saved to the cache file.
    Collected,
}

/// Front door for cached core collections: replays `path` when it exists
/// (validating its fingerprint against `config` — a stale file is an
/// error, never silently re-collected) and otherwise runs
/// [`collect`] and saves the result.
pub fn collect_or_load(
    path: &Path,
    config: &CollectionConfig,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = config_fingerprint(config);
    // Attempt the load directly rather than probing `exists()` first: a
    // file pruned between probe and read must fall back to collecting,
    // not surface as an i/o error.
    match load_collection(path, fingerprint) {
        Ok(col) => return Ok((col, CacheStatus::Replayed)),
        Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let col = collect(config);
    save_collection(path, &col, fingerprint)?;
    Ok((col, CacheStatus::Collected))
}

/// [`collect_or_load`] for the memory experiment.
pub fn collect_memory_or_load(
    path: &Path,
    config: &MemCollectionConfig,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = mem_config_fingerprint(config);
    match load_collection(path, fingerprint) {
        Ok(col) => return Ok((col, CacheStatus::Replayed)),
        Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let col = collect_memory(config);
    save_collection(path, &col, fingerprint)?;
    Ok((col, CacheStatus::Collected))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> Collection {
        Collection {
            keys: vec![
                RunKey {
                    arch: "Skylake".into(),
                    set: ArchSet::IV,
                    bug: None,
                },
                RunKey {
                    arch: "Skylake".into(),
                    set: ArchSet::IV,
                    bug: Some(1),
                },
            ],
            probes: vec![ProbeMeta {
                id: "458.sjeng#0".into(),
                benchmark: "458.sjeng".into(),
                weight: 0.625,
            }],
            engines: vec![EngineResult {
                name: "GBT-250".into(),
                deltas: vec![vec![0.25, 17.5]],
                train_time: Duration::new(3, 250_000_000),
                infer_time: Duration::from_millis(42),
            }],
            overall_ipc: vec![vec![1.75, 1.5]],
            agg_features: vec![vec![vec![0.5, -1.0], vec![0.25, f64::MIN_POSITIVE]]],
            captures: vec![CapturedSeries {
                probe_id: "458.sjeng#0".into(),
                arch: "Skylake".into(),
                bug: Some(1),
                engine: "GBT-250".into(),
                simulated: vec![1.0, 2.0],
                inferred: vec![1.0, 1.75],
            }],
            catalog: BugCatalog::core_small(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let col = sample_collection();
        let bytes = encode_collection(&col, 7);
        let back = decode_collection(&bytes, 7).expect("round trip");
        assert_eq!(back, col);
    }

    #[test]
    fn encoding_is_deterministic() {
        let col = sample_collection();
        assert_eq!(encode_collection(&col, 9), encode_collection(&col, 9));
    }

    #[test]
    fn full_catalogue_round_trips() {
        let mut col = sample_collection();
        col.catalog = BugCatalog::core_full();
        let bytes = encode_collection(&col, 0);
        assert_eq!(decode_collection(&bytes, 0).unwrap().catalog, col.catalog);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let bytes = encode_collection(&sample_collection(), 7);
        match decode_collection(&bytes, 8) {
            Err(PersistError::Fingerprint {
                found: 7,
                expected: 8,
            }) => {}
            other => panic!("expected fingerprint error, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode_collection(&sample_collection(), 7);
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal the checksum so only the version differs.
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        match decode_collection(&bytes, 7) {
            Err(PersistError::Version { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let col = sample_collection();
        let bytes = encode_collection(&col, 7);
        // Flipping any single byte must fail decoding (magic, version,
        // checksum or fingerprint mismatch — never a silent wrong read).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_collection(&bad, 7).is_err(), "byte {i} undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_collection(&sample_collection(), 7);
        for n in (0..bytes.len()).step_by(9) {
            assert!(decode_collection(&bytes[..n], 7).is_err(), "len {n}");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode_collection(&sample_collection(), 7);
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(decode_collection(&bytes, 7).is_err());
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_shape() {
        let base = CollectionConfig::new(
            vec![crate::stage1::EngineSpec::gbt250()],
            BugCatalog::core_small(),
        );
        let mut other_threads = base.clone();
        other_threads.threads = base.threads + 3;
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&other_threads)
        );

        let mut other_window = base.clone();
        other_window.window = base.window + 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_window));

        let mut other_probes = base.clone();
        other_probes.max_probes = Some(3);
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_probes));
    }

    #[test]
    fn cache_file_name_embeds_fingerprint() {
        assert_eq!(
            cache_file_name("fig08", 0xdead_beef),
            "fig08-00000000deadbeef.pbcol"
        );
    }
}

//! Collection persistence: a versioned, deterministic binary codec for
//! [`Collection`] plus evaluation-only replay.
//!
//! The expensive phase of every experiment is *collection* (simulate each
//! probe on each design with each bug, train stage-1 models); the cheap
//! phase is *evaluation*. The paper reuses one collected corpus across
//! many models and thresholds (Figs. 8–13, Tables IV–VII), so this module
//! lets a collection be saved once and replayed by any number of
//! evaluation-only runs without touching the simulator.
//!
//! The codec is hand-rolled (the build environment is offline — no serde):
//! little-endian fixed-width integers, `f64::to_bits` for floats, and
//! length-prefixed sequences, which makes encoding byte-deterministic for
//! a given collection. The byte-level layout is specified in
//! `docs/FORMAT.md`; every file carries
//!
//! * a magic tag and a [`FORMAT_VERSION`] — files from an older codec are
//!   rejected with [`PersistError::Version`], never reinterpreted;
//! * the [`CORPUS_REVISION`] and [`ExperimentKind`] of the producing pass,
//!   so cache tooling (`pbcol`) can triage files without recomputing
//!   fingerprints;
//! * the **config fingerprint** of the producing collection pass — loading
//!   under a different [`CollectionConfig`] fails with
//!   [`PersistError::Fingerprint`], so a stale cache is rejected rather
//!   than silently reused;
//! * a [`ShardManifest`] — which contiguous probe range of the full pass
//!   this file covers. Full single-process files cover `0..total` in one
//!   shard; a sharded pass (`experiment::collect_sharded` on `count`
//!   processes) writes `count` shard files that [`merge_collections`]
//!   reassembles into the single-process collection after validating
//!   disjoint, complete coverage and matching identity fields;
//! * a trailing FNV-1a checksum over the whole header + payload —
//!   truncated or corrupted files fail with [`PersistError::Corrupt`].
//!
//! [`collect_or_load`] / [`collect_memory_or_load`] are the front doors:
//! they replay a saved collection when the cache file exists, assemble it
//! from a complete set of shard files in the same directory when one is
//! not, and collect (then save) otherwise. Shard workers use
//! [`collect_shard_or_load`] / [`collect_memory_shard_or_load`]. Pair
//! them with [`cache_file_name`] / [`shard_file_name`], which embed the
//! experiment kind and the fingerprint in the file name so distinct
//! configurations — and the core and memory experiments sharing one cache
//! directory — can never collide on one path.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::Opcode;

use crate::bugs::BugCatalog;
use crate::experiment::{
    collect, CapturedSeries, Collection, CollectionConfig, EngineResult, ProbeMeta, RunKey,
};
use crate::memory::{collect_memory, MemCollectionConfig};

/// Version of the on-disk format. Bump on any layout change; readers
/// reject every other version.
///
/// * v1 — magic, version, fingerprint, payload, checksum.
/// * v2 — adds the corpus revision, the experiment kind and the shard
///   manifest to the header (see `docs/FORMAT.md`).
pub const FORMAT_VERSION: u32 = 2;

/// Version of the *corpus semantics*: what the collection pipeline would
/// produce for a given configuration. Folded into every config
/// fingerprint, so bumping it invalidates caches without changing the
/// codec. Bump whenever a change makes collection output numerically
/// different under an unchanged config (simulator timing fixes, counter
/// or feature semantics, engine training/inference numerics, Eq.-(1)
/// changes) — otherwise an old cache would silently replay data the
/// current code no longer produces.
pub const CORPUS_REVISION: u32 = 1;

/// Magic tag opening every serialised collection.
const MAGIC: [u8; 4] = *b"PBCL";

/// Canonical file extension of serialised collections.
pub const FILE_EXTENSION: &str = "pbcol";

/// Which experiment pipeline produced a collection. Part of the file
/// header and of every cache file name, so the core and memory
/// experiments can share one `PERFBUG_CACHE_DIR` without colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// The out-of-order core experiment (`experiment::collect`).
    Core,
    /// The cache-hierarchy experiment (`memory::collect_memory`).
    Memory,
}

impl ExperimentKind {
    /// The name segment embedded in cache file names.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExperimentKind::Core => "core",
            ExperimentKind::Memory => "mem",
        }
    }

    /// Parses a file-name segment produced by [`ExperimentKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "core" => Some(ExperimentKind::Core),
            "mem" => Some(ExperimentKind::Memory),
            _ => None,
        }
    }

    fn wire(&self) -> u8 {
        match self {
            ExperimentKind::Core => 0,
            ExperimentKind::Memory => 1,
        }
    }

    fn from_wire(tag: u8) -> Result<Self, PersistError> {
        match tag {
            0 => Ok(ExperimentKind::Core),
            1 => Ok(ExperimentKind::Memory),
            t => Err(PersistError::Corrupt(format!(
                "invalid experiment kind tag {t}"
            ))),
        }
    }
}

impl fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which slice of the full collection pass a file covers.
///
/// A full single-process file is shard `0 of 1` covering
/// `0..total_probes`; a sharded pass writes one file per shard, each
/// covering its [`crate::exec::ShardSpec::probe_range`]. The run-key axis
/// is always complete — only the probe axis is sliced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard index, `0 <= index < count`.
    pub index: u32,
    /// Total shard count of the producing pass.
    pub count: u32,
    /// First probe (absolute index of the full pass) this file covers.
    pub probe_start: u64,
    /// One past the last probe this file covers.
    pub probe_end: u64,
    /// Total probe count of the full pass.
    pub total_probes: u64,
}

impl ShardManifest {
    /// The manifest of an unsharded file covering all `total` probes.
    pub fn full(total: usize) -> Self {
        ShardManifest {
            index: 0,
            count: 1,
            probe_start: 0,
            probe_end: total as u64,
            total_probes: total as u64,
        }
    }

    /// Builds the manifest of one shard of a `total`-probe pass.
    ///
    /// # Panics
    ///
    /// Panics if the spec's index is out of range (via
    /// [`crate::exec::ShardSpec::new`] semantics).
    pub fn of(shard: crate::exec::ShardSpec, total: usize) -> Self {
        let range = shard.probe_range(total);
        ShardManifest {
            index: shard.index as u32,
            count: shard.count as u32,
            probe_start: range.start as u64,
            probe_end: range.end as u64,
            total_probes: total as u64,
        }
    }

    /// Whether this file alone covers the whole pass.
    pub fn is_full(&self) -> bool {
        self.count == 1 && self.probe_start == 0 && self.probe_end == self.total_probes
    }

    /// Number of probes the file covers.
    pub fn probes(&self) -> u64 {
        self.probe_end - self.probe_start
    }

    /// Internal consistency: index in range, ordered bounds within the
    /// total, and a full manifest whenever the count is 1.
    fn validate(&self) -> Result<(), PersistError> {
        if self.count == 0
            || self.index >= self.count
            || self.probe_start > self.probe_end
            || self.probe_end > self.total_probes
            || (self.count == 1 && !self.is_full())
        {
            return Err(PersistError::Corrupt(format!(
                "invalid shard manifest: shard {} of {}, probes {}..{} of {}",
                self.index, self.count, self.probe_start, self.probe_end, self.total_probes
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ShardManifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}/{} (probes {}..{} of {})",
            self.index, self.count, self.probe_start, self.probe_end, self.total_probes
        )
    }
}

/// Everything the fixed-size file header records (see `docs/FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Experiment kind of the producing pass.
    pub kind: ExperimentKind,
    /// [`CORPUS_REVISION`] the file was written under.
    pub corpus_revision: u32,
    /// Config fingerprint of the producing pass.
    pub fingerprint: u64,
    /// Probe coverage of this file.
    pub manifest: ShardManifest,
}

// --------------------------------------------------------------------------
// Errors
// --------------------------------------------------------------------------

/// Why a collection could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The bytes are not a well-formed collection file (bad magic, failed
    /// checksum, truncation, or an invalid enum tag).
    Corrupt(String),
    /// The file was written by a different codec version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The file was collected under a different configuration.
    Fingerprint {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the requesting configuration.
        expected: u64,
    },
    /// A shard-coverage violation: a full load hit a shard file, or a
    /// merge found overlapping, missing or mismatched shards. The message
    /// names the offending shards and probe ranges.
    Shard(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt collection file: {why}"),
            PersistError::Version { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            PersistError::Fingerprint { found, expected } => write!(
                f,
                "stale cache: collected under config {found:016x}, requested {expected:016x}"
            ),
            PersistError::Shard(why) => write!(f, "shard coverage error: {why}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

// --------------------------------------------------------------------------
// Fingerprints
// --------------------------------------------------------------------------

/// 64-bit FNV-1a over a byte slice (also the file checksum primitive).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of everything in a [`CollectionConfig`] that shapes the
/// collected data. `threads` is deliberately excluded: the engine is
/// deterministic for any worker count, so parallelism is an execution
/// detail, not part of the corpus identity.
pub fn config_fingerprint(config: &CollectionConfig) -> u64 {
    let canon = format!(
        "core/v{FORMAT_VERSION}/c{CORPUS_REVISION}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.scale,
        config.engines,
        config.counter_mode,
        config.window,
        config.arch_features,
        config.catalog.variants(),
        // The whole benchmark specs, not just their names: k, seed and
        // phase structure all shape the probe set and traces.
        config.benchmarks,
        config.max_probes,
        config.partition,
        config.presumed_bugfree_bug,
        config.captures,
    );
    fnv1a(canon.as_bytes())
}

/// Fingerprint of a [`MemCollectionConfig`], excluding `threads` for the
/// same reason as [`config_fingerprint`].
pub fn mem_config_fingerprint(config: &MemCollectionConfig) -> u64 {
    let canon = format!(
        "mem/v{FORMAT_VERSION}/c{CORPUS_REVISION}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.workload,
        config.step_cycles,
        config.engines,
        config.metric,
        config.counter_mode,
        config.catalog.variants(),
        config.max_probes,
    );
    fnv1a(canon.as_bytes())
}

/// The canonical cache file name for a full fingerprinted collection:
/// `<prefix>-<kind>-<fingerprint hex>.pbcol`. Because the experiment kind
/// and the fingerprint are part of the name, a configuration change maps
/// to a fresh file instead of a stale-cache error, and core and memory
/// experiments sharing a prefix and a cache directory never collide.
pub fn cache_file_name(prefix: &str, kind: ExperimentKind, fingerprint: u64) -> String {
    format!("{prefix}-{kind}-{fingerprint:016x}.{FILE_EXTENSION}")
}

/// The canonical file name of one shard of a sharded collection pass:
/// `<prefix>-<kind>-<fingerprint hex>-s<index>of<count>.pbcol`.
pub fn shard_file_name(
    prefix: &str,
    kind: ExperimentKind,
    fingerprint: u64,
    index: usize,
    count: usize,
) -> String {
    format!("{prefix}-{kind}-{fingerprint:016x}-s{index:04}of{count:04}.{FILE_EXTENSION}")
}

/// Whether `name` follows the in-flight temp-file grammar of
/// [`save_collection`]'s atomic write path
/// (`<target>.pbcol.<pid>-<seq>.tmp`). Such a file is invisible to every
/// reader (loads, shard assembly, `pbcol verify` all select on the
/// `.pbcol` extension); one left behind by a killed worker is garbage
/// that `pbcol prune` evicts.
pub fn is_temp_file_name(name: &str) -> bool {
    name.ends_with(".tmp") && name.contains(&format!(".{FILE_EXTENSION}."))
}

/// A cache file name decomposed by [`parse_cache_file_name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedCacheName {
    /// The experiment prefix (e.g. `fig08`); may itself contain dashes.
    pub prefix: String,
    /// Experiment kind segment.
    pub kind: ExperimentKind,
    /// Fingerprint embedded in the name.
    pub fingerprint: u64,
    /// `Some((index, count))` for shard files, `None` for full files.
    pub shard: Option<(u32, u32)>,
}

/// Parses a file name produced by [`cache_file_name`] or
/// [`shard_file_name`]; returns `None` for anything else (including
/// pre-kind v1-era names), so cache tooling can tell this crate's files
/// from stray `.pbcol` files.
pub fn parse_cache_file_name(name: &str) -> Option<ParsedCacheName> {
    let stem = name.strip_suffix(&format!(".{FILE_EXTENSION}"))?;
    // Grammar (right to left): [-sNNNNofNNNN] then -<16 hex> then -<kind>,
    // leaving the prefix, which may itself contain dashes.
    let (stem, shard) = match stem.rfind("-s") {
        Some(pos) => {
            let tail = &stem[pos + 2..];
            match tail.split_once("of") {
                Some((i, c)) if !i.is_empty() && !c.is_empty() => {
                    match (i.parse::<u32>(), c.parse::<u32>()) {
                        (Ok(i), Ok(c)) => (&stem[..pos], Some((i, c))),
                        _ => (stem, None),
                    }
                }
                _ => (stem, None),
            }
        }
        None => (stem, None),
    };
    let (stem, fp_hex) = stem.rsplit_once('-')?;
    if fp_hex.len() != 16 {
        return None;
    }
    let fingerprint = u64::from_str_radix(fp_hex, 16).ok()?;
    let (prefix, kind_str) = stem.rsplit_once('-')?;
    let kind = ExperimentKind::parse(kind_str)?;
    if prefix.is_empty() {
        return None;
    }
    Some(ParsedCacheName {
        prefix: prefix.to_string(),
        kind,
        fingerprint,
        shard,
    })
}

// --------------------------------------------------------------------------
// Primitive codec
// --------------------------------------------------------------------------

/// Append-only encoder over a growable byte buffer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(i) => {
                self.u8(1);
                self.usize(i);
            }
        }
    }

    fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }
}

/// Cursor-based decoder; every read is bounds-checked so truncated input
/// surfaces as [`PersistError::Corrupt`] instead of a panic.
struct Dec<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Dec<'b> {
    fn new(bytes: &'b [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| PersistError::Corrupt(format!("truncated at byte {}", self.pos)))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("length {v} overflows")))
    }

    /// A length prefix that is about to drive an allocation; bounded by
    /// the remaining payload so corrupt lengths cannot exhaust memory.
    fn len(&mut self) -> Result<usize, PersistError> {
        let v = self.usize()?;
        if v > self.bytes.len().saturating_sub(self.pos) {
            return Err(PersistError::Corrupt(format!(
                "length {v} exceeds remaining {} bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(PersistError::Corrupt(format!("invalid bool tag {t}"))),
        }
    }

    fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid utf-8 string".into()))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn opt_usize(&mut self) -> Result<Option<usize>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            t => Err(PersistError::Corrupt(format!("invalid option tag {t}"))),
        }
    }

    fn duration(&mut self) -> Result<Duration, PersistError> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(PersistError::Corrupt(format!(
                "invalid subsecond nanos {nanos}"
            )));
        }
        Ok(Duration::new(secs, nanos))
    }
}

// --------------------------------------------------------------------------
// Domain codec
// --------------------------------------------------------------------------

/// Stable wire codes for [`Opcode`]; append-only — never renumber.
const OPCODES: [Opcode; 19] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Xor,
    Opcode::Logic,
    Opcode::Shift,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Popcnt,
    Opcode::FpAdd,
    Opcode::FpMul,
    Opcode::FpDiv,
    Opcode::VecInt,
    Opcode::VecFp,
    Opcode::Load,
    Opcode::Store,
    Opcode::Branch,
    Opcode::Jump,
    Opcode::IndirectBranch,
    Opcode::Nop,
];

fn enc_opcode(enc: &mut Enc, op: Opcode) {
    let code = OPCODES
        .iter()
        .position(|&o| o == op)
        .expect("every opcode has a wire code");
    enc.u8(code as u8);
}

fn dec_opcode(dec: &mut Dec) -> Result<Opcode, PersistError> {
    let code = dec.u8()?;
    OPCODES
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| PersistError::Corrupt(format!("invalid opcode code {code}")))
}

fn enc_arch_set(enc: &mut Enc, set: ArchSet) {
    enc.u8(match set {
        ArchSet::I => 0,
        ArchSet::II => 1,
        ArchSet::III => 2,
        ArchSet::IV => 3,
    });
}

fn dec_arch_set(dec: &mut Dec) -> Result<ArchSet, PersistError> {
    match dec.u8()? {
        0 => Ok(ArchSet::I),
        1 => Ok(ArchSet::II),
        2 => Ok(ArchSet::III),
        3 => Ok(ArchSet::IV),
        t => Err(PersistError::Corrupt(format!("invalid arch set tag {t}"))),
    }
}

/// Bug specs are tagged with their paper type id (1–14), then their
/// parameters in declaration order.
fn enc_bug(enc: &mut Enc, bug: &BugSpec) {
    enc.u8(bug.type_id() as u8);
    match *bug {
        BugSpec::SerializeOpcode { x }
        | BugSpec::IssueOnlyIfOldest { x }
        | BugSpec::IfOldestIssueOnlyX { x } => enc_opcode(enc, x),
        BugSpec::DelayIfDependsOn { x, y, t } => {
            enc_opcode(enc, x);
            enc_opcode(enc, y);
            enc.u32(t);
        }
        BugSpec::IqBelowDelay { n, t }
        | BugSpec::RobBelowDelay { n, t }
        | BugSpec::StoresToLineDelay { n, t } => {
            enc.u32(n);
            enc.u32(t);
        }
        BugSpec::MispredictExtraDelay { t } | BugSpec::L2ExtraLatency { t } => enc.u32(t),
        BugSpec::WritesToRegDelay { n, t, periodic } => {
            enc.u32(n);
            enc.u32(t);
            enc.bool(periodic);
        }
        BugSpec::FewerPhysRegs { n } => enc.u32(n),
        BugSpec::LongBranchDelay { bytes, t } => {
            enc.u8(bytes);
            enc.u32(t);
        }
        BugSpec::OpcodeUsesRegDelay { x, r, t } => {
            enc_opcode(enc, x);
            enc.u8(r);
            enc.u32(t);
        }
        BugSpec::BtbIndexMask { lost_bits } => enc.u32(lost_bits),
    }
}

fn dec_bug(dec: &mut Dec) -> Result<BugSpec, PersistError> {
    Ok(match dec.u8()? {
        1 => BugSpec::SerializeOpcode {
            x: dec_opcode(dec)?,
        },
        2 => BugSpec::IssueOnlyIfOldest {
            x: dec_opcode(dec)?,
        },
        3 => BugSpec::IfOldestIssueOnlyX {
            x: dec_opcode(dec)?,
        },
        4 => BugSpec::DelayIfDependsOn {
            x: dec_opcode(dec)?,
            y: dec_opcode(dec)?,
            t: dec.u32()?,
        },
        5 => BugSpec::IqBelowDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        6 => BugSpec::RobBelowDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        7 => BugSpec::MispredictExtraDelay { t: dec.u32()? },
        8 => BugSpec::StoresToLineDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        9 => BugSpec::WritesToRegDelay {
            n: dec.u32()?,
            t: dec.u32()?,
            periodic: dec.bool()?,
        },
        10 => BugSpec::L2ExtraLatency { t: dec.u32()? },
        11 => BugSpec::FewerPhysRegs { n: dec.u32()? },
        12 => BugSpec::LongBranchDelay {
            bytes: dec.u8()?,
            t: dec.u32()?,
        },
        13 => BugSpec::OpcodeUsesRegDelay {
            x: dec_opcode(dec)?,
            r: dec.u8()?,
            t: dec.u32()?,
        },
        14 => BugSpec::BtbIndexMask {
            lost_bits: dec.u32()?,
        },
        t => return Err(PersistError::Corrupt(format!("invalid bug type tag {t}"))),
    })
}

fn enc_collection(enc: &mut Enc, col: &Collection) {
    enc.usize(col.keys.len());
    for key in &col.keys {
        enc.str(&key.arch);
        enc_arch_set(enc, key.set);
        enc.opt_usize(key.bug);
    }
    enc.usize(col.probes.len());
    for p in &col.probes {
        enc.str(&p.id);
        enc.str(&p.benchmark);
        enc.f64(p.weight);
    }
    enc.usize(col.engines.len());
    for e in &col.engines {
        enc.str(&e.name);
        enc.duration(e.train_time);
        enc.duration(e.infer_time);
        enc.usize(e.deltas.len());
        for row in &e.deltas {
            enc.f64s(row);
        }
    }
    enc.usize(col.overall_ipc.len());
    for row in &col.overall_ipc {
        enc.f64s(row);
    }
    enc.usize(col.agg_features.len());
    for probe_rows in &col.agg_features {
        enc.usize(probe_rows.len());
        for row in probe_rows {
            enc.f64s(row);
        }
    }
    enc.usize(col.captures.len());
    for c in &col.captures {
        enc.str(&c.probe_id);
        enc.str(&c.arch);
        enc.opt_usize(c.bug);
        enc.str(&c.engine);
        enc.f64s(&c.simulated);
        enc.f64s(&c.inferred);
    }
    enc.usize(col.catalog.len());
    for bug in col.catalog.variants() {
        enc_bug(enc, bug);
    }
}

fn dec_collection(dec: &mut Dec) -> Result<Collection, PersistError> {
    let n_keys = dec.len()?;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        keys.push(RunKey {
            arch: dec.str()?,
            set: dec_arch_set(dec)?,
            bug: dec.opt_usize()?,
        });
    }
    let n_probes = dec.len()?;
    let mut probes = Vec::with_capacity(n_probes);
    for _ in 0..n_probes {
        probes.push(ProbeMeta {
            id: dec.str()?,
            benchmark: dec.str()?,
            weight: dec.f64()?,
        });
    }
    let n_engines = dec.len()?;
    let mut engines = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        let name = dec.str()?;
        let train_time = dec.duration()?;
        let infer_time = dec.duration()?;
        let n_rows = dec.len()?;
        let mut deltas = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            deltas.push(dec.f64s()?);
        }
        engines.push(EngineResult {
            name,
            deltas,
            train_time,
            infer_time,
        });
    }
    let n_overall = dec.len()?;
    let mut overall_ipc = Vec::with_capacity(n_overall);
    for _ in 0..n_overall {
        overall_ipc.push(dec.f64s()?);
    }
    let n_agg = dec.len()?;
    let mut agg_features = Vec::with_capacity(n_agg);
    for _ in 0..n_agg {
        let n_rows = dec.len()?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            rows.push(dec.f64s()?);
        }
        agg_features.push(rows);
    }
    let n_caps = dec.len()?;
    let mut captures = Vec::with_capacity(n_caps);
    for _ in 0..n_caps {
        captures.push(CapturedSeries {
            probe_id: dec.str()?,
            arch: dec.str()?,
            bug: dec.opt_usize()?,
            engine: dec.str()?,
            simulated: dec.f64s()?,
            inferred: dec.f64s()?,
        });
    }
    let n_bugs = dec.len()?;
    if n_bugs == 0 {
        return Err(PersistError::Corrupt("empty bug catalogue".into()));
    }
    let mut variants = Vec::with_capacity(n_bugs);
    for _ in 0..n_bugs {
        variants.push(dec_bug(dec)?);
    }
    Ok(Collection {
        keys,
        probes,
        engines,
        overall_ipc,
        agg_features,
        captures,
        catalog: BugCatalog::new(variants),
    })
}

// --------------------------------------------------------------------------
// File format
// --------------------------------------------------------------------------

/// Size of the fixed v2 header: magic, version, corpus revision, kind,
/// fingerprint and the five shard-manifest fields (see `docs/FORMAT.md`).
const HEADER_LEN: usize = 4 + 4 + 4 + 1 + 8 + (4 + 4 + 8 + 8 + 8);

fn enc_header(enc: &mut Enc, header: &FileHeader) {
    enc.buf.extend_from_slice(&MAGIC);
    enc.u32(FORMAT_VERSION);
    enc.u32(header.corpus_revision);
    enc.u8(header.kind.wire());
    enc.u64(header.fingerprint);
    enc.u32(header.manifest.index);
    enc.u32(header.manifest.count);
    enc.u64(header.manifest.probe_start);
    enc.u64(header.manifest.probe_end);
    enc.u64(header.manifest.total_probes);
}

fn dec_header(dec: &mut Dec) -> Result<FileHeader, PersistError> {
    if dec.take(4)? != MAGIC {
        return Err(PersistError::Corrupt("bad magic".into()));
    }
    let version = dec.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let corpus_revision = dec.u32()?;
    let kind = ExperimentKind::from_wire(dec.u8()?)?;
    let fingerprint = dec.u64()?;
    let manifest = ShardManifest {
        index: dec.u32()?,
        count: dec.u32()?,
        probe_start: dec.u64()?,
        probe_end: dec.u64()?,
        total_probes: dec.u64()?,
    };
    manifest.validate()?;
    Ok(FileHeader {
        kind,
        corpus_revision,
        fingerprint,
        manifest,
    })
}

/// Serialises a collection (full or one shard) under its header.
///
/// Layout: `MAGIC | version | corpus revision | kind | fingerprint |
/// shard manifest | payload | fnv64` where the trailing checksum covers
/// everything before it (see `docs/FORMAT.md`).
///
/// # Panics
///
/// Panics if the manifest's probe range does not match the collection's
/// probe count — the manifest describes the payload; an inconsistent pair
/// must never reach disk.
pub fn encode_collection_with(col: &Collection, header: &FileHeader) -> Vec<u8> {
    assert_eq!(
        header.manifest.probes(),
        col.probes.len() as u64,
        "shard manifest must cover exactly the collection's probes"
    );
    let mut enc = Enc::new();
    enc_header(&mut enc, header);
    enc_collection(&mut enc, col);
    let checksum = fnv1a(&enc.buf);
    enc.u64(checksum);
    enc.buf
}

/// Serialises a full (unsharded) core-experiment collection under a
/// config fingerprint; the general form is [`encode_collection_with`].
pub fn encode_collection(col: &Collection, fingerprint: u64) -> Vec<u8> {
    encode_collection_with(
        col,
        &FileHeader {
            kind: ExperimentKind::Core,
            corpus_revision: CORPUS_REVISION,
            fingerprint,
            manifest: ShardManifest::full(col.probes.len()),
        },
    )
}

/// Reads and validates only the fixed-size header of a serialised
/// collection: magic, version and manifest sanity — **not** the trailing
/// checksum, so corruption inside the payload goes undetected here. Cache
/// tooling uses this to triage files cheaply; anything that consumes the
/// payload must go through [`decode_collection_with`].
pub fn read_header(bytes: &[u8]) -> Result<FileHeader, PersistError> {
    dec_header(&mut Dec::new(bytes))
}

/// [`read_header`] plus the trailing-checksum validation: catches
/// truncation and corruption anywhere in the file without paying for a
/// payload decode. This is the orchestrator's per-shard success check —
/// full decode correctness is still enforced by the assembly step, which
/// goes through [`decode_collection_with`].
pub fn read_header_checked(bytes: &[u8]) -> Result<FileHeader, PersistError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(PersistError::Corrupt(format!(
            "{} bytes is too short for a collection file",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let header = dec_header(&mut Dec::new(body))?;
    let stored_checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_checksum {
        return Err(PersistError::Corrupt("checksum mismatch".into()));
    }
    Ok(header)
}

/// Decodes a serialised collection, validating magic, version, checksum,
/// then (when `expected` is given) the config fingerprint, then the
/// payload and its consistency with the shard manifest. Accepts both full
/// and shard files; the returned header says which this was.
pub fn decode_collection_with(
    bytes: &[u8],
    expected: Option<u64>,
) -> Result<(Collection, FileHeader), PersistError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(PersistError::Corrupt(format!(
            "{} bytes is too short for a collection file",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut dec = Dec::new(body);
    let header = dec_header(&mut dec)?;
    let stored_checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_checksum {
        return Err(PersistError::Corrupt("checksum mismatch".into()));
    }
    if let Some(expected) = expected {
        if header.fingerprint != expected {
            return Err(PersistError::Fingerprint {
                found: header.fingerprint,
                expected,
            });
        }
    }
    let col = dec_collection(&mut dec)?;
    if dec.pos != body.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after payload",
            body.len() - dec.pos
        )));
    }
    if header.manifest.probes() != col.probes.len() as u64 {
        return Err(PersistError::Corrupt(format!(
            "manifest covers {} probes but payload holds {}",
            header.manifest.probes(),
            col.probes.len()
        )));
    }
    Ok((col, header))
}

/// Decodes a *full* serialised collection, validating magic, version,
/// checksum and the config fingerprint (in that order). A shard file is
/// rejected with [`PersistError::Shard`] — partial corpora must go
/// through [`merge_collections`].
pub fn decode_collection(bytes: &[u8], expected: u64) -> Result<Collection, PersistError> {
    let (col, header) = decode_collection_with(bytes, Some(expected))?;
    if !header.manifest.is_full() {
        return Err(PersistError::Shard(format!(
            "expected a full collection, found {}",
            header.manifest
        )));
    }
    Ok(col)
}

// --------------------------------------------------------------------------
// Shard merging
// --------------------------------------------------------------------------

/// Reassembles a full [`Collection`] from decoded shard parts.
///
/// Validates that the parts share every identity field (fingerprint,
/// kind, corpus revision, shard count, total probe count, run keys,
/// engine roster and bug catalogue) and that their probe ranges are
/// disjoint and cover `0..total_probes` completely; any violation is a
/// [`PersistError::Shard`] naming the offending shards and ranges. Input
/// order is irrelevant — parts are sorted by probe range.
///
/// Because every probe's collection pipeline is deterministic and
/// independent, the merged collection is identical to the one a
/// single-process pass produces, except for the per-engine wall-clock
/// `train_time` / `infer_time`, which sum over shards instead of being
/// measured in one process. Returns the merged collection and the full
/// header it should be saved under.
pub fn merge_collections(
    mut parts: Vec<(Collection, FileHeader)>,
) -> Result<(Collection, FileHeader), PersistError> {
    if parts.is_empty() {
        return Err(PersistError::Shard("no shards to merge".into()));
    }
    parts.sort_by_key(|(_, h)| {
        (
            h.manifest.probe_start,
            h.manifest.probe_end,
            h.manifest.index,
        )
    });
    let first = parts[0].1;
    for (_, h) in &parts {
        if h.fingerprint != first.fingerprint {
            return Err(PersistError::Shard(format!(
                "fingerprint mismatch: shard {} was collected under {:016x}, shard {} under {:016x}",
                first.manifest.index, first.fingerprint, h.manifest.index, h.fingerprint
            )));
        }
        if h.kind != first.kind {
            return Err(PersistError::Shard(format!(
                "experiment kind mismatch: {} vs {}",
                first.kind, h.kind
            )));
        }
        if h.corpus_revision != first.corpus_revision {
            return Err(PersistError::Shard(format!(
                "corpus revision mismatch: {} vs {}",
                first.corpus_revision, h.corpus_revision
            )));
        }
        if h.manifest.count != first.manifest.count
            || h.manifest.total_probes != first.manifest.total_probes
        {
            return Err(PersistError::Shard(format!(
                "partition mismatch: {} vs {}",
                first.manifest, h.manifest
            )));
        }
    }
    let expected_shards = first.manifest.count as usize;
    if parts.len() != expected_shards {
        let have: Vec<u32> = parts.iter().map(|(_, h)| h.manifest.index).collect();
        return Err(PersistError::Shard(format!(
            "expected {expected_shards} shards, got {} (indices {have:?})",
            parts.len()
        )));
    }
    let mut cursor = 0u64;
    for (_, h) in &parts {
        let m = &h.manifest;
        match m.probe_start.cmp(&cursor) {
            std::cmp::Ordering::Less => {
                return Err(PersistError::Shard(format!(
                    "shard {} overlaps probes {}..{cursor}",
                    m.index, m.probe_start
                )));
            }
            std::cmp::Ordering::Greater => {
                return Err(PersistError::Shard(format!(
                    "probes {cursor}..{} missing (next is shard {})",
                    m.probe_start, m.index
                )));
            }
            std::cmp::Ordering::Equal => cursor = m.probe_end,
        }
    }
    if cursor != first.manifest.total_probes {
        return Err(PersistError::Shard(format!(
            "probes {cursor}..{} missing at the end of the partition",
            first.manifest.total_probes
        )));
    }

    let mut parts = parts.into_iter();
    let (mut merged, _) = parts.next().expect("at least one shard");
    for (col, h) in parts {
        if col.keys != merged.keys {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the run-key axis",
                h.manifest.index
            )));
        }
        if col.catalog != merged.catalog {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the bug catalogue",
                h.manifest.index
            )));
        }
        let names = |c: &Collection| c.engines.iter().map(|e| e.name.clone()).collect::<Vec<_>>();
        if names(&col) != names(&merged) {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the engine roster",
                h.manifest.index
            )));
        }
        merged.probes.extend(col.probes);
        merged.overall_ipc.extend(col.overall_ipc);
        merged.agg_features.extend(col.agg_features);
        merged.captures.extend(col.captures);
        for (into, from) in merged.engines.iter_mut().zip(col.engines) {
            into.deltas.extend(from.deltas);
            into.train_time += from.train_time;
            into.infer_time += from.infer_time;
        }
    }
    let header = FileHeader {
        manifest: ShardManifest::full(merged.probes.len()),
        ..first
    };
    Ok((merged, header))
}

// --------------------------------------------------------------------------
// Files and front doors
// --------------------------------------------------------------------------

/// Saves an encoded collection to `path` (atomically: write to a sibling
/// temp file, then rename).
fn save_bytes(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    // Unique per process and call: concurrent savers of the same path must
    // not clobber each other's in-flight temp file — last rename wins with
    // a complete file.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("{FILE_EXTENSION}.{}-{seq}.tmp", std::process::id()));
    fs::write(&tmp, bytes)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Saves a full core-experiment collection to `path` (atomically), tagged
/// with `fingerprint`; the general form is [`save_collection_with`].
pub fn save_collection(
    path: &Path,
    col: &Collection,
    fingerprint: u64,
) -> Result<(), PersistError> {
    save_bytes(path, &encode_collection(col, fingerprint))
}

/// Saves a collection (full or one shard) to `path` (atomically) under an
/// explicit header.
pub fn save_collection_with(
    path: &Path,
    col: &Collection,
    header: &FileHeader,
) -> Result<(), PersistError> {
    save_bytes(path, &encode_collection_with(col, header))
}

/// Loads a full collection from `path`, rejecting version, checksum and
/// fingerprint mismatches, and shard files.
pub fn load_collection(path: &Path, fingerprint: u64) -> Result<Collection, PersistError> {
    let bytes = fs::read(path)?;
    decode_collection(&bytes, fingerprint)
}

/// How [`collect_or_load`] obtained its collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The cache file existed and was replayed without simulating.
    Replayed,
    /// The collection was assembled from a complete set of shard files
    /// (and the merged result saved) without simulating.
    Assembled,
    /// The collection was freshly simulated and saved to the cache file.
    Collected,
}

/// Scans `dir` for shard files of the pass identified by `(prefix, kind,
/// fingerprint)` and merges them when they form a complete partition.
///
/// Candidates are selected **by file name** ([`shard_file_name`]
/// grammar): only names whose prefix (when `prefix` is given), kind and
/// fingerprint segments match are even opened, so foreign `.pbcol` files
/// — including other targets' shards under a shared directory and large
/// full corpora — cost nothing. A candidate that then fails to decode,
/// or whose header disagrees with its name, is an error — like a stale
/// cache, never silently ignored.
///
/// Shards are grouped by their partition's shard count (a crashed
/// `n`-way pass may leave stale shards beside a complete `m`-way one);
/// the first complete group merges. Returns `Ok(None)` when no group is
/// complete — other worker processes may still be collecting.
pub fn assemble_from_shards(
    dir: &Path,
    prefix: Option<&str>,
    kind: ExperimentKind,
    fingerprint: u64,
) -> Result<Option<Collection>, PersistError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // Group candidate shard parts by their partition's shard count.
    let mut groups: std::collections::BTreeMap<u32, Vec<(Collection, FileHeader)>> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let path = entry?.path();
        let parsed = match path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_cache_file_name)
        {
            Some(parsed) => parsed,
            None => continue,
        };
        if parsed.kind != kind
            || parsed.fingerprint != fingerprint
            || parsed.shard.is_none()
            || prefix.is_some_and(|p| parsed.prefix != p)
        {
            continue;
        }
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            // Pruned or still being renamed into place: not ours to judge.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        };
        let (col, header) = decode_collection_with(&bytes, Some(fingerprint))
            .map_err(|e| PersistError::Corrupt(format!("shard file {}: {e}", path.display())))?;
        if header.kind != kind
            || parsed.shard != Some((header.manifest.index, header.manifest.count))
        {
            return Err(PersistError::Shard(format!(
                "{} is named for a different shard than its header ({})",
                path.display(),
                header.manifest
            )));
        }
        groups
            .entry(header.manifest.count)
            .or_default()
            .push((col, header));
    }
    for (count, parts) in groups {
        let mut indices: Vec<u32> = parts.iter().map(|(_, h)| h.manifest.index).collect();
        indices.sort_unstable();
        indices.dedup();
        if indices.len() == count as usize {
            return merge_collections(parts).map(|(col, _)| Some(col));
        }
        // Incomplete group: workers of this partition may still be
        // running; try the next partition width.
    }
    Ok(None)
}

/// Replays `path` when it exists, otherwise tries to assemble the corpus
/// from shard files beside it (saving the merged result to `path`).
/// When `path`'s file name follows the [`cache_file_name`] grammar, only
/// shards sharing its prefix are considered, so targets with identical
/// configurations never cross-assemble in a shared directory. Returns
/// `Ok(None)` on a genuine cache miss — a stale or corrupt cache is
/// still an error.
pub fn load_or_assemble(
    path: &Path,
    kind: ExperimentKind,
    fingerprint: u64,
) -> Result<Option<(Collection, CacheStatus)>, PersistError> {
    // Attempt the load directly rather than probing `exists()` first: a
    // file pruned between probe and read must fall back to assembling,
    // not surface as an i/o error.
    match load_collection(path, fingerprint) {
        Ok(col) => return Ok(Some((col, CacheStatus::Replayed))),
        Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let parsed = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_cache_file_name);
    let prefix = parsed.as_ref().map(|p| p.prefix.as_str());
    if let Some(col) = assemble_from_shards(dir, prefix, kind, fingerprint)? {
        save_collection_with(
            path,
            &col,
            &FileHeader {
                kind,
                corpus_revision: CORPUS_REVISION,
                fingerprint,
                manifest: ShardManifest::full(col.probes.len()),
            },
        )?;
        return Ok(Some((col, CacheStatus::Assembled)));
    }
    Ok(None)
}

/// Front door for cached core collections: replays `path` when it exists
/// (validating its fingerprint against `config` — a stale file is an
/// error, never silently re-collected), assembles it from a complete set
/// of sibling shard files when it does not, and otherwise runs
/// [`collect`] and saves the result.
pub fn collect_or_load(
    path: &Path,
    config: &CollectionConfig,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = config_fingerprint(config);
    if let Some(hit) = load_or_assemble(path, ExperimentKind::Core, fingerprint)? {
        return Ok(hit);
    }
    let col = collect(config);
    save_collection(path, &col, fingerprint)?;
    Ok((col, CacheStatus::Collected))
}

/// [`collect_or_load`] for the memory experiment.
pub fn collect_memory_or_load(
    path: &Path,
    config: &MemCollectionConfig,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = mem_config_fingerprint(config);
    if let Some(hit) = load_or_assemble(path, ExperimentKind::Memory, fingerprint)? {
        return Ok(hit);
    }
    let col = collect_memory(config);
    save_collection_with(
        path,
        &col,
        &FileHeader {
            kind: ExperimentKind::Memory,
            corpus_revision: CORPUS_REVISION,
            fingerprint,
            manifest: ShardManifest::full(col.probes.len()),
        },
    )?;
    Ok((col, CacheStatus::Collected))
}

/// Shard-worker front door for the core experiment: loads the shard file
/// for `shard` when it exists (validating fingerprint and manifest) and
/// otherwise collects just that shard and saves it. `path` is the shard
/// file itself (see [`shard_file_name`]).
pub fn collect_shard_or_load(
    path: &Path,
    config: &CollectionConfig,
    shard: crate::exec::ShardSpec,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = config_fingerprint(config);
    collect_shard_impl(path, ExperimentKind::Core, fingerprint, shard, || {
        let (col, total) = crate::experiment::collect_sharded(config, shard);
        (col, ShardManifest::of(shard, total))
    })
}

/// [`collect_shard_or_load`] for the memory experiment.
pub fn collect_memory_shard_or_load(
    path: &Path,
    config: &MemCollectionConfig,
    shard: crate::exec::ShardSpec,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = mem_config_fingerprint(config);
    collect_shard_impl(path, ExperimentKind::Memory, fingerprint, shard, || {
        let (col, total) = crate::memory::collect_memory_sharded(config, shard);
        (col, ShardManifest::of(shard, total))
    })
}

fn collect_shard_impl(
    path: &Path,
    kind: ExperimentKind,
    fingerprint: u64,
    shard: crate::exec::ShardSpec,
    collect_shard: impl FnOnce() -> (Collection, ShardManifest),
) -> Result<(Collection, CacheStatus), PersistError> {
    match fs::read(path) {
        Ok(bytes) => {
            let (col, header) = decode_collection_with(&bytes, Some(fingerprint))?;
            if header.manifest.index as usize != shard.index
                || header.manifest.count as usize != shard.count
            {
                return Err(PersistError::Shard(format!(
                    "{} holds {}, expected shard {}/{}",
                    path.display(),
                    header.manifest,
                    shard.index,
                    shard.count
                )));
            }
            return Ok((col, CacheStatus::Replayed));
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    let (col, manifest) = collect_shard();
    save_collection_with(
        path,
        &col,
        &FileHeader {
            kind,
            corpus_revision: CORPUS_REVISION,
            fingerprint,
            manifest,
        },
    )?;
    Ok((col, CacheStatus::Collected))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> Collection {
        Collection {
            keys: vec![
                RunKey {
                    arch: "Skylake".into(),
                    set: ArchSet::IV,
                    bug: None,
                },
                RunKey {
                    arch: "Skylake".into(),
                    set: ArchSet::IV,
                    bug: Some(1),
                },
            ],
            probes: vec![ProbeMeta {
                id: "458.sjeng#0".into(),
                benchmark: "458.sjeng".into(),
                weight: 0.625,
            }],
            engines: vec![EngineResult {
                name: "GBT-250".into(),
                deltas: vec![vec![0.25, 17.5]],
                train_time: Duration::new(3, 250_000_000),
                infer_time: Duration::from_millis(42),
            }],
            overall_ipc: vec![vec![1.75, 1.5]],
            agg_features: vec![vec![vec![0.5, -1.0], vec![0.25, f64::MIN_POSITIVE]]],
            captures: vec![CapturedSeries {
                probe_id: "458.sjeng#0".into(),
                arch: "Skylake".into(),
                bug: Some(1),
                engine: "GBT-250".into(),
                simulated: vec![1.0, 2.0],
                inferred: vec![1.0, 1.75],
            }],
            catalog: BugCatalog::core_small(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let col = sample_collection();
        let bytes = encode_collection(&col, 7);
        let back = decode_collection(&bytes, 7).expect("round trip");
        assert_eq!(back, col);
    }

    #[test]
    fn encoding_is_deterministic() {
        let col = sample_collection();
        assert_eq!(encode_collection(&col, 9), encode_collection(&col, 9));
    }

    #[test]
    fn full_catalogue_round_trips() {
        let mut col = sample_collection();
        col.catalog = BugCatalog::core_full();
        let bytes = encode_collection(&col, 0);
        assert_eq!(decode_collection(&bytes, 0).unwrap().catalog, col.catalog);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let bytes = encode_collection(&sample_collection(), 7);
        match decode_collection(&bytes, 8) {
            Err(PersistError::Fingerprint {
                found: 7,
                expected: 8,
            }) => {}
            other => panic!("expected fingerprint error, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode_collection(&sample_collection(), 7);
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal the checksum so only the version differs.
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        match decode_collection(&bytes, 7) {
            Err(PersistError::Version { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let col = sample_collection();
        let bytes = encode_collection(&col, 7);
        // Flipping any single byte must fail decoding (magic, version,
        // checksum or fingerprint mismatch — never a silent wrong read).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_collection(&bad, 7).is_err(), "byte {i} undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_collection(&sample_collection(), 7);
        for n in (0..bytes.len()).step_by(9) {
            assert!(decode_collection(&bytes[..n], 7).is_err(), "len {n}");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode_collection(&sample_collection(), 7);
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(decode_collection(&bytes, 7).is_err());
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_shape() {
        let base = CollectionConfig::new(
            vec![crate::stage1::EngineSpec::gbt250()],
            BugCatalog::core_small(),
        );
        let mut other_threads = base.clone();
        other_threads.threads = base.threads + 3;
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&other_threads)
        );

        let mut other_window = base.clone();
        other_window.window = base.window + 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_window));

        let mut other_probes = base.clone();
        other_probes.max_probes = Some(3);
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_probes));
    }

    #[test]
    fn cache_file_name_embeds_kind_and_fingerprint() {
        assert_eq!(
            cache_file_name("fig08", ExperimentKind::Core, 0xdead_beef),
            "fig08-core-00000000deadbeef.pbcol"
        );
        assert_eq!(
            cache_file_name("fig08", ExperimentKind::Memory, 0xdead_beef),
            "fig08-mem-00000000deadbeef.pbcol"
        );
    }

    #[test]
    fn shard_file_name_round_trips_through_parse() {
        let name = shard_file_name("table07-x", ExperimentKind::Memory, 0xfeed, 3, 16);
        assert_eq!(name, "table07-x-mem-000000000000feed-s0003of0016.pbcol");
        let parsed = parse_cache_file_name(&name).expect("parse");
        assert_eq!(parsed.prefix, "table07-x");
        assert_eq!(parsed.kind, ExperimentKind::Memory);
        assert_eq!(parsed.fingerprint, 0xfeed);
        assert_eq!(parsed.shard, Some((3, 16)));

        let full = cache_file_name("speed-test", ExperimentKind::Core, 1);
        let parsed = parse_cache_file_name(&full).expect("parse");
        assert_eq!(parsed.prefix, "speed-test");
        assert_eq!(parsed.kind, ExperimentKind::Core);
        assert_eq!(parsed.shard, None);
    }

    #[test]
    fn parse_rejects_foreign_names() {
        for name in [
            "fig08-00000000deadbeef.pbcol",     // v1-era: no kind segment
            "fig08-core-deadbeef.pbcol",        // short fingerprint
            "fig08-cpu-00000000deadbeef.pbcol", // unknown kind
            "notes.txt",
            "-core-00000000deadbeef.pbcol", // empty prefix
        ] {
            assert!(parse_cache_file_name(name).is_none(), "{name}");
        }
    }

    fn shard_header(index: u32, count: u32, start: u64, end: u64, total: u64) -> FileHeader {
        FileHeader {
            kind: ExperimentKind::Core,
            corpus_revision: CORPUS_REVISION,
            fingerprint: 7,
            manifest: ShardManifest {
                index,
                count,
                probe_start: start,
                probe_end: end,
                total_probes: total,
            },
        }
    }

    /// A one-probe collection whose probe id embeds `tag`, suitable as one
    /// shard of a two-probe pass.
    fn shard_part(tag: usize) -> Collection {
        let mut col = sample_collection();
        col.probes[0].id = format!("458.sjeng#{tag}");
        col.captures.clear();
        col
    }

    #[test]
    fn shard_encode_decode_round_trips() {
        let col = shard_part(1);
        let header = shard_header(1, 2, 1, 2, 2);
        let bytes = encode_collection_with(&col, &header);
        assert_eq!(read_header(&bytes).expect("header"), header);
        let (back, back_header) = decode_collection_with(&bytes, Some(7)).expect("decode");
        assert_eq!(back, col);
        assert_eq!(back_header, header);
        // The full-load path must refuse the shard.
        assert!(matches!(
            decode_collection(&bytes, 7),
            Err(PersistError::Shard(_))
        ));
    }

    #[test]
    fn merge_reassembles_partition_in_any_order() {
        let parts = vec![
            (shard_part(1), shard_header(1, 2, 1, 2, 2)),
            (shard_part(0), shard_header(0, 2, 0, 1, 2)),
        ];
        let (merged, header) = merge_collections(parts).expect("merge");
        assert!(header.manifest.is_full());
        assert_eq!(merged.probes.len(), 2);
        assert_eq!(merged.probes[0].id, "458.sjeng#0");
        assert_eq!(merged.probes[1].id, "458.sjeng#1");
        assert_eq!(merged.engines[0].deltas.len(), 2);
        assert_eq!(merged.overall_ipc.len(), 2);
        assert_eq!(
            merged.engines[0].train_time,
            sample_collection().engines[0].train_time * 2
        );
    }

    #[test]
    fn merge_rejects_missing_and_overlapping_shards() {
        let missing = merge_collections(vec![(shard_part(0), shard_header(0, 2, 0, 1, 2))]);
        match missing {
            Err(PersistError::Shard(msg)) => assert!(msg.contains("expected 2 shards"), "{msg}"),
            other => panic!("expected shard error, got {other:?}"),
        }

        let overlap = merge_collections(vec![
            (shard_part(0), shard_header(0, 2, 0, 2, 2)),
            (shard_part(1), shard_header(1, 2, 1, 2, 2)),
        ]);
        match overlap {
            Err(PersistError::Shard(msg)) => assert!(msg.contains("overlaps"), "{msg}"),
            other => panic!("expected overlap error, got {other:?}"),
        }
    }

    #[test]
    fn merge_rejects_identity_mismatches() {
        let mut other_fp = shard_header(1, 2, 1, 2, 2);
        other_fp.fingerprint = 8;
        assert!(matches!(
            merge_collections(vec![
                (shard_part(0), shard_header(0, 2, 0, 1, 2)),
                (shard_part(1), other_fp),
            ]),
            Err(PersistError::Shard(_))
        ));

        let mut other_keys = shard_part(1);
        other_keys.keys[0].arch = "Zen".into();
        assert!(matches!(
            merge_collections(vec![
                (shard_part(0), shard_header(0, 2, 0, 1, 2)),
                (other_keys, shard_header(1, 2, 1, 2, 2)),
            ]),
            Err(PersistError::Shard(_))
        ));
    }

    #[test]
    fn assembly_honours_prefix_and_partition_groups() {
        let dir =
            std::env::temp_dir().join(format!("perfbug-assemble-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let kind = ExperimentKind::Core;
        let save = |name: String, col: &Collection, header: &FileHeader| {
            save_collection_with(&dir.join(name), col, header).expect("save shard");
        };
        // A complete 2-way partition under prefix "a" ...
        save(
            shard_file_name("a", kind, 7, 0, 2),
            &shard_part(0),
            &shard_header(0, 2, 0, 1, 2),
        );
        save(
            shard_file_name("a", kind, 7, 1, 2),
            &shard_part(1),
            &shard_header(1, 2, 1, 2, 2),
        );
        // ... plus a stale leftover of an abandoned 4-way pass of the same
        // prefix and fingerprint: it must not block assembly.
        save(
            shard_file_name("a", kind, 7, 0, 4),
            &shard_part(0),
            &shard_header(0, 4, 0, 1, 2),
        );

        // Another prefix sees none of these shards.
        assert!(assemble_from_shards(&dir, Some("b"), kind, 7)
            .expect("scan")
            .is_none());
        // Prefix "a" assembles the complete 2-way group.
        let col = assemble_from_shards(&dir, Some("a"), kind, 7)
            .expect("assemble")
            .expect("complete group");
        assert_eq!(col.probes.len(), 2);
        // A wrong fingerprint matches nothing.
        assert!(assemble_from_shards(&dir, Some("a"), kind, 8)
            .expect("scan")
            .is_none());

        // A shard file whose name disagrees with its header is an error,
        // never silently used.
        save(
            shard_file_name("c", kind, 7, 0, 2),
            &shard_part(1),
            &shard_header(1, 2, 1, 2, 2),
        );
        assert!(matches!(
            assemble_from_shards(&dir, Some("c"), kind, 7),
            Err(PersistError::Shard(_))
        ));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_read_does_not_validate_checksum() {
        let col = sample_collection();
        let mut bytes = encode_collection(&col, 7);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt the checksum itself
        assert!(read_header(&bytes).is_ok());
        assert!(decode_collection(&bytes, 7).is_err());
    }
}

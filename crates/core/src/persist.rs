//! Collection persistence: a versioned, deterministic binary codec for
//! [`Collection`] plus evaluation-only replay.
//!
//! The expensive phase of every experiment is *collection* (simulate each
//! probe on each design with each bug, train stage-1 models); the cheap
//! phase is *evaluation*. The paper reuses one collected corpus across
//! many models and thresholds (Figs. 8–13, Tables IV–VII), so this module
//! lets a collection be saved once and replayed by any number of
//! evaluation-only runs without touching the simulator.
//!
//! The codec is hand-rolled (the build environment is offline — no serde):
//! little-endian fixed-width integers, `f64::to_bits` for floats, and
//! length-prefixed sequences, which makes encoding byte-deterministic for
//! a given collection. The byte-level layout is specified in
//! `docs/FORMAT.md`; every file carries
//!
//! * a magic tag and a [`FORMAT_VERSION`] — files from an older codec are
//!   rejected with [`PersistError::Version`], never reinterpreted;
//! * the [`CORPUS_REVISION`] and [`ExperimentKind`] of the producing pass,
//!   so cache tooling (`pbcol`) can triage files without recomputing
//!   fingerprints;
//! * the **config fingerprint** of the producing collection pass — loading
//!   under a different [`CollectionConfig`] fails with
//!   [`PersistError::Fingerprint`], so a stale cache is rejected rather
//!   than silently reused;
//! * a [`ShardManifest`] — which contiguous probe range of the full pass
//!   this file covers. Full single-process files cover `0..total` in one
//!   shard; a sharded pass (`experiment::collect_sharded` on `count`
//!   processes) writes `count` shard files that [`merge_collections`]
//!   reassembles into the single-process collection after validating
//!   disjoint, complete coverage and matching identity fields;
//! * a trailing FNV-1a checksum over the whole header + payload —
//!   truncated or corrupted files fail with [`PersistError::Corrupt`].
//!
//! [`collect_or_load`] / [`collect_memory_or_load`] are the front doors:
//! they replay a saved collection when the cache file exists, assemble it
//! from a complete set of shard files in the same directory when one is
//! not, and collect (then save) otherwise. Shard workers use
//! [`collect_shard_or_load`] / [`collect_memory_shard_or_load`]. Pair
//! them with [`cache_file_name`] / [`shard_file_name`], which embed the
//! experiment kind and the fingerprint in the file name so distinct
//! configurations — and the core and memory experiments sharing one cache
//! directory — can never collide on one path.

// pblint: allow-file(slice-index) -- decode keeps raw-byte indexing for the
// fixed-width frame fields; every site is behind an explicit length guard
// (dec_* readers, scan_part, parse_chunk) and the whole decode surface is
// proptested against truncation/corruption in the roundtrip suite.
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::Opcode;

use crate::bugs::BugCatalog;
use crate::experiment::{
    CapturedSeries, Collection, CollectionConfig, EngineResult, ProbeMeta, RunKey,
};
use crate::memory::MemCollectionConfig;

/// Version of the on-disk format. Bump on any layout change; readers
/// reject every version except this one and [`LEGACY_FORMAT_VERSION`].
///
/// * v1 — magic, version, fingerprint, payload, checksum.
/// * v2 — adds the corpus revision, the experiment kind and the shard
///   manifest to the header (see `docs/FORMAT.md`).
/// * v3 — replaces the monolithic payload with self-delimiting,
///   individually-checksummed chunks (a meta chunk, then one chunk per
///   probe), a footer carrying the chunk/offset index and the engine
///   timing totals, and a 16-byte trailer locating the footer. Enables
///   O(chunk) streaming verification ([`verify_stream`]), single-probe
///   random access ([`ProbeReader`]), streaming shard concatenation
///   ([`merge_shard_files`]) and crash-recoverable resumable shard
///   writes ([`ShardStreamWriter`], [`scan_part`]).
pub const FORMAT_VERSION: u32 = 3;

/// The previous on-disk format, still accepted by every read path
/// (read-compat shim): v2 files in an existing `PERFBUG_CACHE_DIR`
/// replay without recollection. Writers always emit [`FORMAT_VERSION`];
/// the streaming/resume machinery is v3-only.
pub const LEGACY_FORMAT_VERSION: u32 = 2;

/// Version of the *corpus semantics*: what the collection pipeline would
/// produce for a given configuration. Folded into every config
/// fingerprint, so bumping it invalidates caches without changing the
/// codec. Bump whenever a change makes collection output numerically
/// different under an unchanged config (simulator timing fixes, counter
/// or feature semantics, engine training/inference numerics, Eq.-(1)
/// changes) — otherwise an old cache would silently replay data the
/// current code no longer produces.
pub const CORPUS_REVISION: u32 = 1;

/// Magic tag opening every serialised collection.
const MAGIC: [u8; 4] = *b"PBCL";

/// Canonical file extension of serialised collections.
pub const FILE_EXTENSION: &str = "pbcol";

/// Which experiment pipeline produced a collection. Part of the file
/// header and of every cache file name, so the core and memory
/// experiments can share one `PERFBUG_CACHE_DIR` without colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// The out-of-order core experiment (`experiment::collect`).
    Core,
    /// The cache-hierarchy experiment (`memory::collect_memory`).
    Memory,
}

impl ExperimentKind {
    /// The name segment embedded in cache file names.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExperimentKind::Core => "core",
            ExperimentKind::Memory => "mem",
        }
    }

    /// Parses a file-name segment produced by [`ExperimentKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "core" => Some(ExperimentKind::Core),
            "mem" => Some(ExperimentKind::Memory),
            _ => None,
        }
    }

    fn wire(&self) -> u8 {
        match self {
            ExperimentKind::Core => 0,
            ExperimentKind::Memory => 1,
        }
    }

    fn from_wire(tag: u8) -> Result<Self, PersistError> {
        match tag {
            0 => Ok(ExperimentKind::Core),
            1 => Ok(ExperimentKind::Memory),
            t => Err(PersistError::Corrupt(format!(
                "invalid experiment kind tag {t}"
            ))),
        }
    }
}

impl fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which slice of the full collection pass a file covers.
///
/// A full single-process file is shard `0 of 1` covering
/// `0..total_probes`; a sharded pass writes one file per shard, each
/// covering its [`crate::exec::ShardSpec::probe_range`]. The run-key axis
/// is always complete — only the probe axis is sliced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard index, `0 <= index < count`.
    pub index: u32,
    /// Total shard count of the producing pass.
    pub count: u32,
    /// First probe (absolute index of the full pass) this file covers.
    pub probe_start: u64,
    /// One past the last probe this file covers.
    pub probe_end: u64,
    /// Total probe count of the full pass.
    pub total_probes: u64,
}

impl ShardManifest {
    /// The manifest of an unsharded file covering all `total` probes.
    pub fn full(total: usize) -> Self {
        ShardManifest {
            index: 0,
            count: 1,
            probe_start: 0,
            probe_end: total as u64,
            total_probes: total as u64,
        }
    }

    /// Builds the manifest of one shard of a `total`-probe pass.
    ///
    /// # Panics
    ///
    /// Panics if the spec's index is out of range (via
    /// [`crate::exec::ShardSpec::new`] semantics).
    pub fn of(shard: crate::exec::ShardSpec, total: usize) -> Self {
        let range = shard.probe_range(total);
        ShardManifest {
            index: shard.index as u32,
            count: shard.count as u32,
            probe_start: range.start as u64,
            probe_end: range.end as u64,
            total_probes: total as u64,
        }
    }

    /// Whether this file alone covers the whole pass.
    pub fn is_full(&self) -> bool {
        self.count == 1 && self.probe_start == 0 && self.probe_end == self.total_probes
    }

    /// Number of probes the file covers.
    pub fn probes(&self) -> u64 {
        self.probe_end - self.probe_start
    }

    /// Internal consistency: index in range, ordered bounds within the
    /// total, and a full manifest whenever the count is 1.
    fn validate(&self) -> Result<(), PersistError> {
        if self.count == 0
            || self.index >= self.count
            || self.probe_start > self.probe_end
            || self.probe_end > self.total_probes
            || (self.count == 1 && !self.is_full())
        {
            return Err(PersistError::Corrupt(format!(
                "invalid shard manifest: shard {} of {}, probes {}..{} of {}",
                self.index, self.count, self.probe_start, self.probe_end, self.total_probes
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ShardManifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}/{} (probes {}..{} of {})",
            self.index, self.count, self.probe_start, self.probe_end, self.total_probes
        )
    }
}

/// Everything the fixed-size file header records (see `docs/FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Experiment kind of the producing pass.
    pub kind: ExperimentKind,
    /// [`CORPUS_REVISION`] the file was written under.
    pub corpus_revision: u32,
    /// Config fingerprint of the producing pass.
    pub fingerprint: u64,
    /// Probe coverage of this file.
    pub manifest: ShardManifest,
}

// --------------------------------------------------------------------------
// Errors
// --------------------------------------------------------------------------

/// Why a collection could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The bytes are not a well-formed collection file (bad magic, failed
    /// checksum, truncation, or an invalid enum tag).
    Corrupt(String),
    /// The file was written by a different codec version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The file was collected under a different configuration.
    Fingerprint {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the requesting configuration.
        expected: u64,
    },
    /// A shard-coverage violation: a full load hit a shard file, or a
    /// merge found overlapping, missing or mismatched shards. The message
    /// names the offending shards and probe ranges.
    Shard(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt collection file: {why}"),
            PersistError::Version { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            PersistError::Fingerprint { found, expected } => write!(
                f,
                "stale cache: collected under config {found:016x}, requested {expected:016x}"
            ),
            PersistError::Shard(why) => write!(f, "shard coverage error: {why}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

// --------------------------------------------------------------------------
// Fingerprints
// --------------------------------------------------------------------------

/// FNV-1a 64 offset basis.
pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running 64-bit FNV-1a hash. Seed with
/// [`FNV_BASIS`]; feeding a file's bytes in any split produces the same
/// hash as one pass, which is what lets the streaming writer and
/// verifier maintain the whole-file checksum incrementally.
pub(crate) fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 64-bit FNV-1a over a byte slice — the checksum primitive of both the
/// cache file format and the remote worker protocol's wire frames
/// (`docs/FORMAT.md` §9), so supervisors can cross-check daemon-reported
/// shard checksums against local bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_BASIS, bytes)
}

/// Version token frozen into the fingerprint canon. This is *not*
/// [`FORMAT_VERSION`]: fingerprints identify what the collection pipeline
/// would produce, and the v2→v3 codec change reshaped only the container,
/// not the data — so v2-era cache files (and their fingerprint-bearing
/// names) must keep matching. Bump [`CORPUS_REVISION`] — not this — when
/// collection *output* changes.
const FINGERPRINT_VERSION: u32 = 2;

/// Fingerprint of everything in a [`CollectionConfig`] that shapes the
/// collected data. `threads` is deliberately excluded: the engine is
/// deterministic for any worker count, so parallelism is an execution
/// detail, not part of the corpus identity.
pub fn config_fingerprint(config: &CollectionConfig) -> u64 {
    let canon = format!(
        "core/v{FINGERPRINT_VERSION}/c{CORPUS_REVISION}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.scale,
        config.engines,
        config.counter_mode,
        config.window,
        config.arch_features,
        config.catalog.variants(),
        // The whole benchmark specs, not just their names: k, seed and
        // phase structure all shape the probe set and traces.
        config.benchmarks,
        config.max_probes,
        config.partition,
        config.presumed_bugfree_bug,
        config.captures,
    );
    fnv1a(canon.as_bytes())
}

/// Fingerprint of a [`MemCollectionConfig`], excluding `threads` for the
/// same reason as [`config_fingerprint`].
pub fn mem_config_fingerprint(config: &MemCollectionConfig) -> u64 {
    let canon = format!(
        "mem/v{FINGERPRINT_VERSION}/c{CORPUS_REVISION}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.workload,
        config.step_cycles,
        config.engines,
        config.metric,
        config.counter_mode,
        config.catalog.variants(),
        config.max_probes,
    );
    fnv1a(canon.as_bytes())
}

/// The canonical cache file name for a full fingerprinted collection:
/// `<prefix>-<kind>-<fingerprint hex>.pbcol`. Because the experiment kind
/// and the fingerprint are part of the name, a configuration change maps
/// to a fresh file instead of a stale-cache error, and core and memory
/// experiments sharing a prefix and a cache directory never collide.
pub fn cache_file_name(prefix: &str, kind: ExperimentKind, fingerprint: u64) -> String {
    format!("{prefix}-{kind}-{fingerprint:016x}.{FILE_EXTENSION}")
}

/// The canonical file name of one shard of a sharded collection pass:
/// `<prefix>-<kind>-<fingerprint hex>-s<index>of<count>.pbcol`.
pub fn shard_file_name(
    prefix: &str,
    kind: ExperimentKind,
    fingerprint: u64,
    index: usize,
    count: usize,
) -> String {
    format!("{prefix}-{kind}-{fingerprint:016x}-s{index:04}of{count:04}.{FILE_EXTENSION}")
}

/// Whether `name` follows the in-flight temp-file grammar of
/// [`save_collection`]'s atomic write path
/// (`<target>.pbcol.<pid>-<seq>.tmp`). Such a file is invisible to every
/// reader (loads, shard assembly, `pbcol verify` all select on the
/// `.pbcol` extension); one left behind by a killed worker is garbage
/// that `pbcol prune` evicts.
pub fn is_temp_file_name(name: &str) -> bool {
    name.ends_with(".tmp") && name.contains(&format!(".{FILE_EXTENSION}."))
}

/// The deterministic in-progress ("part") file of a streaming shard
/// write: `<target>.pbcol.part.tmp` beside the target. Deterministic —
/// unlike [`save_collection`]'s pid-sequenced temp names — because a
/// *later attempt in a different process* must find the file a killed
/// worker left behind and resume it ([`ShardStreamWriter`]). The name
/// still matches [`is_temp_file_name`], so part files stay invisible to
/// every reader and assembly path.
pub fn part_path_for(target: &Path) -> std::path::PathBuf {
    target.with_extension(format!("{FILE_EXTENSION}.part.tmp"))
}

/// Whether `name` is a resumable part file ([`part_path_for`] grammar).
/// Part files are a subset of [`is_temp_file_name`]: cache tooling
/// (`pbcol prune`, `pbcol inspect`) distinguishes them from the
/// anonymous in-flight temps of the atomic-save path because a part file
/// with a valid chunk prefix represents recoverable work.
pub fn is_part_file_name(name: &str) -> bool {
    name.ends_with(&format!(".{FILE_EXTENSION}.part.tmp"))
}

/// A cache file name decomposed by [`parse_cache_file_name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedCacheName {
    /// The experiment prefix (e.g. `fig08`); may itself contain dashes.
    pub prefix: String,
    /// Experiment kind segment.
    pub kind: ExperimentKind,
    /// Fingerprint embedded in the name.
    pub fingerprint: u64,
    /// `Some((index, count))` for shard files, `None` for full files.
    pub shard: Option<(u32, u32)>,
}

/// Parses a file name produced by [`cache_file_name`] or
/// [`shard_file_name`]; returns `None` for anything else (including
/// pre-kind v1-era names), so cache tooling can tell this crate's files
/// from stray `.pbcol` files.
pub fn parse_cache_file_name(name: &str) -> Option<ParsedCacheName> {
    let stem = name.strip_suffix(&format!(".{FILE_EXTENSION}"))?;
    // Grammar (right to left): [-sNNNNofNNNN] then -<16 hex> then -<kind>,
    // leaving the prefix, which may itself contain dashes.
    let (stem, shard) = match stem.rfind("-s") {
        Some(pos) => {
            let tail = &stem[pos + 2..];
            match tail.split_once("of") {
                Some((i, c)) if !i.is_empty() && !c.is_empty() => {
                    match (i.parse::<u32>(), c.parse::<u32>()) {
                        (Ok(i), Ok(c)) => (&stem[..pos], Some((i, c))),
                        _ => (stem, None),
                    }
                }
                _ => (stem, None),
            }
        }
        None => (stem, None),
    };
    let (stem, fp_hex) = stem.rsplit_once('-')?;
    if fp_hex.len() != 16 {
        return None;
    }
    let fingerprint = u64::from_str_radix(fp_hex, 16).ok()?;
    let (prefix, kind_str) = stem.rsplit_once('-')?;
    let kind = ExperimentKind::parse(kind_str)?;
    if prefix.is_empty() {
        return None;
    }
    Some(ParsedCacheName {
        prefix: prefix.to_string(),
        kind,
        fingerprint,
        shard,
    })
}

// --------------------------------------------------------------------------
// Primitive codec
// --------------------------------------------------------------------------

/// Append-only encoder over a growable byte buffer.
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    pub(crate) fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(i) => {
                self.u8(1);
                self.usize(i);
            }
        }
    }

    pub(crate) fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }
}

/// Cursor-based decoder; every read is bounds-checked so truncated input
/// surfaces as [`PersistError::Corrupt`] instead of a panic.
pub(crate) struct Dec<'b> {
    pub(crate) bytes: &'b [u8],
    pub(crate) pos: usize,
}

impl<'b> Dec<'b> {
    pub(crate) fn new(bytes: &'b [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'b [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| PersistError::Corrupt(format!("truncated at byte {}", self.pos)))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("length {v} overflows")))
    }

    /// A length prefix that is about to drive an allocation; bounded by
    /// the remaining payload so corrupt lengths cannot exhaust memory.
    pub(crate) fn len(&mut self) -> Result<usize, PersistError> {
        let v = self.usize()?;
        if v > self.bytes.len().saturating_sub(self.pos) {
            return Err(PersistError::Corrupt(format!(
                "length {v} exceeds remaining {} bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(v)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(PersistError::Corrupt(format!("invalid bool tag {t}"))),
        }
    }

    pub(crate) fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid utf-8 string".into()))
    }

    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    pub(crate) fn opt_usize(&mut self) -> Result<Option<usize>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            t => Err(PersistError::Corrupt(format!("invalid option tag {t}"))),
        }
    }

    pub(crate) fn duration(&mut self) -> Result<Duration, PersistError> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(PersistError::Corrupt(format!(
                "invalid subsecond nanos {nanos}"
            )));
        }
        Ok(Duration::new(secs, nanos))
    }
}

// --------------------------------------------------------------------------
// Domain codec
// --------------------------------------------------------------------------

/// Stable wire codes for [`Opcode`]; append-only — never renumber.
const OPCODES: [Opcode; 19] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Xor,
    Opcode::Logic,
    Opcode::Shift,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Popcnt,
    Opcode::FpAdd,
    Opcode::FpMul,
    Opcode::FpDiv,
    Opcode::VecInt,
    Opcode::VecFp,
    Opcode::Load,
    Opcode::Store,
    Opcode::Branch,
    Opcode::Jump,
    Opcode::IndirectBranch,
    Opcode::Nop,
];

fn enc_opcode(enc: &mut Enc, op: Opcode) {
    let code = OPCODES
        .iter()
        .position(|&o| o == op)
        // pblint: allow(panic-policy) -- encode-side invariant: OPCODES is the
        // exhaustive wire table; a missing variant is a compile-time-shaped bug,
        // not a recoverable input condition.
        .expect("every opcode has a wire code");
    enc.u8(code as u8);
}

fn dec_opcode(dec: &mut Dec) -> Result<Opcode, PersistError> {
    let code = dec.u8()?;
    OPCODES
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| PersistError::Corrupt(format!("invalid opcode code {code}")))
}

fn enc_arch_set(enc: &mut Enc, set: ArchSet) {
    enc.u8(match set {
        ArchSet::I => 0,
        ArchSet::II => 1,
        ArchSet::III => 2,
        ArchSet::IV => 3,
    });
}

fn dec_arch_set(dec: &mut Dec) -> Result<ArchSet, PersistError> {
    match dec.u8()? {
        0 => Ok(ArchSet::I),
        1 => Ok(ArchSet::II),
        2 => Ok(ArchSet::III),
        3 => Ok(ArchSet::IV),
        t => Err(PersistError::Corrupt(format!("invalid arch set tag {t}"))),
    }
}

/// Bug specs are tagged with their type id (1–14 paper, 15–16
/// extensions), then their parameters in declaration order.
fn enc_bug(enc: &mut Enc, bug: &BugSpec) {
    enc.u8(bug.type_id() as u8);
    match *bug {
        BugSpec::SerializeOpcode { x }
        | BugSpec::IssueOnlyIfOldest { x }
        | BugSpec::IfOldestIssueOnlyX { x } => enc_opcode(enc, x),
        BugSpec::DelayIfDependsOn { x, y, t } => {
            enc_opcode(enc, x);
            enc_opcode(enc, y);
            enc.u32(t);
        }
        BugSpec::IqBelowDelay { n, t }
        | BugSpec::RobBelowDelay { n, t }
        | BugSpec::StoresToLineDelay { n, t } => {
            enc.u32(n);
            enc.u32(t);
        }
        BugSpec::MispredictExtraDelay { t } | BugSpec::L2ExtraLatency { t } => enc.u32(t),
        BugSpec::WritesToRegDelay { n, t, periodic } => {
            enc.u32(n);
            enc.u32(t);
            enc.bool(periodic);
        }
        BugSpec::FewerPhysRegs { n } => enc.u32(n),
        BugSpec::LongBranchDelay { bytes, t } => {
            enc.u8(bytes);
            enc.u32(t);
        }
        BugSpec::OpcodeUsesRegDelay { x, r, t } => {
            enc_opcode(enc, x);
            enc.u8(r);
            enc.u32(t);
        }
        BugSpec::BtbIndexMask { lost_bits } => enc.u32(lost_bits),
        BugSpec::TlbPageWalkDelay { entries, t } => {
            enc.u32(entries);
            enc.u32(t);
        }
        BugSpec::IssueReplayEveryN { n, t } => {
            enc.u32(n);
            enc.u32(t);
        }
    }
}

fn dec_bug(dec: &mut Dec) -> Result<BugSpec, PersistError> {
    Ok(match dec.u8()? {
        1 => BugSpec::SerializeOpcode {
            x: dec_opcode(dec)?,
        },
        2 => BugSpec::IssueOnlyIfOldest {
            x: dec_opcode(dec)?,
        },
        3 => BugSpec::IfOldestIssueOnlyX {
            x: dec_opcode(dec)?,
        },
        4 => BugSpec::DelayIfDependsOn {
            x: dec_opcode(dec)?,
            y: dec_opcode(dec)?,
            t: dec.u32()?,
        },
        5 => BugSpec::IqBelowDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        6 => BugSpec::RobBelowDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        7 => BugSpec::MispredictExtraDelay { t: dec.u32()? },
        8 => BugSpec::StoresToLineDelay {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        9 => BugSpec::WritesToRegDelay {
            n: dec.u32()?,
            t: dec.u32()?,
            periodic: dec.bool()?,
        },
        10 => BugSpec::L2ExtraLatency { t: dec.u32()? },
        11 => BugSpec::FewerPhysRegs { n: dec.u32()? },
        12 => BugSpec::LongBranchDelay {
            bytes: dec.u8()?,
            t: dec.u32()?,
        },
        13 => BugSpec::OpcodeUsesRegDelay {
            x: dec_opcode(dec)?,
            r: dec.u8()?,
            t: dec.u32()?,
        },
        14 => BugSpec::BtbIndexMask {
            lost_bits: dec.u32()?,
        },
        15 => BugSpec::TlbPageWalkDelay {
            entries: dec.u32()?,
            t: dec.u32()?,
        },
        16 => BugSpec::IssueReplayEveryN {
            n: dec.u32()?,
            t: dec.u32()?,
        },
        t => return Err(PersistError::Corrupt(format!("invalid bug type tag {t}"))),
    })
}

// --------------------------------------------------------------------------
// v3 chunk codec
// --------------------------------------------------------------------------

/// Chunk kind: the single meta chunk (keys, engine roster, catalogue).
pub(crate) const CHUNK_META: u8 = 0;
/// Chunk kind: a probe chunk holding `n_probes >= 1` probe records.
pub(crate) const CHUNK_PROBES: u8 = 1;
/// Bytes of a chunk's frame header:
/// `kind u8 | first_probe u64 | n_probes u32 | payload_len u64`.
pub(crate) const CHUNK_FRAME_LEN: usize = 1 + 8 + 4 + 8;
/// Total framing overhead of one chunk: frame header plus the trailing
/// per-chunk FNV-1a checksum.
pub(crate) const CHUNK_OVERHEAD: usize = CHUNK_FRAME_LEN + 8;
/// Probes per probe chunk emitted by this build's writers. The format
/// itself allows any `n_probes >= 1` per chunk; one probe per chunk
/// gives probe-granular crash recovery and random access, which is what
/// the resume path and [`ProbeReader`] are for.
const PROBES_PER_CHUNK: u32 = 1;
/// Bytes of the fixed v3 trailer: `footer_offset u64 | file fnv64`.
pub(crate) const TRAILER_LEN: usize = 16;

/// One row of the v3 footer's chunk index, locating and identifying a
/// chunk without touching its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the chunk's frame header in the file.
    pub offset: u64,
    /// Total chunk length in bytes (frame + payload + checksum).
    pub len: u64,
    /// Chunk kind (`0` = meta, `1` = probes).
    pub kind: u8,
    /// Absolute index of the first probe in the chunk (0 for meta).
    pub first_probe: u64,
    /// Number of probe records in the chunk (0 for meta).
    pub n_probes: u32,
    /// FNV-1a checksum over the chunk's frame header and payload, as
    /// also stored at the end of the chunk itself.
    pub checksum: u64,
}

impl ChunkEntry {
    /// Whether this entry describes the meta chunk.
    pub fn is_meta(&self) -> bool {
        self.kind == CHUNK_META
    }

    /// One past the last probe the chunk covers.
    pub fn probe_end(&self) -> u64 {
        self.first_probe + u64::from(self.n_probes)
    }
}

/// The decoded meta chunk: the probe-independent identity of a
/// collection, written once at the front of every v3 file so a resumed
/// or streaming reader knows the axes before any probe is decoded.
#[derive(Debug, Clone, PartialEq)]
struct MetaSection {
    keys: Vec<RunKey>,
    engine_names: Vec<String>,
    catalog: BugCatalog,
}

/// Everything one probe contributes to a collection, as stored inside a
/// v3 probe chunk: metadata, per-key overall metric, baseline aggregate
/// rows, one delta row per engine (in meta-chunk roster order) and any
/// captured series. Engine wall-clock timings are *not* per-probe on
/// disk — totals live in the footer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    /// Probe metadata.
    pub meta: ProbeMeta,
    /// Overall target metric, one per run key.
    pub overall: Vec<f64>,
    /// Aggregated baseline feature rows, one per run key.
    pub agg: Vec<Vec<f64>>,
    /// Eq.-(1) inference errors, `[engine][run key]` in roster order.
    pub deltas: Vec<Vec<f64>>,
    /// Captured series of this probe, in (engine, key) capture order.
    pub captures: Vec<CapturedSeries>,
}

fn enc_meta_section(enc: &mut Enc, meta: &MetaSection) {
    enc.usize(meta.keys.len());
    for key in &meta.keys {
        enc.str(&key.arch);
        enc_arch_set(enc, key.set);
        enc.opt_usize(key.bug);
    }
    enc.usize(meta.engine_names.len());
    for name in &meta.engine_names {
        enc.str(name);
    }
    enc.usize(meta.catalog.len());
    for bug in meta.catalog.variants() {
        enc_bug(enc, bug);
    }
}

fn dec_meta_section(dec: &mut Dec) -> Result<MetaSection, PersistError> {
    let n_keys = dec.len()?;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        keys.push(RunKey {
            arch: dec.str()?,
            set: dec_arch_set(dec)?,
            bug: dec.opt_usize()?,
        });
    }
    let n_engines = dec.len()?;
    let mut engine_names = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        engine_names.push(dec.str()?);
    }
    let n_bugs = dec.len()?;
    if n_bugs == 0 {
        return Err(PersistError::Corrupt("empty bug catalogue".into()));
    }
    let mut variants = Vec::with_capacity(n_bugs);
    for _ in 0..n_bugs {
        variants.push(dec_bug(dec)?);
    }
    Ok(MetaSection {
        keys,
        engine_names,
        catalog: BugCatalog::new(variants),
    })
}

fn enc_probe_record(enc: &mut Enc, rec: &ProbeRecord) {
    enc.str(&rec.meta.id);
    enc.str(&rec.meta.benchmark);
    enc.f64(rec.meta.weight);
    enc.f64s(&rec.overall);
    enc.usize(rec.agg.len());
    for row in &rec.agg {
        enc.f64s(row);
    }
    // One delta row per engine, count fixed by the meta-chunk roster.
    for row in &rec.deltas {
        enc.f64s(row);
    }
    enc.usize(rec.captures.len());
    for c in &rec.captures {
        enc.str(&c.probe_id);
        enc.str(&c.arch);
        enc.opt_usize(c.bug);
        enc.str(&c.engine);
        enc.f64s(&c.simulated);
        enc.f64s(&c.inferred);
    }
}

fn dec_probe_record(dec: &mut Dec, n_engines: usize) -> Result<ProbeRecord, PersistError> {
    let meta = ProbeMeta {
        id: dec.str()?,
        benchmark: dec.str()?,
        weight: dec.f64()?,
    };
    let overall = dec.f64s()?;
    let n_agg = dec.len()?;
    let mut agg = Vec::with_capacity(n_agg);
    for _ in 0..n_agg {
        agg.push(dec.f64s()?);
    }
    let mut deltas = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        deltas.push(dec.f64s()?);
    }
    let n_caps = dec.len()?;
    let mut captures = Vec::with_capacity(n_caps);
    for _ in 0..n_caps {
        captures.push(CapturedSeries {
            probe_id: dec.str()?,
            arch: dec.str()?,
            bug: dec.opt_usize()?,
            engine: dec.str()?,
            simulated: dec.f64s()?,
            inferred: dec.f64s()?,
        });
    }
    Ok(ProbeRecord {
        meta,
        overall,
        agg,
        deltas,
        captures,
    })
}

/// Frames `payload` as one chunk: frame header, payload, then the
/// per-chunk FNV-1a checksum over frame + payload. Returns the chunk
/// bytes and its checksum.
pub(crate) fn build_chunk(
    kind: u8,
    first_probe: u64,
    n_probes: u32,
    payload: &[u8],
) -> (Vec<u8>, u64) {
    let mut enc = Enc::new();
    enc.u8(kind);
    enc.u64(first_probe);
    enc.u32(n_probes);
    enc.u64(payload.len() as u64);
    enc.buf.extend_from_slice(payload);
    let checksum = fnv1a(&enc.buf);
    enc.u64(checksum);
    (enc.buf, checksum)
}

/// A chunk parsed (and checksum-validated) out of a byte buffer.
pub(crate) struct ParsedChunk<'b> {
    pub(crate) kind: u8,
    pub(crate) first_probe: u64,
    pub(crate) n_probes: u32,
    pub(crate) payload: &'b [u8],
    pub(crate) checksum: u64,
    /// Total chunk length in bytes.
    pub(crate) len: usize,
}

/// Parses the chunk starting at `bytes[offset..]`, validating the frame
/// header, the payload bounds and the per-chunk checksum. `offset` is
/// only used for error messages' byte positions.
pub(crate) fn parse_chunk(bytes: &[u8], offset: usize) -> Result<ParsedChunk<'_>, PersistError> {
    let at = |why: &str| PersistError::Corrupt(format!("chunk at byte {offset}: {why}"));
    if bytes.len() < CHUNK_OVERHEAD {
        return Err(at(&format!(
            "{} bytes is too short for a chunk",
            bytes.len()
        )));
    }
    let kind = bytes[0];
    if kind != CHUNK_META && kind != CHUNK_PROBES {
        return Err(at(&format!("invalid chunk kind {kind}")));
    }
    let first_probe = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
    let n_probes = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes"));
    let payload_len = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len)
        .ok()
        .filter(|&n| n <= bytes.len() - CHUNK_OVERHEAD)
        .ok_or_else(|| {
            at(&format!(
                "payload length {payload_len} exceeds remaining bytes"
            ))
        })?;
    let len = CHUNK_FRAME_LEN + payload_len + 8;
    let payload = &bytes[CHUNK_FRAME_LEN..CHUNK_FRAME_LEN + payload_len];
    let stored = u64::from_le_bytes(bytes[len - 8..len].try_into().expect("8 bytes"));
    let computed = fnv1a(&bytes[..CHUNK_FRAME_LEN + payload_len]);
    if stored != computed {
        return Err(at("chunk checksum mismatch"));
    }
    Ok(ParsedChunk {
        kind,
        first_probe,
        n_probes,
        payload,
        checksum: stored,
        len,
    })
}

/// Serialises the v3 footer: the chunk index followed by the per-engine
/// wall-clock timing totals. Timings live here — not in probe chunks —
/// because a whole collection's per-engine times cannot be attributed to
/// individual probes after the fact, and because a resumed write loses
/// the crashed attempt's measurements anyway (bit-identity comparisons
/// run after `Collection::zero_timings`).
fn enc_footer(chunks: &[ChunkEntry], times: &[(Duration, Duration)]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.usize(chunks.len());
    for c in chunks {
        enc.u64(c.offset);
        enc.u64(c.len);
        enc.u8(c.kind);
        enc.u64(c.first_probe);
        enc.u32(c.n_probes);
        enc.u64(c.checksum);
    }
    enc.usize(times.len());
    for &(train, infer) in times {
        enc.duration(train);
        enc.duration(infer);
    }
    enc.buf
}

/// Decodes a v3 footer; `bytes` must hold exactly the footer.
#[allow(clippy::type_complexity)]
fn dec_footer(bytes: &[u8]) -> Result<(Vec<ChunkEntry>, Vec<(Duration, Duration)>), PersistError> {
    let mut dec = Dec::new(bytes);
    let n_chunks = dec.usize()?;
    if n_chunks > bytes.len() / 37 {
        // 37 = bytes per chunk entry; bounds the allocation below.
        return Err(PersistError::Corrupt(format!(
            "footer chunk count {n_chunks} exceeds footer size"
        )));
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        chunks.push(ChunkEntry {
            offset: dec.u64()?,
            len: dec.u64()?,
            kind: dec.u8()?,
            first_probe: dec.u64()?,
            n_probes: dec.u32()?,
            checksum: dec.u64()?,
        });
    }
    let n_engines = dec.len()?;
    let mut times = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        times.push((dec.duration()?, dec.duration()?));
    }
    if dec.pos != bytes.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after footer",
            bytes.len() - dec.pos
        )));
    }
    Ok((chunks, times))
}

/// Validates a v3 chunk table against the header: exactly one meta chunk
/// first (at the fixed header boundary), contiguous chunk extents ending
/// at the footer, and probe chunks covering exactly the manifest's probe
/// range in order.
fn validate_chunk_table(
    chunks: &[ChunkEntry],
    footer_offset: u64,
    header: &FileHeader,
) -> Result<(), PersistError> {
    let corrupt = |why: String| PersistError::Corrupt(why);
    let first = chunks
        .first()
        .ok_or_else(|| corrupt("empty chunk table".into()))?;
    if !first.is_meta()
        || first.offset != HEADER_LEN as u64
        || first.first_probe != 0
        || first.n_probes != 0
    {
        return Err(corrupt(format!(
            "first chunk must be the meta chunk at byte {HEADER_LEN}"
        )));
    }
    let mut end = first.offset;
    let mut next_probe = header.manifest.probe_start;
    for (i, c) in chunks.iter().enumerate() {
        if c.offset != end {
            return Err(corrupt(format!(
                "chunk {i} at byte {} is not contiguous with the previous chunk (ends {end})",
                c.offset
            )));
        }
        if c.len < CHUNK_OVERHEAD as u64 {
            return Err(corrupt(format!("chunk {i} length {} is too short", c.len)));
        }
        end = c
            .offset
            .checked_add(c.len)
            .ok_or_else(|| corrupt(format!("chunk {i} extent overflows")))?;
        if i > 0 {
            if c.kind != CHUNK_PROBES {
                return Err(corrupt(format!(
                    "chunk {i} has kind {} (want probes)",
                    c.kind
                )));
            }
            if c.first_probe != next_probe || c.n_probes == 0 {
                return Err(corrupt(format!(
                    "chunk {i} covers probes {}..{} (expected to start at {next_probe})",
                    c.first_probe,
                    c.probe_end()
                )));
            }
            next_probe = c.probe_end();
        }
    }
    if end != footer_offset {
        return Err(corrupt(format!(
            "chunks end at byte {end} but the footer starts at {footer_offset}"
        )));
    }
    if next_probe != header.manifest.probe_end {
        return Err(corrupt(format!(
            "probe chunks cover {}..{next_probe} but the manifest promises {}..{}",
            header.manifest.probe_start, header.manifest.probe_start, header.manifest.probe_end
        )));
    }
    Ok(())
}

/// Serialises the legacy v2 monolithic payload (the whole collection as
/// one blob). Retained only for the v2 read-compat fixture encoder; v3
/// writers go through the chunked layout above.
fn enc_collection_v2(enc: &mut Enc, col: &Collection) {
    enc.usize(col.keys.len());
    for key in &col.keys {
        enc.str(&key.arch);
        enc_arch_set(enc, key.set);
        enc.opt_usize(key.bug);
    }
    enc.usize(col.probes.len());
    for p in &col.probes {
        enc.str(&p.id);
        enc.str(&p.benchmark);
        enc.f64(p.weight);
    }
    enc.usize(col.engines.len());
    for e in &col.engines {
        enc.str(&e.name);
        enc.duration(e.train_time);
        enc.duration(e.infer_time);
        enc.usize(e.deltas.len());
        for row in &e.deltas {
            enc.f64s(row);
        }
    }
    enc.usize(col.overall_ipc.len());
    for row in &col.overall_ipc {
        enc.f64s(row);
    }
    enc.usize(col.agg_features.len());
    for probe_rows in &col.agg_features {
        enc.usize(probe_rows.len());
        for row in probe_rows {
            enc.f64s(row);
        }
    }
    enc.usize(col.captures.len());
    for c in &col.captures {
        enc.str(&c.probe_id);
        enc.str(&c.arch);
        enc.opt_usize(c.bug);
        enc.str(&c.engine);
        enc.f64s(&c.simulated);
        enc.f64s(&c.inferred);
    }
    enc.usize(col.catalog.len());
    for bug in col.catalog.variants() {
        enc_bug(enc, bug);
    }
}

/// Decodes the legacy v2 monolithic payload (read-compat shim).
fn dec_collection_v2(dec: &mut Dec) -> Result<Collection, PersistError> {
    let n_keys = dec.len()?;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        keys.push(RunKey {
            arch: dec.str()?,
            set: dec_arch_set(dec)?,
            bug: dec.opt_usize()?,
        });
    }
    let n_probes = dec.len()?;
    let mut probes = Vec::with_capacity(n_probes);
    for _ in 0..n_probes {
        probes.push(ProbeMeta {
            id: dec.str()?,
            benchmark: dec.str()?,
            weight: dec.f64()?,
        });
    }
    let n_engines = dec.len()?;
    let mut engines = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        let name = dec.str()?;
        let train_time = dec.duration()?;
        let infer_time = dec.duration()?;
        let n_rows = dec.len()?;
        let mut deltas = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            deltas.push(dec.f64s()?);
        }
        engines.push(EngineResult {
            name,
            deltas,
            train_time,
            infer_time,
        });
    }
    let n_overall = dec.len()?;
    let mut overall_ipc = Vec::with_capacity(n_overall);
    for _ in 0..n_overall {
        overall_ipc.push(dec.f64s()?);
    }
    let n_agg = dec.len()?;
    let mut agg_features = Vec::with_capacity(n_agg);
    for _ in 0..n_agg {
        let n_rows = dec.len()?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            rows.push(dec.f64s()?);
        }
        agg_features.push(rows);
    }
    let n_caps = dec.len()?;
    let mut captures = Vec::with_capacity(n_caps);
    for _ in 0..n_caps {
        captures.push(CapturedSeries {
            probe_id: dec.str()?,
            arch: dec.str()?,
            bug: dec.opt_usize()?,
            engine: dec.str()?,
            simulated: dec.f64s()?,
            inferred: dec.f64s()?,
        });
    }
    let n_bugs = dec.len()?;
    if n_bugs == 0 {
        return Err(PersistError::Corrupt("empty bug catalogue".into()));
    }
    let mut variants = Vec::with_capacity(n_bugs);
    for _ in 0..n_bugs {
        variants.push(dec_bug(dec)?);
    }
    Ok(Collection {
        keys,
        probes,
        engines,
        overall_ipc,
        agg_features,
        captures,
        catalog: BugCatalog::new(variants),
    })
}

// --------------------------------------------------------------------------
// File format
// --------------------------------------------------------------------------

/// Size of the fixed v2 header: magic, version, corpus revision, kind,
/// fingerprint and the five shard-manifest fields (see `docs/FORMAT.md`).
const HEADER_LEN: usize = 4 + 4 + 4 + 1 + 8 + (4 + 4 + 8 + 8 + 8);

fn enc_header(enc: &mut Enc, header: &FileHeader, version: u32) {
    enc.buf.extend_from_slice(&MAGIC);
    enc.u32(version);
    enc.u32(header.corpus_revision);
    enc.u8(header.kind.wire());
    enc.u64(header.fingerprint);
    enc.u32(header.manifest.index);
    enc.u32(header.manifest.count);
    enc.u64(header.manifest.probe_start);
    enc.u64(header.manifest.probe_end);
    enc.u64(header.manifest.total_probes);
}

fn dec_header(dec: &mut Dec) -> Result<(FileHeader, u32), PersistError> {
    if dec.take(4)? != MAGIC {
        return Err(PersistError::Corrupt("bad magic".into()));
    }
    let version = dec.u32()?;
    if version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let corpus_revision = dec.u32()?;
    let kind = ExperimentKind::from_wire(dec.u8()?)?;
    let fingerprint = dec.u64()?;
    let manifest = ShardManifest {
        index: dec.u32()?,
        count: dec.u32()?,
        probe_start: dec.u64()?,
        probe_end: dec.u64()?,
        total_probes: dec.u64()?,
    };
    manifest.validate()?;
    Ok((
        FileHeader {
            kind,
            corpus_revision,
            fingerprint,
            manifest,
        },
        version,
    ))
}

/// Splits a collection into per-probe [`ProbeRecord`]s, bucketing the
/// flat capture list by probe id.
///
/// # Panics
///
/// Panics if a capture names a probe id absent from `col.probes` — such
/// a collection is internally inconsistent and must never reach disk.
fn collection_to_records(col: &Collection) -> Vec<ProbeRecord> {
    let index: BTreeMap<&str, usize> = col
        .probes
        .iter()
        .enumerate()
        .map(|(i, p)| (p.id.as_str(), i))
        .collect();
    let mut captures: Vec<Vec<CapturedSeries>> = vec![Vec::new(); col.probes.len()];
    for c in &col.captures {
        let i = *index
            .get(c.probe_id.as_str())
            // pblint: allow(panic-policy) -- encode-side, documented under
            // `# Panics`: an internally inconsistent collection must never
            // reach disk, and callers construct probes/captures together.
            .unwrap_or_else(|| panic!("capture names unknown probe id {:?}", c.probe_id));
        captures[i].push(c.clone());
    }
    let mut captures = captures.into_iter();
    col.probes
        .iter()
        .enumerate()
        .map(|(i, p)| ProbeRecord {
            meta: p.clone(),
            overall: col.overall_ipc[i].clone(),
            agg: col.agg_features[i].clone(),
            deltas: col.engines.iter().map(|e| e.deltas[i].clone()).collect(),
            // pblint: allow(panic-policy) -- encode-side: the bucket vec is
            // built with exactly `col.probes.len()` entries four lines up.
            captures: captures.next().expect("one bucket per probe"),
        })
        .collect()
}

/// Serialises a collection (full or one shard) under its header in the
/// v3 chunked layout.
///
/// Layout: fixed header, one meta chunk, one probe chunk per probe, the
/// footer (chunk index + per-engine timing totals), then the trailer
/// `footer_offset u64 | fnv64` whose checksum covers every preceding
/// byte (see `docs/FORMAT.md`).
///
/// # Panics
///
/// Panics if the manifest's probe range does not match the collection's
/// probe count, or a capture names an unknown probe id — the manifest
/// and payload describe each other; an inconsistent pair must never
/// reach disk.
pub fn encode_collection_with(col: &Collection, header: &FileHeader) -> Vec<u8> {
    assert_eq!(
        header.manifest.probes(),
        col.probes.len() as u64,
        "shard manifest must cover exactly the collection's probes"
    );
    let mut enc = Enc::new();
    enc_header(&mut enc, header, FORMAT_VERSION);
    let mut chunks = Vec::with_capacity(col.probes.len() + 1);
    let mut push_chunk = |enc: &mut Enc, kind, first_probe, n_probes, payload: &[u8]| {
        let offset = enc.buf.len() as u64;
        let (bytes, checksum) = build_chunk(kind, first_probe, n_probes, payload);
        enc.buf.extend_from_slice(&bytes);
        chunks.push(ChunkEntry {
            offset,
            len: bytes.len() as u64,
            kind,
            first_probe,
            n_probes,
            checksum,
        });
    };
    let meta = MetaSection {
        keys: col.keys.clone(),
        engine_names: col.engines.iter().map(|e| e.name.clone()).collect(),
        catalog: col.catalog.clone(),
    };
    let mut payload = Enc::new();
    enc_meta_section(&mut payload, &meta);
    push_chunk(&mut enc, CHUNK_META, 0, 0, &payload.buf);
    for (i, rec) in collection_to_records(col).iter().enumerate() {
        let mut payload = Enc::new();
        enc_probe_record(&mut payload, rec);
        push_chunk(
            &mut enc,
            CHUNK_PROBES,
            header.manifest.probe_start + i as u64,
            PROBES_PER_CHUNK,
            &payload.buf,
        );
    }
    let times: Vec<(Duration, Duration)> = col
        .engines
        .iter()
        .map(|e| (e.train_time, e.infer_time))
        .collect();
    let footer_offset = enc.buf.len() as u64;
    enc.buf.extend_from_slice(&enc_footer(&chunks, &times));
    enc.u64(footer_offset);
    let checksum = fnv1a(&enc.buf);
    enc.u64(checksum);
    enc.buf
}

/// Serialises a collection in the **legacy v2** monolithic layout.
/// Production writers always emit v3 — this exists so tests can mint v2
/// fixtures and prove the read-compat shim keeps old caches loadable.
pub fn encode_collection_v2_with(col: &Collection, header: &FileHeader) -> Vec<u8> {
    assert_eq!(
        header.manifest.probes(),
        col.probes.len() as u64,
        "shard manifest must cover exactly the collection's probes"
    );
    let mut enc = Enc::new();
    enc_header(&mut enc, header, LEGACY_FORMAT_VERSION);
    enc_collection_v2(&mut enc, col);
    let checksum = fnv1a(&enc.buf);
    enc.u64(checksum);
    enc.buf
}

/// Serialises a full (unsharded) core-experiment collection under a
/// config fingerprint; the general form is [`encode_collection_with`].
pub fn encode_collection(col: &Collection, fingerprint: u64) -> Vec<u8> {
    encode_collection_with(
        col,
        &FileHeader {
            kind: ExperimentKind::Core,
            corpus_revision: CORPUS_REVISION,
            fingerprint,
            manifest: ShardManifest::full(col.probes.len()),
        },
    )
}

/// Reads and validates only the fixed-size header of a serialised
/// collection: magic, version and manifest sanity — **not** the trailing
/// checksum, so corruption inside the payload goes undetected here. Cache
/// tooling uses this to triage files cheaply; anything that consumes the
/// payload must go through [`decode_collection_with`].
pub fn read_header(bytes: &[u8]) -> Result<FileHeader, PersistError> {
    dec_header(&mut Dec::new(bytes)).map(|(h, _)| h)
}

/// [`read_header`] that also reports the file's format version (2 or 3),
/// for tooling that must branch between the legacy monolithic layout and
/// the v3 chunked one.
pub fn read_header_with_version(bytes: &[u8]) -> Result<(FileHeader, u32), PersistError> {
    dec_header(&mut Dec::new(bytes))
}

/// [`read_header`] plus the trailing-checksum validation: catches
/// truncation and corruption anywhere in the file without paying for a
/// payload decode. This is the orchestrator's per-shard success check —
/// full decode correctness is still enforced by the assembly step, which
/// goes through [`decode_collection_with`].
pub fn read_header_checked(bytes: &[u8]) -> Result<FileHeader, PersistError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(PersistError::Corrupt(format!(
            "{} bytes is too short for a collection file",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let (header, _) = dec_header(&mut Dec::new(body))?;
    let stored_checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_checksum {
        return Err(PersistError::Corrupt("checksum mismatch".into()));
    }
    Ok(header)
}

/// Decodes a serialised collection, validating magic, version, checksum,
/// then (when `expected` is given) the config fingerprint, then the
/// payload and its consistency with the shard manifest. Accepts both full
/// and shard files in either the v3 chunked or the legacy v2 monolithic
/// layout; the returned header says which shard this was.
pub fn decode_collection_with(
    bytes: &[u8],
    expected: Option<u64>,
) -> Result<(Collection, FileHeader), PersistError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(PersistError::Corrupt(format!(
            "{} bytes is too short for a collection file",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut dec = Dec::new(body);
    let (header, version) = dec_header(&mut dec)?;
    let stored_checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_checksum {
        return Err(PersistError::Corrupt("checksum mismatch".into()));
    }
    if let Some(expected) = expected {
        if header.fingerprint != expected {
            return Err(PersistError::Fingerprint {
                found: header.fingerprint,
                expected,
            });
        }
    }
    let col = if version == LEGACY_FORMAT_VERSION {
        let col = dec_collection_v2(&mut dec)?;
        if dec.pos != body.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after payload",
                body.len() - dec.pos
            )));
        }
        col
    } else {
        decode_v3_body(body, &header)?
    };
    if header.manifest.probes() != col.probes.len() as u64 {
        return Err(PersistError::Corrupt(format!(
            "manifest covers {} probes but payload holds {}",
            header.manifest.probes(),
            col.probes.len()
        )));
    }
    Ok((col, header))
}

/// Decodes the v3 chunked body of `body` (the file minus its final
/// whole-file checksum) into a [`Collection`]. The caller has already
/// validated magic, version and the whole-file checksum.
fn decode_v3_body(body: &[u8], header: &FileHeader) -> Result<Collection, PersistError> {
    // Trailer: the last 8 bytes of `body` are the footer offset (the
    // whole-file checksum that follows has been split off already).
    if body.len() < HEADER_LEN + 8 {
        return Err(PersistError::Corrupt(
            "file too short for a v3 trailer".into(),
        ));
    }
    let (rest, off_bytes) = body.split_at(body.len() - 8);
    let footer_offset = u64::from_le_bytes(off_bytes.try_into().expect("8 bytes"));
    let footer_offset = usize::try_from(footer_offset)
        .ok()
        .filter(|&o| o >= HEADER_LEN && o <= rest.len())
        .ok_or_else(|| {
            PersistError::Corrupt(format!("footer offset {footer_offset} is out of bounds"))
        })?;
    let (chunks, times) = dec_footer(&rest[footer_offset..])?;
    validate_chunk_table(&chunks, footer_offset as u64, header)?;
    assemble_v3(body, &chunks, &times)
}

/// Decodes the meta chunk plus every probe chunk and assembles them into
/// a [`Collection`]. Chunk checksums are validated both against the
/// bytes and against the footer's copy.
fn assemble_v3(
    bytes: &[u8],
    chunks: &[ChunkEntry],
    times: &[(Duration, Duration)],
) -> Result<Collection, PersistError> {
    let chunk_at = |entry: &ChunkEntry| -> Result<ParsedChunk<'_>, PersistError> {
        let offset = entry.offset as usize;
        let end = offset + entry.len as usize;
        if end > bytes.len() {
            return Err(PersistError::Corrupt(format!(
                "chunk at byte {offset} extends past end of file"
            )));
        }
        let parsed = parse_chunk(&bytes[offset..end], offset)?;
        if parsed.len != entry.len as usize
            || parsed.checksum != entry.checksum
            || parsed.kind != entry.kind
            || parsed.first_probe != entry.first_probe
            || parsed.n_probes != entry.n_probes
        {
            return Err(PersistError::Corrupt(format!(
                "chunk at byte {offset} disagrees with its footer index entry"
            )));
        }
        Ok(parsed)
    };
    let meta_chunk = chunk_at(&chunks[0])?;
    let meta = {
        let mut dec = Dec::new(meta_chunk.payload);
        let meta = dec_meta_section(&mut dec)?;
        if dec.pos != meta_chunk.payload.len() {
            return Err(PersistError::Corrupt(
                "trailing bytes after meta chunk payload".into(),
            ));
        }
        meta
    };
    if times.len() != meta.engine_names.len() {
        return Err(PersistError::Corrupt(format!(
            "footer times {} engines but the roster has {}",
            times.len(),
            meta.engine_names.len()
        )));
    }
    let mut col = Collection {
        keys: meta.keys,
        probes: Vec::new(),
        engines: meta
            .engine_names
            .into_iter()
            .zip(times)
            .map(|(name, &(train_time, infer_time))| EngineResult {
                name,
                deltas: Vec::new(),
                train_time,
                infer_time,
            })
            .collect(),
        overall_ipc: Vec::new(),
        agg_features: Vec::new(),
        captures: Vec::new(),
        catalog: meta.catalog,
    };
    for entry in &chunks[1..] {
        let chunk = chunk_at(entry)?;
        let mut dec = Dec::new(chunk.payload);
        for _ in 0..chunk.n_probes {
            let rec = dec_probe_record(&mut dec, col.engines.len())?;
            col.probes.push(rec.meta);
            col.overall_ipc.push(rec.overall);
            col.agg_features.push(rec.agg);
            for (engine, row) in col.engines.iter_mut().zip(rec.deltas) {
                engine.deltas.push(row);
            }
            col.captures.extend(rec.captures);
        }
        if dec.pos != chunk.payload.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after probe chunk payload at byte {}",
                chunk.payload.len() - dec.pos,
                entry.offset
            )));
        }
    }
    Ok(col)
}

/// Decodes a *full* serialised collection, validating magic, version,
/// checksum and the config fingerprint (in that order). A shard file is
/// rejected with [`PersistError::Shard`] — partial corpora must go
/// through [`merge_collections`].
pub fn decode_collection(bytes: &[u8], expected: u64) -> Result<Collection, PersistError> {
    let (col, header) = decode_collection_with(bytes, Some(expected))?;
    if !header.manifest.is_full() {
        return Err(PersistError::Shard(format!(
            "expected a full collection, found {}",
            header.manifest
        )));
    }
    Ok(col)
}

// --------------------------------------------------------------------------
// Crash recovery: part-file scanning and the resumable shard writer
// --------------------------------------------------------------------------

/// The durable prefix recovered from a half-written v3 part file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredPrefix {
    /// The header the crashed writer was writing under.
    pub header: FileHeader,
    /// Number of probes whose chunks are fully durable (checksum-valid,
    /// payload-decodable, contiguous from the manifest's first probe).
    pub probes: u64,
    /// Byte length of the durable prefix (header + meta chunk + the
    /// durable probe chunks). Truncating the file here yields a clean
    /// resume point.
    pub durable_len: u64,
    /// Bytes of torn tail after the durable prefix (0 when the writer
    /// died exactly on a chunk boundary).
    pub torn_bytes: u64,
    /// Index entries of the durable chunks (meta chunk first).
    pub chunks: Vec<ChunkEntry>,
}

/// Scans the bytes of a half-written v3 part file and recovers its
/// durable chunk prefix.
///
/// The scan validates the fixed header, then requires a fully valid meta
/// chunk (checksum *and* payload decode) — a part without one carries no
/// recoverable work and is rejected with [`PersistError::Corrupt`].
/// Probe chunks are then walked in order; each must checksum-validate,
/// payload-decode and be contiguous with the previous one. The walk
/// stops at the first violation: everything before it is the durable
/// prefix, everything after is the torn tail. A *finished* file also
/// scans cleanly — its footer bytes simply fail to parse as a chunk and
/// count as torn tail, so callers should try a normal load first.
///
/// Only [`FORMAT_VERSION`] parts are resumable; a v2 file is rejected
/// with [`PersistError::Version`].
pub fn scan_part(bytes: &[u8]) -> Result<RecoveredPrefix, PersistError> {
    let mut dec = Dec::new(bytes);
    let (header, version) = dec_header(&mut dec)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let meta_chunk = parse_chunk(&bytes[HEADER_LEN..], HEADER_LEN)
        .map_err(|e| PersistError::Corrupt(format!("part file has no valid meta chunk: {e}")))?;
    if meta_chunk.kind != CHUNK_META || meta_chunk.first_probe != 0 || meta_chunk.n_probes != 0 {
        return Err(PersistError::Corrupt(
            "part file's first chunk is not a meta chunk".into(),
        ));
    }
    let meta = {
        let mut dec = Dec::new(meta_chunk.payload);
        let meta = dec_meta_section(&mut dec).map_err(|e| {
            PersistError::Corrupt(format!("part file's meta chunk does not decode: {e}"))
        })?;
        if dec.pos != meta_chunk.payload.len() {
            return Err(PersistError::Corrupt(
                "trailing bytes after part file's meta chunk payload".into(),
            ));
        }
        meta
    };
    let n_engines = meta.engine_names.len();
    let mut chunks = vec![ChunkEntry {
        offset: HEADER_LEN as u64,
        len: meta_chunk.len as u64,
        kind: CHUNK_META,
        first_probe: 0,
        n_probes: 0,
        checksum: meta_chunk.checksum,
    }];
    let mut offset = HEADER_LEN + meta_chunk.len;
    let mut next_probe = header.manifest.probe_start;
    while offset < bytes.len() && next_probe < header.manifest.probe_end {
        let chunk = match parse_chunk(&bytes[offset..], offset) {
            Ok(c) => c,
            // Torn tail: a partially flushed chunk, or (for a finished
            // file) the footer. Either way the durable prefix ends here.
            Err(_) => break,
        };
        if chunk.kind != CHUNK_PROBES
            || chunk.first_probe != next_probe
            || chunk.n_probes == 0
            || chunk.first_probe + u64::from(chunk.n_probes) > header.manifest.probe_end
        {
            break;
        }
        // A checksum-valid chunk whose payload does not decode is still
        // torn — never resume on top of undecodable probe data.
        let decodes = {
            let mut dec = Dec::new(chunk.payload);
            (0..chunk.n_probes).all(|_| dec_probe_record(&mut dec, n_engines).is_ok())
                && dec.pos == chunk.payload.len()
        };
        if !decodes {
            break;
        }
        chunks.push(ChunkEntry {
            offset: offset as u64,
            len: chunk.len as u64,
            kind: chunk.kind,
            first_probe: chunk.first_probe,
            n_probes: chunk.n_probes,
            checksum: chunk.checksum,
        });
        next_probe += u64::from(chunk.n_probes);
        offset += chunk.len;
    }
    Ok(RecoveredPrefix {
        probes: next_probe - header.manifest.probe_start,
        durable_len: offset as u64,
        torn_bytes: (bytes.len() - offset) as u64,
        chunks,
        header,
    })
}

/// [`scan_part`] over a file on disk.
pub fn scan_part_file(path: &Path) -> Result<RecoveredPrefix, PersistError> {
    let bytes = fs::read(path)?;
    scan_part(&bytes)
}

/// Incremental writer of one v3 shard file with crash recovery.
///
/// The writer appends to a deterministic sibling part file
/// ([`part_path_for`]) — invisible to every reader and to cache
/// assembly — and atomically renames it over the target on
/// [`finish`](Self::finish). Each probe goes to disk as one
/// self-checksummed chunk the moment it is collected, so a killed
/// process loses at most the chunk it was mid-write on. A later
/// [`create_or_resume`](Self::create_or_resume) for the same target
/// finds the part, recovers its durable chunk prefix ([`scan_part`]),
/// truncates the torn tail and continues from the first missing probe.
///
/// Consistency model: process kill, not power loss — chunks are not
/// fsynced (matching the v2 writer's temp-file + rename discipline).
/// Engine wall-clock timings accumulate in memory and land in the
/// footer; a resumed attempt restarts them at zero, so recovered files
/// compare bit-identical to uninterrupted ones only after
/// `Collection::zero_timings`.
///
/// Dropping an unfinished writer intentionally leaves the part file on
/// disk — that *is* the resumable artifact.
pub struct ShardStreamWriter {
    target: PathBuf,
    part: PathBuf,
    file: io::BufWriter<fs::File>,
    header: FileHeader,
    n_engines: usize,
    chunks: Vec<ChunkEntry>,
    offset: u64,
    hash: u64,
    next_probe: u64,
    times: Vec<(Duration, Duration)>,
    resumed: u64,
}

impl ShardStreamWriter {
    /// Opens a writer for `target`, resuming from a durable part-file
    /// prefix when one exists and matches this pass's identity
    /// (byte-identical header + meta chunk), and starting fresh
    /// otherwise. `keys`, `engine_names` and `catalog` are the
    /// probe-independent identity the meta chunk records.
    ///
    /// # Panics
    ///
    /// Panics if the manifest's probe range is empty of meaning
    /// (`probe_start > probe_end` is rejected by manifest validation on
    /// every read path, so only a hand-built inconsistent header can
    /// trip this).
    pub fn create_or_resume(
        target: &Path,
        header: &FileHeader,
        keys: &[RunKey],
        engine_names: &[String],
        catalog: &BugCatalog,
    ) -> Result<Self, PersistError> {
        let mut expected = Enc::new();
        enc_header(&mut expected, header, FORMAT_VERSION);
        let meta = MetaSection {
            keys: keys.to_vec(),
            engine_names: engine_names.to_vec(),
            catalog: catalog.clone(),
        };
        let mut payload = Enc::new();
        enc_meta_section(&mut payload, &meta);
        let (meta_bytes, meta_checksum) = build_chunk(CHUNK_META, 0, 0, &payload.buf);
        expected.buf.extend_from_slice(&meta_bytes);
        let meta_entry = ChunkEntry {
            offset: HEADER_LEN as u64,
            len: meta_bytes.len() as u64,
            kind: CHUNK_META,
            first_probe: 0,
            n_probes: 0,
            checksum: meta_checksum,
        };
        let part = part_path_for(target);

        // A durable prefix is only worth resuming when its header and
        // meta chunk are byte-identical to what this pass would write —
        // anything else (other config, other shard, stale identity)
        // starts fresh.
        let recovered = match fs::read(&part) {
            Ok(bytes) => scan_part(&bytes).ok().and_then(|p| {
                let durable = usize::try_from(p.durable_len).ok()?;
                (durable >= expected.buf.len() && bytes[..expected.buf.len()] == expected.buf[..])
                    .then(|| (p, fnv1a(&bytes[..durable])))
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let zero = vec![(Duration::ZERO, Duration::ZERO); engine_names.len()];
        match recovered {
            Some((prefix, hash)) => {
                let file = fs::OpenOptions::new().write(true).open(&part)?;
                file.set_len(prefix.durable_len)?;
                let mut file = io::BufWriter::new(file);
                file.seek(SeekFrom::End(0))?;
                Ok(ShardStreamWriter {
                    target: target.to_path_buf(),
                    part,
                    file,
                    header: *header,
                    n_engines: engine_names.len(),
                    offset: prefix.durable_len,
                    hash,
                    next_probe: header.manifest.probe_start + prefix.probes,
                    times: zero,
                    resumed: prefix.probes,
                    chunks: prefix.chunks,
                })
            }
            None => {
                let mut file = io::BufWriter::new(fs::File::create(&part)?);
                file.write_all(&expected.buf)?;
                Ok(ShardStreamWriter {
                    target: target.to_path_buf(),
                    part,
                    file,
                    header: *header,
                    n_engines: engine_names.len(),
                    offset: expected.buf.len() as u64,
                    hash: fnv1a(&expected.buf),
                    next_probe: header.manifest.probe_start,
                    times: zero,
                    resumed: 0,
                    chunks: vec![meta_entry],
                })
            }
        }
    }

    /// Probes already durable when this writer opened — the caller
    /// should skip exactly this many and collect the rest.
    pub fn resumed_probes(&self) -> u64 {
        self.resumed
    }

    /// Absolute index of the next probe this writer expects.
    pub fn next_probe(&self) -> u64 {
        self.next_probe
    }

    /// The header this writer writes under.
    pub fn header(&self) -> &FileHeader {
        &self.header
    }

    /// Appends one probe as one chunk and flushes it to the OS, making
    /// it durable against a process kill. `times` are this probe's
    /// per-engine `(train, infer)` wall-clock contributions, accumulated
    /// into the footer totals.
    ///
    /// # Panics
    ///
    /// Panics if the record's delta-row or `times` count disagrees with
    /// the engine roster, or on an append past the manifest's probe end
    /// — both are caller bugs, never disk states.
    pub fn append_probe(
        &mut self,
        rec: &ProbeRecord,
        times: &[(Duration, Duration)],
    ) -> Result<(), PersistError> {
        assert!(
            self.next_probe < self.header.manifest.probe_end,
            "append past the manifest's probe range"
        );
        assert_eq!(rec.deltas.len(), self.n_engines, "one delta row per engine");
        assert_eq!(times.len(), self.n_engines, "one time pair per engine");
        let mut payload = Enc::new();
        enc_probe_record(&mut payload, rec);
        let (bytes, checksum) = build_chunk(
            CHUNK_PROBES,
            self.next_probe,
            PROBES_PER_CHUNK,
            &payload.buf,
        );
        self.file.write_all(&bytes)?;
        self.file.flush()?;
        self.hash = fnv1a_update(self.hash, &bytes);
        self.chunks.push(ChunkEntry {
            offset: self.offset,
            len: bytes.len() as u64,
            kind: CHUNK_PROBES,
            first_probe: self.next_probe,
            n_probes: PROBES_PER_CHUNK,
            checksum,
        });
        self.offset += bytes.len() as u64;
        self.next_probe += 1;
        for ((train, infer), &(t, i)) in self.times.iter_mut().zip(times) {
            *train += t;
            *infer += i;
        }
        Ok(())
    }

    /// Seals the file — footer, trailer, whole-file checksum — and
    /// atomically renames the part over the target. Consumes the writer.
    ///
    /// # Panics
    ///
    /// Panics if the manifest's probe range has not been fully appended:
    /// a partial shard must stay a part file, never become a target.
    pub fn finish(mut self) -> Result<FileHeader, PersistError> {
        assert_eq!(
            self.next_probe, self.header.manifest.probe_end,
            "finish before the manifest's probe range is complete"
        );
        let mut tail = Enc::new();
        tail.buf = enc_footer(&self.chunks, &self.times);
        tail.u64(self.offset);
        self.hash = fnv1a_update(self.hash, &tail.buf);
        tail.u64(self.hash);
        self.file.write_all(&tail.buf)?;
        self.file.flush()?;
        if let Err(e) = fs::rename(&self.part, &self.target) {
            return Err(e.into());
        }
        Ok(self.header)
    }
}

// --------------------------------------------------------------------------
// Streaming readers: random access, verification, shard concatenation
// --------------------------------------------------------------------------

/// Reads the 16-byte v3 trailer and the footer of an open file, returning
/// `(footer_offset, stored file checksum, chunk index, engine times)`.
/// Validates footer bounds and exact decode, not the chunk table.
#[allow(clippy::type_complexity)]
fn read_trailer_and_footer(
    file: &mut fs::File,
    file_len: u64,
) -> Result<(u64, u64, Vec<ChunkEntry>, Vec<(Duration, Duration)>), PersistError> {
    let min = (HEADER_LEN + CHUNK_OVERHEAD + TRAILER_LEN) as u64;
    if file_len < min {
        return Err(PersistError::Corrupt(format!(
            "{file_len} bytes is too short for a v3 collection file"
        )));
    }
    let mut trailer = [0u8; TRAILER_LEN];
    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
    file.read_exact(&mut trailer)?;
    let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
    let stored_fnv = u64::from_le_bytes(trailer[8..].try_into().expect("8 bytes"));
    let footer_end = file_len - TRAILER_LEN as u64;
    if footer_offset < HEADER_LEN as u64 || footer_offset > footer_end {
        return Err(PersistError::Corrupt(format!(
            "footer offset {footer_offset} is out of bounds"
        )));
    }
    let mut footer = vec![0u8; (footer_end - footer_offset) as usize];
    file.seek(SeekFrom::Start(footer_offset))?;
    file.read_exact(&mut footer)?;
    let (chunks, times) = dec_footer(&footer)?;
    Ok((footer_offset, stored_fnv, chunks, times))
}

/// Reads the fixed header of an open file, requiring the v3 layout (a v2
/// file surfaces as [`PersistError::Version`] so callers can fall back
/// to a full decode).
fn read_v3_file_header(file: &mut fs::File) -> Result<FileHeader, PersistError> {
    let mut buf = [0u8; HEADER_LEN];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut buf)?;
    let (header, version) = dec_header(&mut Dec::new(&buf))?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    Ok(header)
}

/// Reads one chunk of an open file into `buf` and validates it against
/// its footer index entry (bounds, frame fields and checksum).
fn read_chunk_at<'b>(
    file: &mut fs::File,
    file_len: u64,
    entry: &ChunkEntry,
    buf: &'b mut Vec<u8>,
) -> Result<ParsedChunk<'b>, PersistError> {
    match entry.offset.checked_add(entry.len) {
        Some(end) if end <= file_len => {}
        _ => {
            return Err(PersistError::Corrupt(format!(
                "chunk at byte {} extends past end of file",
                entry.offset
            )));
        }
    }
    buf.resize(entry.len as usize, 0);
    file.seek(SeekFrom::Start(entry.offset))?;
    file.read_exact(buf)?;
    let parsed = parse_chunk(buf, entry.offset as usize)?;
    if parsed.len != entry.len as usize
        || parsed.checksum != entry.checksum
        || parsed.kind != entry.kind
        || parsed.first_probe != entry.first_probe
        || parsed.n_probes != entry.n_probes
    {
        return Err(PersistError::Corrupt(format!(
            "chunk at byte {} disagrees with its footer index entry",
            entry.offset
        )));
    }
    Ok(parsed)
}

/// Random-access reader over one v3 collection file: opening touches only
/// the header, trailer, footer and meta chunk, and
/// [`read_probe`](Self::read_probe) then decodes exactly one chunk — so
/// replaying a single probe from a full-size corpus costs O(chunk)
/// memory, not O(corpus).
///
/// Integrity model: every byte this reader consumes is covered by a
/// validated per-chunk checksum cross-checked against the footer index;
/// the whole-file checksum is *not* recomputed (that would cost a full
/// sequential read — use [`verify_stream`] for that).
pub struct ProbeReader {
    file: fs::File,
    file_len: u64,
    header: FileHeader,
    chunks: Vec<ChunkEntry>,
    times: Vec<(Duration, Duration)>,
    keys: Vec<RunKey>,
    engine_names: Vec<String>,
    catalog: BugCatalog,
}

impl ProbeReader {
    /// Opens `path`, validating header, footer, chunk table and the meta
    /// chunk — but no probe chunk. When `expected` is given, the config
    /// fingerprint must match. A v2 file is [`PersistError::Version`].
    pub fn open(path: &Path, expected: Option<u64>) -> Result<Self, PersistError> {
        let mut file = fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let header = read_v3_file_header(&mut file)?;
        if let Some(expected) = expected {
            if header.fingerprint != expected {
                return Err(PersistError::Fingerprint {
                    found: header.fingerprint,
                    expected,
                });
            }
        }
        let (footer_offset, _, chunks, times) = read_trailer_and_footer(&mut file, file_len)?;
        validate_chunk_table(&chunks, footer_offset, &header)?;
        let mut buf = Vec::new();
        let meta_chunk = read_chunk_at(&mut file, file_len, &chunks[0], &mut buf)?;
        let meta = {
            let mut dec = Dec::new(meta_chunk.payload);
            let meta = dec_meta_section(&mut dec)?;
            if dec.pos != meta_chunk.payload.len() {
                return Err(PersistError::Corrupt(
                    "trailing bytes after meta chunk payload".into(),
                ));
            }
            meta
        };
        if times.len() != meta.engine_names.len() {
            return Err(PersistError::Corrupt(format!(
                "footer times {} engines but the roster has {}",
                times.len(),
                meta.engine_names.len()
            )));
        }
        Ok(ProbeReader {
            file,
            file_len,
            header,
            chunks,
            times,
            keys: meta.keys,
            engine_names: meta.engine_names,
            catalog: meta.catalog,
        })
    }

    /// The file's header.
    pub fn header(&self) -> &FileHeader {
        &self.header
    }

    /// The footer's chunk index (meta chunk first).
    pub fn chunk_index(&self) -> &[ChunkEntry] {
        &self.chunks
    }

    /// Per-engine `(train, infer)` wall-clock totals from the footer.
    pub fn engine_times(&self) -> &[(Duration, Duration)] {
        &self.times
    }

    /// The run-key axis recorded in the meta chunk.
    pub fn keys(&self) -> &[RunKey] {
        &self.keys
    }

    /// The engine roster recorded in the meta chunk.
    pub fn engine_names(&self) -> &[String] {
        &self.engine_names
    }

    /// The bug catalogue recorded in the meta chunk.
    pub fn catalog(&self) -> &BugCatalog {
        &self.catalog
    }

    /// Reads and decodes the single probe `probe` (absolute index of the
    /// producing pass), touching only its chunk.
    pub fn read_probe(&mut self, probe: u64) -> Result<ProbeRecord, PersistError> {
        let m = &self.header.manifest;
        if probe < m.probe_start || probe >= m.probe_end {
            return Err(PersistError::Shard(format!(
                "probe {probe} is outside this file's {m}"
            )));
        }
        // Probe chunks are sorted by first_probe (validate_chunk_table):
        // the containing chunk is the last one starting at or before it.
        let probes = &self.chunks[1..];
        let i = probes.partition_point(|c| c.first_probe <= probe) - 1;
        let entry = probes[i];
        debug_assert!(probe >= entry.first_probe && probe < entry.probe_end());
        let mut buf = Vec::new();
        let chunk = read_chunk_at(&mut self.file, self.file_len, &entry, &mut buf)?;
        let mut dec = Dec::new(chunk.payload);
        let mut rec = None;
        for p in entry.first_probe..entry.probe_end() {
            let r = dec_probe_record(&mut dec, self.engine_names.len())?;
            if p == probe {
                rec = Some(r);
                break;
            }
        }
        rec.ok_or_else(|| {
            PersistError::Corrupt(format!(
                "chunk starting at probe {} decodes without covering probe {probe}",
                entry.first_probe
            ))
        })
    }
}

/// Verifies a v3 file chunk-by-chunk in O(chunk) memory: header, footer
/// bounds and chunk-table consistency first, then one sequential pass
/// that revalidates every chunk's checksum *and* payload decode against
/// the footer index while folding the whole-file checksum incrementally,
/// finally compared against the stored trailer value. `on_chunk` fires
/// after each chunk validates — tooling uses it for per-chunk status.
/// Returns the header on success.
///
/// A v2 file is [`PersistError::Version`]; callers that still want to
/// verify it fall back to a full [`decode_collection_with`].
pub fn verify_stream(
    path: &Path,
    expected: Option<u64>,
    mut on_chunk: impl FnMut(&ChunkEntry),
) -> Result<FileHeader, PersistError> {
    let mut file = fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let header = read_v3_file_header(&mut file)?;
    if let Some(expected) = expected {
        if header.fingerprint != expected {
            return Err(PersistError::Fingerprint {
                found: header.fingerprint,
                expected,
            });
        }
    }
    let (footer_offset, stored_fnv, chunks, times) = read_trailer_and_footer(&mut file, file_len)?;
    validate_chunk_table(&chunks, footer_offset, &header)?;
    // Sequential pass with one reused buffer and an incremental hash.
    let mut head = [0u8; HEADER_LEN];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut head)?;
    let mut hash = fnv1a(&head);
    let mut buf = Vec::new();
    let mut n_engines = None;
    for entry in &chunks {
        let chunk = read_chunk_at(&mut file, file_len, entry, &mut buf)?;
        let mut dec = Dec::new(chunk.payload);
        match n_engines {
            None => {
                let meta = dec_meta_section(&mut dec)?;
                if times.len() != meta.engine_names.len() {
                    return Err(PersistError::Corrupt(format!(
                        "footer times {} engines but the roster has {}",
                        times.len(),
                        meta.engine_names.len()
                    )));
                }
                n_engines = Some(meta.engine_names.len());
            }
            Some(n) => {
                for _ in 0..chunk.n_probes {
                    dec_probe_record(&mut dec, n)?;
                }
            }
        }
        if dec.pos != chunk.payload.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after chunk payload at byte {}",
                chunk.payload.len() - dec.pos,
                entry.offset
            )));
        }
        hash = fnv1a_update(hash, &buf);
        on_chunk(entry);
    }
    // Footer + the trailer's footer-offset field are inside the
    // whole-file checksum; only the final 8 checksum bytes are not.
    let mut tail = vec![0u8; (file_len - 8 - footer_offset) as usize];
    file.seek(SeekFrom::Start(footer_offset))?;
    file.read_exact(&mut tail)?;
    hash = fnv1a_update(hash, &tail);
    if hash != stored_fnv {
        return Err(PersistError::Corrupt("checksum mismatch".into()));
    }
    Ok(header)
}

/// A sibling temp path unique per process and call, for atomic
/// write-then-rename publication ([`is_temp_file_name`] grammar).
fn temp_sibling(path: &Path) -> PathBuf {
    // Unique per process and call: concurrent savers of the same path must
    // not clobber each other's in-flight temp file — last rename wins with
    // a complete file.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    path.with_extension(format!("{FILE_EXTENSION}.{}-{seq}.tmp", std::process::id()))
}

/// Reassembles a full collection file at `out` by **streaming
/// concatenation** of v3 shard files — probe chunks are copied verbatim
/// (their frames carry absolute probe indices and their checksums do not
/// depend on position), validated chunk-by-chunk during the copy, with
/// only the footer and trailer rewritten. Peak memory is O(chunk), never
/// O(corpus), and the output is byte-identical to encoding the merged
/// collection directly (engine times sum over shards).
///
/// Validates the same identity and coverage invariants as
/// [`merge_collections`]: matching fingerprint, kind, corpus revision,
/// partition width and byte-identical meta chunks, and a disjoint,
/// complete probe partition. Publication is atomic (temp + rename).
///
/// Any v2 shard aborts with [`PersistError::Version`] — the caller falls
/// back to the in-memory [`merge_collections`] path.
pub fn merge_shard_files(parts: &[PathBuf], out: &Path) -> Result<FileHeader, PersistError> {
    struct Part {
        file: fs::File,
        file_len: u64,
        header: FileHeader,
        chunks: Vec<ChunkEntry>,
        times: Vec<(Duration, Duration)>,
        meta_bytes: Vec<u8>,
    }
    if parts.is_empty() {
        return Err(PersistError::Shard("no shards to merge".into()));
    }
    let mut opened = Vec::with_capacity(parts.len());
    for path in parts {
        let mut file = fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let header = read_v3_file_header(&mut file)?;
        let (footer_offset, _, chunks, times) = read_trailer_and_footer(&mut file, file_len)?;
        validate_chunk_table(&chunks, footer_offset, &header)
            .map_err(|e| PersistError::Corrupt(format!("shard file {}: {e}", path.display())))?;
        let mut meta_bytes = Vec::new();
        read_chunk_at(&mut file, file_len, &chunks[0], &mut meta_bytes)?;
        opened.push(Part {
            file,
            file_len,
            header,
            chunks,
            times,
            meta_bytes,
        });
    }
    opened.sort_by_key(|p| (p.header.manifest.probe_start, p.header.manifest.index));
    let first = opened[0].header;
    for p in &opened[1..] {
        let h = &p.header;
        if h.fingerprint != first.fingerprint {
            return Err(PersistError::Shard(format!(
                "fingerprint mismatch: {:016x} vs {:016x}",
                first.fingerprint, h.fingerprint
            )));
        }
        if h.kind != first.kind {
            return Err(PersistError::Shard(format!(
                "experiment kind mismatch: {} vs {}",
                first.kind, h.kind
            )));
        }
        if h.corpus_revision != first.corpus_revision {
            return Err(PersistError::Shard(format!(
                "corpus revision mismatch: {} vs {}",
                first.corpus_revision, h.corpus_revision
            )));
        }
        if h.manifest.count != first.manifest.count
            || h.manifest.total_probes != first.manifest.total_probes
        {
            return Err(PersistError::Shard(format!(
                "partition mismatch: {} vs {}",
                first.manifest, h.manifest
            )));
        }
        if p.meta_bytes != opened[0].meta_bytes {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the meta chunk (keys, engine roster or bug catalogue)",
                h.manifest.index
            )));
        }
        if p.times.len() != opened[0].times.len() {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the engine roster length",
                h.manifest.index
            )));
        }
    }
    let expected_shards = first.manifest.count as usize;
    if opened.len() != expected_shards {
        let have: Vec<u32> = opened.iter().map(|p| p.header.manifest.index).collect();
        return Err(PersistError::Shard(format!(
            "expected {expected_shards} shards, got {} (indices {have:?})",
            opened.len()
        )));
    }
    let mut cursor = 0u64;
    for p in &opened {
        let m = &p.header.manifest;
        match m.probe_start.cmp(&cursor) {
            std::cmp::Ordering::Less => {
                return Err(PersistError::Shard(format!(
                    "shard {} overlaps probes {}..{cursor}",
                    m.index, m.probe_start
                )));
            }
            std::cmp::Ordering::Greater => {
                return Err(PersistError::Shard(format!(
                    "probes {cursor}..{} missing (next is shard {})",
                    m.probe_start, m.index
                )));
            }
            std::cmp::Ordering::Equal => cursor = m.probe_end,
        }
    }
    if cursor != first.manifest.total_probes {
        return Err(PersistError::Shard(format!(
            "probes {cursor}..{} missing at the end of the partition",
            first.manifest.total_probes
        )));
    }

    let out_header = FileHeader {
        manifest: ShardManifest::full(first.manifest.total_probes as usize),
        ..first
    };
    let tmp = temp_sibling(out);
    let result = (|| -> Result<(), PersistError> {
        let mut head = Enc::new();
        enc_header(&mut head, &out_header, FORMAT_VERSION);
        head.buf.extend_from_slice(&opened[0].meta_bytes);
        let mut hash = fnv1a(&head.buf);
        let mut offset = head.buf.len() as u64;
        let mut dst = io::BufWriter::new(fs::File::create(&tmp)?);
        dst.write_all(&head.buf)?;
        let mut chunks = vec![ChunkEntry {
            offset: HEADER_LEN as u64,
            ..opened[0].chunks[0]
        }];
        let mut times = vec![(Duration::ZERO, Duration::ZERO); opened[0].times.len()];
        let mut buf = Vec::new();
        for p in &mut opened {
            for entry in &p.chunks[1..] {
                read_chunk_at(&mut p.file, p.file_len, entry, &mut buf)?;
                dst.write_all(&buf)?;
                hash = fnv1a_update(hash, &buf);
                chunks.push(ChunkEntry { offset, ..*entry });
                offset += entry.len;
            }
            for ((train, infer), &(t, i)) in times.iter_mut().zip(&p.times) {
                *train += t;
                *infer += i;
            }
        }
        let mut tail = Enc::new();
        tail.buf = enc_footer(&chunks, &times);
        tail.u64(offset);
        hash = fnv1a_update(hash, &tail.buf);
        tail.u64(hash);
        dst.write_all(&tail.buf)?;
        dst.flush()?;
        Ok(())
    })();
    if let Err(e) = result {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, out) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(out_header)
}

// --------------------------------------------------------------------------
// Shard merging
// --------------------------------------------------------------------------

/// Reassembles a full [`Collection`] from decoded shard parts.
///
/// Validates that the parts share every identity field (fingerprint,
/// kind, corpus revision, shard count, total probe count, run keys,
/// engine roster and bug catalogue) and that their probe ranges are
/// disjoint and cover `0..total_probes` completely; any violation is a
/// [`PersistError::Shard`] naming the offending shards and ranges. Input
/// order is irrelevant — parts are sorted by probe range.
///
/// Because every probe's collection pipeline is deterministic and
/// independent, the merged collection is identical to the one a
/// single-process pass produces, except for the per-engine wall-clock
/// `train_time` / `infer_time`, which sum over shards instead of being
/// measured in one process. Returns the merged collection and the full
/// header it should be saved under.
pub fn merge_collections(
    mut parts: Vec<(Collection, FileHeader)>,
) -> Result<(Collection, FileHeader), PersistError> {
    if parts.is_empty() {
        return Err(PersistError::Shard("no shards to merge".into()));
    }
    parts.sort_by_key(|(_, h)| {
        (
            h.manifest.probe_start,
            h.manifest.probe_end,
            h.manifest.index,
        )
    });
    let first = parts[0].1;
    for (_, h) in &parts {
        if h.fingerprint != first.fingerprint {
            return Err(PersistError::Shard(format!(
                "fingerprint mismatch: shard {} was collected under {:016x}, shard {} under {:016x}",
                first.manifest.index, first.fingerprint, h.manifest.index, h.fingerprint
            )));
        }
        if h.kind != first.kind {
            return Err(PersistError::Shard(format!(
                "experiment kind mismatch: {} vs {}",
                first.kind, h.kind
            )));
        }
        if h.corpus_revision != first.corpus_revision {
            return Err(PersistError::Shard(format!(
                "corpus revision mismatch: {} vs {}",
                first.corpus_revision, h.corpus_revision
            )));
        }
        if h.manifest.count != first.manifest.count
            || h.manifest.total_probes != first.manifest.total_probes
        {
            return Err(PersistError::Shard(format!(
                "partition mismatch: {} vs {}",
                first.manifest, h.manifest
            )));
        }
    }
    let expected_shards = first.manifest.count as usize;
    if parts.len() != expected_shards {
        let have: Vec<u32> = parts.iter().map(|(_, h)| h.manifest.index).collect();
        return Err(PersistError::Shard(format!(
            "expected {expected_shards} shards, got {} (indices {have:?})",
            parts.len()
        )));
    }
    let mut cursor = 0u64;
    for (_, h) in &parts {
        let m = &h.manifest;
        match m.probe_start.cmp(&cursor) {
            std::cmp::Ordering::Less => {
                return Err(PersistError::Shard(format!(
                    "shard {} overlaps probes {}..{cursor}",
                    m.index, m.probe_start
                )));
            }
            std::cmp::Ordering::Greater => {
                return Err(PersistError::Shard(format!(
                    "probes {cursor}..{} missing (next is shard {})",
                    m.probe_start, m.index
                )));
            }
            std::cmp::Ordering::Equal => cursor = m.probe_end,
        }
    }
    if cursor != first.manifest.total_probes {
        return Err(PersistError::Shard(format!(
            "probes {cursor}..{} missing at the end of the partition",
            first.manifest.total_probes
        )));
    }

    let mut parts = parts.into_iter();
    let (mut merged, _) = parts
        .next()
        .ok_or_else(|| PersistError::Shard("no shards to merge".to_string()))?;
    for (col, h) in parts {
        if col.keys != merged.keys {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the run-key axis",
                h.manifest.index
            )));
        }
        if col.catalog != merged.catalog {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the bug catalogue",
                h.manifest.index
            )));
        }
        let names = |c: &Collection| c.engines.iter().map(|e| e.name.clone()).collect::<Vec<_>>();
        if names(&col) != names(&merged) {
            return Err(PersistError::Shard(format!(
                "shard {} disagrees on the engine roster",
                h.manifest.index
            )));
        }
        merged.probes.extend(col.probes);
        merged.overall_ipc.extend(col.overall_ipc);
        merged.agg_features.extend(col.agg_features);
        merged.captures.extend(col.captures);
        for (into, from) in merged.engines.iter_mut().zip(col.engines) {
            into.deltas.extend(from.deltas);
            into.train_time += from.train_time;
            into.infer_time += from.infer_time;
        }
    }
    let header = FileHeader {
        manifest: ShardManifest::full(merged.probes.len()),
        ..first
    };
    Ok((merged, header))
}

// --------------------------------------------------------------------------
// Files and front doors
// --------------------------------------------------------------------------

/// Saves an encoded collection to `path` (atomically: write to a sibling
/// temp file, then rename).
fn save_bytes(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = temp_sibling(path);
    fs::write(&tmp, bytes)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Saves a full core-experiment collection to `path` (atomically), tagged
/// with `fingerprint`; the general form is [`save_collection_with`].
pub fn save_collection(
    path: &Path,
    col: &Collection,
    fingerprint: u64,
) -> Result<(), PersistError> {
    save_bytes(path, &encode_collection(col, fingerprint))
}

/// Saves a collection (full or one shard) to `path` (atomically) under an
/// explicit header.
pub fn save_collection_with(
    path: &Path,
    col: &Collection,
    header: &FileHeader,
) -> Result<(), PersistError> {
    save_bytes(path, &encode_collection_with(col, header))
}

/// Loads a full collection from `path`, rejecting version, checksum and
/// fingerprint mismatches, and shard files.
pub fn load_collection(path: &Path, fingerprint: u64) -> Result<Collection, PersistError> {
    let bytes = fs::read(path)?;
    decode_collection(&bytes, fingerprint)
}

/// How [`collect_or_load`] obtained its collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The cache file existed and was replayed without simulating.
    Replayed,
    /// The collection was assembled from a complete set of shard files
    /// (and the merged result saved) without simulating.
    Assembled,
    /// The collection was freshly simulated and saved to the cache file.
    Collected,
}

/// Scans `dir` for shard files of the pass identified by `(prefix, kind,
/// fingerprint)` and merges them when they form a complete partition.
///
/// Candidates are selected **by file name** ([`shard_file_name`]
/// grammar): only names whose prefix (when `prefix` is given), kind and
/// fingerprint segments match are even opened, so foreign `.pbcol` files
/// — including other targets' shards under a shared directory and large
/// full corpora — cost nothing. A candidate that then fails to decode,
/// or whose header disagrees with its name, is an error — like a stale
/// cache, never silently ignored.
///
/// Shards are grouped by their partition's shard count (a crashed
/// `n`-way pass may leave stale shards beside a complete `m`-way one);
/// the first complete group merges. Returns `Ok(None)` when no group is
/// complete — other worker processes may still be collecting.
pub fn assemble_from_shards(
    dir: &Path,
    prefix: Option<&str>,
    kind: ExperimentKind,
    fingerprint: u64,
) -> Result<Option<Collection>, PersistError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // Group candidate shard parts by their partition's shard count.
    let mut groups: std::collections::BTreeMap<u32, Vec<(Collection, FileHeader)>> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let path = entry?.path();
        let parsed = match path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_cache_file_name)
        {
            Some(parsed) => parsed,
            None => continue,
        };
        if parsed.kind != kind
            || parsed.fingerprint != fingerprint
            || parsed.shard.is_none()
            || prefix.is_some_and(|p| parsed.prefix != p)
        {
            continue;
        }
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            // Pruned or still being renamed into place: not ours to judge.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        };
        let (col, header) = decode_collection_with(&bytes, Some(fingerprint))
            .map_err(|e| PersistError::Corrupt(format!("shard file {}: {e}", path.display())))?;
        if header.kind != kind
            || parsed.shard != Some((header.manifest.index, header.manifest.count))
        {
            return Err(PersistError::Shard(format!(
                "{} is named for a different shard than its header ({})",
                path.display(),
                header.manifest
            )));
        }
        groups
            .entry(header.manifest.count)
            .or_default()
            .push((col, header));
    }
    for (count, parts) in groups {
        let mut indices: Vec<u32> = parts.iter().map(|(_, h)| h.manifest.index).collect();
        indices.sort_unstable();
        indices.dedup();
        if indices.len() == count as usize {
            return merge_collections(parts).map(|(col, _)| Some(col));
        }
        // Incomplete group: workers of this partition may still be
        // running; try the next partition width.
    }
    Ok(None)
}

/// Scans `dir` for shard files of the pass identified by `(prefix, kind,
/// fingerprint)` — same name-based candidate selection as
/// [`assemble_from_shards`] — reading only each candidate's fixed header,
/// and returns the first complete partition as `(path, format version)`
/// pairs in probe order. `Ok(None)` when no group is complete.
#[allow(clippy::type_complexity)]
fn complete_shard_group(
    dir: &Path,
    prefix: Option<&str>,
    kind: ExperimentKind,
    fingerprint: u64,
) -> Result<Option<Vec<(PathBuf, u32)>>, PersistError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut groups: std::collections::BTreeMap<u32, Vec<(u32, PathBuf, u32)>> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let path = entry?.path();
        let parsed = match path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_cache_file_name)
        {
            Some(parsed) => parsed,
            None => continue,
        };
        if parsed.kind != kind
            || parsed.fingerprint != fingerprint
            || parsed.shard.is_none()
            || prefix.is_some_and(|p| parsed.prefix != p)
        {
            continue;
        }
        let mut file = match fs::File::open(&path) {
            Ok(file) => file,
            // Pruned or still being renamed into place: not ours to judge.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        };
        let mut buf = [0u8; HEADER_LEN];
        let corrupt =
            |e: PersistError| PersistError::Corrupt(format!("shard file {}: {e}", path.display()));
        file.read_exact(&mut buf)
            .map_err(|e| corrupt(PersistError::Io(e)))?;
        let (header, version) = dec_header(&mut Dec::new(&buf)).map_err(corrupt)?;
        if header.fingerprint != fingerprint {
            return Err(corrupt(PersistError::Fingerprint {
                found: header.fingerprint,
                expected: fingerprint,
            }));
        }
        if header.kind != kind
            || parsed.shard != Some((header.manifest.index, header.manifest.count))
        {
            return Err(PersistError::Shard(format!(
                "{} is named for a different shard than its header ({})",
                path.display(),
                header.manifest
            )));
        }
        groups.entry(header.manifest.count).or_default().push((
            header.manifest.index,
            path,
            version,
        ));
    }
    for (count, mut members) in groups {
        members.sort_by_key(|(index, ..)| *index);
        members.dedup_by_key(|(index, ..)| *index);
        if members.len() == count as usize {
            return Ok(Some(
                members
                    .into_iter()
                    .map(|(_, path, version)| (path, version))
                    .collect(),
            ));
        }
        // Incomplete group: workers of this partition may still be
        // running; try the next partition width.
    }
    Ok(None)
}

/// Replays `path` when it exists, otherwise tries to assemble the corpus
/// from shard files beside it (saving the merged result to `path`).
/// When `path`'s file name follows the [`cache_file_name`] grammar, only
/// shards sharing its prefix are considered, so targets with identical
/// configurations never cross-assemble in a shared directory. Returns
/// `Ok(None)` on a genuine cache miss — a stale or corrupt cache is
/// still an error.
///
/// An all-v3 shard set assembles by [`merge_shard_files`] — streaming
/// concatenation in O(chunk) memory — and the merged file is then decoded
/// once as its validation pass. A set containing legacy v2 shards falls
/// back to the in-memory [`assemble_from_shards`] path.
pub fn load_or_assemble(
    path: &Path,
    kind: ExperimentKind,
    fingerprint: u64,
) -> Result<Option<(Collection, CacheStatus)>, PersistError> {
    // Attempt the load directly rather than probing `exists()` first: a
    // file pruned between probe and read must fall back to assembling,
    // not surface as an i/o error.
    match load_collection(path, fingerprint) {
        Ok(col) => return Ok(Some((col, CacheStatus::Replayed))),
        Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let parsed = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_cache_file_name);
    let prefix = parsed.as_ref().map(|p| p.prefix.as_str());
    let group = match complete_shard_group(dir, prefix, kind, fingerprint)? {
        Some(group) => group,
        None => return Ok(None),
    };
    if group.iter().all(|&(_, version)| version == FORMAT_VERSION) {
        let paths: Vec<PathBuf> = group.into_iter().map(|(path, _)| path).collect();
        merge_shard_files(&paths, path)?;
        // The full decode of the merged file is its validation pass; on
        // failure, remove the output so a bad merge is never replayed.
        match load_collection(path, fingerprint) {
            Ok(col) => Ok(Some((col, CacheStatus::Assembled))),
            Err(e) => {
                let _ = fs::remove_file(path);
                Err(e)
            }
        }
    } else if let Some(col) = assemble_from_shards(dir, prefix, kind, fingerprint)? {
        save_collection_with(
            path,
            &col,
            &FileHeader {
                kind,
                corpus_revision: CORPUS_REVISION,
                fingerprint,
                manifest: ShardManifest::full(col.probes.len()),
            },
        )?;
        Ok(Some((col, CacheStatus::Assembled)))
    } else {
        Ok(None)
    }
}

/// Front door for cached core collections: replays `path` when it exists
/// (validating its fingerprint against `config` — a stale file is an
/// error, never silently re-collected), assembles it from a complete set
/// of sibling shard files when it does not, and otherwise runs
/// [`collect`](crate::experiment::collect) and saves the result.
pub fn collect_or_load(
    path: &Path,
    config: &CollectionConfig,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = config_fingerprint(config);
    if let Some(hit) = load_or_assemble(path, ExperimentKind::Core, fingerprint)? {
        return Ok(hit);
    }
    // Collect through the resumable streaming writer even for a full
    // pass: an interrupted single-process collection leaves a part file
    // a later run continues from instead of starting over.
    let outcome = collect_shard_or_resume(path, config, crate::exec::ShardSpec::full())?;
    Ok((outcome.collection, outcome.status))
}

/// [`collect_or_load`] for the memory experiment.
pub fn collect_memory_or_load(
    path: &Path,
    config: &MemCollectionConfig,
) -> Result<(Collection, CacheStatus), PersistError> {
    let fingerprint = mem_config_fingerprint(config);
    if let Some(hit) = load_or_assemble(path, ExperimentKind::Memory, fingerprint)? {
        return Ok(hit);
    }
    let outcome = collect_memory_shard_or_resume(path, config, crate::exec::ShardSpec::full())?;
    Ok((outcome.collection, outcome.status))
}

/// How a shard-worker front door obtained its collection, plus how much
/// previously collected work a resumed attempt salvaged.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// The shard's collection.
    pub collection: Collection,
    /// Replayed from the finished file, or freshly collected.
    pub status: CacheStatus,
    /// Probes recovered from a crashed attempt's part file and *not*
    /// re-collected (0 for a fresh or replayed pass).
    pub resumed_probes: u64,
}

/// Shard-worker front door for the core experiment: replays the shard
/// file for `shard` when it exists (validating fingerprint and manifest);
/// otherwise collects the shard through a [`ShardStreamWriter`] —
/// resuming from a crashed attempt's durable part-file prefix when one
/// exists — and finally replays the finished file as its validation
/// pass. `path` is the shard file itself (see [`shard_file_name`]).
pub fn collect_shard_or_resume(
    path: &Path,
    config: &CollectionConfig,
    shard: crate::exec::ShardSpec,
) -> Result<ShardOutcome, PersistError> {
    let fingerprint = config_fingerprint(config);
    collect_shard_streaming_impl(
        path,
        ExperimentKind::Core,
        fingerprint,
        shard,
        || crate::experiment::pass_identity(config),
        |skip, writer| {
            crate::experiment::collect_sharded_streaming(config, shard, skip, |meta, output| {
                append_probe_output(writer, meta, output)
            })
            .map(|_| ())
        },
    )
}

/// [`collect_shard_or_resume`] for the memory experiment.
pub fn collect_memory_shard_or_resume(
    path: &Path,
    config: &MemCollectionConfig,
    shard: crate::exec::ShardSpec,
) -> Result<ShardOutcome, PersistError> {
    let fingerprint = mem_config_fingerprint(config);
    collect_shard_streaming_impl(
        path,
        ExperimentKind::Memory,
        fingerprint,
        shard,
        || crate::memory::mem_pass_identity(config),
        |skip, writer| {
            crate::memory::collect_memory_sharded_streaming(config, shard, skip, |meta, output| {
                append_probe_output(writer, meta, output)
            })
            .map(|_| ())
        },
    )
}

/// [`collect_shard_or_resume`] flattened to the legacy `(Collection,
/// CacheStatus)` shape, for callers indifferent to resume accounting.
pub fn collect_shard_or_load(
    path: &Path,
    config: &CollectionConfig,
    shard: crate::exec::ShardSpec,
) -> Result<(Collection, CacheStatus), PersistError> {
    collect_shard_or_resume(path, config, shard).map(|o| (o.collection, o.status))
}

/// [`collect_shard_or_load`] for the memory experiment.
pub fn collect_memory_shard_or_load(
    path: &Path,
    config: &MemCollectionConfig,
    shard: crate::exec::ShardSpec,
) -> Result<(Collection, CacheStatus), PersistError> {
    collect_memory_shard_or_resume(path, config, shard).map(|o| (o.collection, o.status))
}

/// Appends one streamed probe result to a shard writer: flattens the
/// per-engine outputs into a [`ProbeRecord`] (delta rows and captures in
/// roster order) and accumulates the per-engine timings.
pub fn append_probe_output(
    writer: &mut ShardStreamWriter,
    meta: ProbeMeta,
    output: crate::exec::ProbeOutput,
) -> Result<(), PersistError> {
    let times: Vec<(Duration, Duration)> = output
        .engines
        .iter()
        .map(|e| (e.train_time, e.infer_time))
        .collect();
    let mut deltas = Vec::with_capacity(output.engines.len());
    let mut captures = Vec::new();
    for engine in output.engines {
        deltas.push(engine.deltas);
        captures.extend(engine.captures);
    }
    let rec = ProbeRecord {
        meta,
        overall: output.overall,
        agg: output.agg,
        deltas,
        captures,
    };
    writer.append_probe(&rec, &times)
}

fn collect_shard_streaming_impl(
    path: &Path,
    kind: ExperimentKind,
    fingerprint: u64,
    shard: crate::exec::ShardSpec,
    identity: impl FnOnce() -> crate::experiment::PassIdentity,
    collect_fn: impl FnOnce(usize, &mut ShardStreamWriter) -> Result<(), PersistError>,
) -> Result<ShardOutcome, PersistError> {
    match fs::read(path) {
        Ok(bytes) => {
            let (col, header) = decode_collection_with(&bytes, Some(fingerprint))?;
            if header.manifest.index as usize != shard.index
                || header.manifest.count as usize != shard.count
            {
                return Err(PersistError::Shard(format!(
                    "{} holds {}, expected shard {}/{}",
                    path.display(),
                    header.manifest,
                    shard.index,
                    shard.count
                )));
            }
            return Ok(ShardOutcome {
                collection: col,
                status: CacheStatus::Replayed,
                resumed_probes: 0,
            });
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    let identity = identity();
    let header = FileHeader {
        kind,
        corpus_revision: CORPUS_REVISION,
        fingerprint,
        manifest: ShardManifest::of(shard, identity.total_probes),
    };
    let mut writer = ShardStreamWriter::create_or_resume(
        path,
        &header,
        &identity.keys,
        &identity.engine_names,
        &identity.catalog,
    )?;
    let resumed = writer.resumed_probes();
    collect_fn(resumed as usize, &mut writer)?;
    writer.finish()?;
    // Replaying the finished file is the validation pass: every chunk —
    // recovered or fresh — decodes under the same checks a reader uses.
    let bytes = fs::read(path)?;
    let (collection, _) = decode_collection_with(&bytes, Some(fingerprint))?;
    Ok(ShardOutcome {
        collection,
        status: CacheStatus::Collected,
        resumed_probes: resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> Collection {
        Collection {
            keys: vec![
                RunKey {
                    arch: "Skylake".into(),
                    set: ArchSet::IV,
                    bug: None,
                },
                RunKey {
                    arch: "Skylake".into(),
                    set: ArchSet::IV,
                    bug: Some(1),
                },
            ],
            probes: vec![ProbeMeta {
                id: "458.sjeng#0".into(),
                benchmark: "458.sjeng".into(),
                weight: 0.625,
            }],
            engines: vec![EngineResult {
                name: "GBT-250".into(),
                deltas: vec![vec![0.25, 17.5]],
                train_time: Duration::new(3, 250_000_000),
                infer_time: Duration::from_millis(42),
            }],
            overall_ipc: vec![vec![1.75, 1.5]],
            agg_features: vec![vec![vec![0.5, -1.0], vec![0.25, f64::MIN_POSITIVE]]],
            captures: vec![CapturedSeries {
                probe_id: "458.sjeng#0".into(),
                arch: "Skylake".into(),
                bug: Some(1),
                engine: "GBT-250".into(),
                simulated: vec![1.0, 2.0],
                inferred: vec![1.0, 1.75],
            }],
            catalog: BugCatalog::core_small(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let col = sample_collection();
        let bytes = encode_collection(&col, 7);
        let back = decode_collection(&bytes, 7).expect("round trip");
        assert_eq!(back, col);
    }

    #[test]
    fn encoding_is_deterministic() {
        let col = sample_collection();
        assert_eq!(encode_collection(&col, 9), encode_collection(&col, 9));
    }

    #[test]
    fn full_catalogue_round_trips() {
        let mut col = sample_collection();
        col.catalog = BugCatalog::core_full();
        let bytes = encode_collection(&col, 0);
        assert_eq!(decode_collection(&bytes, 0).unwrap().catalog, col.catalog);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let bytes = encode_collection(&sample_collection(), 7);
        match decode_collection(&bytes, 8) {
            Err(PersistError::Fingerprint {
                found: 7,
                expected: 8,
            }) => {}
            other => panic!("expected fingerprint error, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode_collection(&sample_collection(), 7);
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal the checksum so only the version differs.
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        match decode_collection(&bytes, 7) {
            Err(PersistError::Version { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let col = sample_collection();
        let bytes = encode_collection(&col, 7);
        // Flipping any single byte must fail decoding (magic, version,
        // checksum or fingerprint mismatch — never a silent wrong read).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_collection(&bad, 7).is_err(), "byte {i} undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_collection(&sample_collection(), 7);
        for n in (0..bytes.len()).step_by(9) {
            assert!(decode_collection(&bytes[..n], 7).is_err(), "len {n}");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode_collection(&sample_collection(), 7);
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(decode_collection(&bytes, 7).is_err());
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_shape() {
        let base = CollectionConfig::new(
            vec![crate::stage1::EngineSpec::gbt250()],
            BugCatalog::core_small(),
        );
        let mut other_threads = base.clone();
        other_threads.threads = base.threads + 3;
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&other_threads)
        );

        let mut other_window = base.clone();
        other_window.window = base.window + 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_window));

        let mut other_probes = base.clone();
        other_probes.max_probes = Some(3);
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_probes));
    }

    #[test]
    fn cache_file_name_embeds_kind_and_fingerprint() {
        assert_eq!(
            cache_file_name("fig08", ExperimentKind::Core, 0xdead_beef),
            "fig08-core-00000000deadbeef.pbcol"
        );
        assert_eq!(
            cache_file_name("fig08", ExperimentKind::Memory, 0xdead_beef),
            "fig08-mem-00000000deadbeef.pbcol"
        );
    }

    #[test]
    fn shard_file_name_round_trips_through_parse() {
        let name = shard_file_name("table07-x", ExperimentKind::Memory, 0xfeed, 3, 16);
        assert_eq!(name, "table07-x-mem-000000000000feed-s0003of0016.pbcol");
        let parsed = parse_cache_file_name(&name).expect("parse");
        assert_eq!(parsed.prefix, "table07-x");
        assert_eq!(parsed.kind, ExperimentKind::Memory);
        assert_eq!(parsed.fingerprint, 0xfeed);
        assert_eq!(parsed.shard, Some((3, 16)));

        let full = cache_file_name("speed-test", ExperimentKind::Core, 1);
        let parsed = parse_cache_file_name(&full).expect("parse");
        assert_eq!(parsed.prefix, "speed-test");
        assert_eq!(parsed.kind, ExperimentKind::Core);
        assert_eq!(parsed.shard, None);
    }

    #[test]
    fn parse_rejects_foreign_names() {
        for name in [
            "fig08-00000000deadbeef.pbcol",     // v1-era: no kind segment
            "fig08-core-deadbeef.pbcol",        // short fingerprint
            "fig08-cpu-00000000deadbeef.pbcol", // unknown kind
            "notes.txt",
            "-core-00000000deadbeef.pbcol", // empty prefix
        ] {
            assert!(parse_cache_file_name(name).is_none(), "{name}");
        }
    }

    fn shard_header(index: u32, count: u32, start: u64, end: u64, total: u64) -> FileHeader {
        FileHeader {
            kind: ExperimentKind::Core,
            corpus_revision: CORPUS_REVISION,
            fingerprint: 7,
            manifest: ShardManifest {
                index,
                count,
                probe_start: start,
                probe_end: end,
                total_probes: total,
            },
        }
    }

    /// A one-probe collection whose probe id embeds `tag`, suitable as one
    /// shard of a two-probe pass.
    fn shard_part(tag: usize) -> Collection {
        let mut col = sample_collection();
        col.probes[0].id = format!("458.sjeng#{tag}");
        col.captures.clear();
        col
    }

    #[test]
    fn shard_encode_decode_round_trips() {
        let col = shard_part(1);
        let header = shard_header(1, 2, 1, 2, 2);
        let bytes = encode_collection_with(&col, &header);
        assert_eq!(read_header(&bytes).expect("header"), header);
        let (back, back_header) = decode_collection_with(&bytes, Some(7)).expect("decode");
        assert_eq!(back, col);
        assert_eq!(back_header, header);
        // The full-load path must refuse the shard.
        assert!(matches!(
            decode_collection(&bytes, 7),
            Err(PersistError::Shard(_))
        ));
    }

    #[test]
    fn merge_reassembles_partition_in_any_order() {
        let parts = vec![
            (shard_part(1), shard_header(1, 2, 1, 2, 2)),
            (shard_part(0), shard_header(0, 2, 0, 1, 2)),
        ];
        let (merged, header) = merge_collections(parts).expect("merge");
        assert!(header.manifest.is_full());
        assert_eq!(merged.probes.len(), 2);
        assert_eq!(merged.probes[0].id, "458.sjeng#0");
        assert_eq!(merged.probes[1].id, "458.sjeng#1");
        assert_eq!(merged.engines[0].deltas.len(), 2);
        assert_eq!(merged.overall_ipc.len(), 2);
        assert_eq!(
            merged.engines[0].train_time,
            sample_collection().engines[0].train_time * 2
        );
    }

    #[test]
    fn merge_rejects_missing_and_overlapping_shards() {
        let missing = merge_collections(vec![(shard_part(0), shard_header(0, 2, 0, 1, 2))]);
        match missing {
            Err(PersistError::Shard(msg)) => assert!(msg.contains("expected 2 shards"), "{msg}"),
            other => panic!("expected shard error, got {other:?}"),
        }

        let overlap = merge_collections(vec![
            (shard_part(0), shard_header(0, 2, 0, 2, 2)),
            (shard_part(1), shard_header(1, 2, 1, 2, 2)),
        ]);
        match overlap {
            Err(PersistError::Shard(msg)) => assert!(msg.contains("overlaps"), "{msg}"),
            other => panic!("expected overlap error, got {other:?}"),
        }
    }

    #[test]
    fn merge_rejects_identity_mismatches() {
        let mut other_fp = shard_header(1, 2, 1, 2, 2);
        other_fp.fingerprint = 8;
        assert!(matches!(
            merge_collections(vec![
                (shard_part(0), shard_header(0, 2, 0, 1, 2)),
                (shard_part(1), other_fp),
            ]),
            Err(PersistError::Shard(_))
        ));

        let mut other_keys = shard_part(1);
        other_keys.keys[0].arch = "Zen".into();
        assert!(matches!(
            merge_collections(vec![
                (shard_part(0), shard_header(0, 2, 0, 1, 2)),
                (other_keys, shard_header(1, 2, 1, 2, 2)),
            ]),
            Err(PersistError::Shard(_))
        ));
    }

    #[test]
    fn assembly_honours_prefix_and_partition_groups() {
        let dir =
            std::env::temp_dir().join(format!("perfbug-assemble-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let kind = ExperimentKind::Core;
        let save = |name: String, col: &Collection, header: &FileHeader| {
            save_collection_with(&dir.join(name), col, header).expect("save shard");
        };
        // A complete 2-way partition under prefix "a" ...
        save(
            shard_file_name("a", kind, 7, 0, 2),
            &shard_part(0),
            &shard_header(0, 2, 0, 1, 2),
        );
        save(
            shard_file_name("a", kind, 7, 1, 2),
            &shard_part(1),
            &shard_header(1, 2, 1, 2, 2),
        );
        // ... plus a stale leftover of an abandoned 4-way pass of the same
        // prefix and fingerprint: it must not block assembly.
        save(
            shard_file_name("a", kind, 7, 0, 4),
            &shard_part(0),
            &shard_header(0, 4, 0, 1, 2),
        );

        // Another prefix sees none of these shards.
        assert!(assemble_from_shards(&dir, Some("b"), kind, 7)
            .expect("scan")
            .is_none());
        // Prefix "a" assembles the complete 2-way group.
        let col = assemble_from_shards(&dir, Some("a"), kind, 7)
            .expect("assemble")
            .expect("complete group");
        assert_eq!(col.probes.len(), 2);
        // A wrong fingerprint matches nothing.
        assert!(assemble_from_shards(&dir, Some("a"), kind, 8)
            .expect("scan")
            .is_none());

        // A shard file whose name disagrees with its header is an error,
        // never silently used.
        save(
            shard_file_name("c", kind, 7, 0, 2),
            &shard_part(1),
            &shard_header(1, 2, 1, 2, 2),
        );
        assert!(matches!(
            assemble_from_shards(&dir, Some("c"), kind, 7),
            Err(PersistError::Shard(_))
        ));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_read_does_not_validate_checksum() {
        let col = sample_collection();
        let mut bytes = encode_collection(&col, 7);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt the checksum itself
        assert!(read_header(&bytes).is_ok());
        assert!(decode_collection(&bytes, 7).is_err());
    }
}

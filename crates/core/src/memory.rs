//! The memory-system variant of the methodology (§IV-D, Table VII).
//!
//! Identical two-stage pipeline, but probes run on the ChampSim-like cache
//! hierarchy simulator and the stage-1 target can be either IPC or AMAT.
//! Results feed the same [`Collection`] / evaluation machinery as the core
//! experiment.

use perfbug_memsim::{self as memsim, simulate_memory, MemArchConfig, MemBugSpec};
use perfbug_uarch::ArchSet;
use perfbug_workloads::{Probe, Program, RowMatrix, WorkloadScale};

use std::time::Duration;

use crate::bugs::{BugCatalog, MemBugCatalog};
use crate::counter_select::{select_counters, CounterMode, SelectionThresholds};
use crate::exec;
use crate::experiment::{Collection, EngineResult, PassIdentity, ProbeMeta, RunKey};
use crate::stage1::{EngineSpec, FeatureSpec, RunSeries};
use crate::tracecache::{TraceProvider, TraceStore};
use perfbug_memsim::mem_counter_names;

/// Which per-step series the stage-1 models learn to infer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMetric {
    /// Committed instructions per cycle.
    Ipc,
    /// Average memory access time (the paper's memory-focused target).
    Amat,
}

impl TargetMetric {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            TargetMetric::Ipc => "IPC",
            TargetMetric::Amat => "AMAT",
        }
    }
}

/// Configuration of a memory-experiment collection pass.
#[derive(Debug, Clone)]
pub struct MemCollectionConfig {
    /// Workload scale (instructions per probe).
    pub workload: WorkloadScale,
    /// Counter sampling period in cycles.
    pub step_cycles: u64,
    /// Stage-1 engines.
    pub engines: Vec<EngineSpec>,
    /// Target metric (Table VII evaluates both IPC and AMAT).
    pub metric: TargetMetric,
    /// Counter selection mode.
    pub counter_mode: CounterMode,
    /// Memory bug catalogue.
    pub catalog: MemBugCatalog,
    /// Optional probe cap.
    pub max_probes: Option<usize>,
    /// Worker threads.
    pub threads: usize,
}

impl MemCollectionConfig {
    /// Default configuration for the Table VII experiment.
    pub fn new(engines: Vec<EngineSpec>, metric: TargetMetric) -> Self {
        MemCollectionConfig {
            workload: WorkloadScale::default(),
            step_cycles: 500,
            engines,
            metric,
            counter_mode: CounterMode::Automatic(SelectionThresholds {
                // AMAT correlates with fewer counters than IPC; keep the
                // paper's thresholds but let the fallback fill to 4.
                ..SelectionThresholds::default()
            }),
            catalog: MemBugCatalog::full(),
            max_probes: None,
            threads: exec::default_threads(),
        }
    }
}

fn mem_set(set: memsim::ArchSet) -> ArchSet {
    match set {
        memsim::ArchSet::I => ArchSet::I,
        memsim::ArchSet::II => ArchSet::II,
        memsim::ArchSet::III => ArchSet::III,
        memsim::ArchSet::IV => ArchSet::IV,
    }
}

/// Runs the memory-system collection pass. The returned [`Collection`]
/// reuses the core experiment's structure (and thus its evaluation
/// functions); the `catalog` field inside it is a placeholder mirroring
/// the memory catalogue's shape, exposed through
/// [`mem_catalog_as_core`].
///
/// # Panics
///
/// Panics if no engines are configured.
pub fn collect_memory(config: &MemCollectionConfig) -> Collection {
    collect_memory_sharded(config, exec::ShardSpec::full()).0
}

/// Everything [`collect_memory_sharded_streaming`] derives from the
/// configuration before any simulation runs. Units reference designs by
/// index into `archs` so the struct owns all of its data.
struct MemPreparedPass {
    suite: Vec<perfbug_workloads::BenchmarkSpec>,
    archs: Vec<MemArchConfig>,
    units: Vec<(usize, Option<usize>)>,
    train_units: Vec<usize>,
    val_units: Vec<usize>,
    key_units: Vec<usize>,
    keys: Vec<RunKey>,
    programs: Vec<Program>,
    probes: Vec<(usize, Probe)>,
}

/// Builds the memory experiment's unit grid and probe list, validating
/// the configuration.
fn prepare_mem_pass(config: &MemCollectionConfig) -> MemPreparedPass {
    assert!(
        !config.engines.is_empty(),
        "collection needs at least one engine"
    );
    let archs = memsim::config::all();
    let train: Vec<usize> = (0..archs.len())
        .filter(|&i| archs[i].set == memsim::ArchSet::I)
        .collect();
    let eval: Vec<usize> = (0..archs.len())
        .filter(|&i| archs[i].set != memsim::ArchSet::I)
        .collect();

    // The simulation-unit grid: Set-I bug-free runs first, then per
    // evaluation design its bug-free reference run (shared between
    // stage-1 validation and the bug-free key — the previous
    // implementation simulated Set-II designs twice) and its bug runs.
    let mut units: Vec<(usize, Option<usize>)> = Vec::new();
    let mut train_units = Vec::new();
    for &ai in &train {
        train_units.push(units.len());
        units.push((ai, None));
    }
    let mut val_units = Vec::new();
    let mut key_units = Vec::new();
    let mut keys = Vec::new();
    for &ai in &eval {
        let arch = &archs[ai];
        let bugfree_unit = units.len();
        units.push((ai, None));
        if arch.set == memsim::ArchSet::II {
            val_units.push(bugfree_unit);
        }
        key_units.push(bugfree_unit);
        keys.push(RunKey {
            arch: arch.name.clone(),
            set: mem_set(arch.set),
            bug: None,
        });
        for i in 0..config.catalog.len() {
            key_units.push(units.len());
            units.push((ai, Some(i)));
            keys.push(RunKey {
                arch: arch.name.clone(),
                set: mem_set(arch.set),
                bug: Some(i),
            });
        }
    }

    // Probes from the 22-SimPoint memory suite.
    let suite = memsim::memory_suite();
    let programs: Vec<Program> = suite.iter().map(|b| b.program(&config.workload)).collect();
    let mut probes: Vec<(usize, Probe)> = Vec::new();
    for (bi, bench) in suite.iter().enumerate() {
        for p in bench.probes(&config.workload) {
            probes.push((bi, p));
        }
    }
    if let Some(max) = config.max_probes {
        probes.truncate(max);
    }
    assert!(!probes.is_empty(), "no memory probes extracted");

    MemPreparedPass {
        suite,
        archs,
        units,
        train_units,
        val_units,
        key_units,
        keys,
        programs,
        probes,
    }
}

/// Derives the [`PassIdentity`] of a memory configuration without
/// simulating anything (the memory sibling of
/// [`crate::experiment::pass_identity`]). The identity's catalogue is the
/// core-shaped mirror ([`mem_catalog_as_core`]), matching what
/// [`collect_memory`] stores in its collections.
///
/// # Panics
///
/// As [`collect_memory`].
pub fn mem_pass_identity(config: &MemCollectionConfig) -> PassIdentity {
    let pass = prepare_mem_pass(config);
    PassIdentity {
        keys: pass.keys.clone(),
        engine_names: config.engines.iter().map(|e| e.name()).collect(),
        catalog: mem_catalog_as_core(&config.catalog),
        total_probes: pass.probes.len(),
    }
}

/// The streaming heart of sharded memory collection (the memory sibling
/// of [`crate::experiment::collect_sharded_streaming`]): runs the probes
/// of `shard`, skipping the first `skip`, and hands each probe's
/// metadata and output to `sink` in strictly increasing probe order.
/// Returns the total probe count of the full pass.
///
/// # Panics
///
/// As [`collect_memory`]; a shard may own zero probes.
pub fn collect_memory_sharded_streaming<E>(
    config: &MemCollectionConfig,
    shard: exec::ShardSpec,
    skip: usize,
    mut sink: impl FnMut(ProbeMeta, exec::ProbeOutput) -> Result<(), E>,
) -> Result<usize, E> {
    let pass = prepare_mem_pass(config);

    // Probe setup consults the persistent trace store before regenerating
    // any trace — gated on the PERFBUG_TRACE_DIR knob and on every
    // catalogue variant being trace-invariant, so a future
    // stream-perturbing family degrades to the uncached path instead of
    // replaying a trace it invalidates.
    let store = TraceStore::from_env().filter(|_| config.catalog.trace_invariant());
    let traces = TraceProvider::new(store, &pass.suite, config.workload);

    // The shared unit-grid driver runs the same three-phase pipeline as
    // the core experiment; only the simulator and the counter-selection
    // policy differ, and the memory experiment captures no series.
    let unit_grid = exec::UnitGrid {
        n_units: pass.units.len(),
        train_units: pass.train_units.clone(),
        val_units: pass.val_units.clone(),
        key_units: pass.key_units.clone(),
    };
    exec::collect_unit_grid_streaming(
        pass.probes.len(),
        config.threads,
        shard,
        skip,
        &unit_grid,
        &config.engines,
        |pi| {
            let (bi, probe) = &pass.probes[pi];
            traces.trace(probe, &pass.programs[*bi])
        },
        |trace: &Vec<perfbug_workloads::Inst>, u| {
            let (ai, bug_idx) = pass.units[u];
            let bug = bug_idx.map(|i| config.catalog.variants()[i]);
            mem_run(config, &pass.archs[ai], bug, trace)
        },
        |_pi, sims| FeatureSpec {
            selected: select_mem_counters(config, sims, &pass.train_units),
            arch_features: true,
            window: 1,
        },
        |_, _, _, _, _| None,
        |pi, output| {
            let (_, probe) = &pass.probes[pi];
            sink(
                ProbeMeta {
                    id: probe.id(),
                    benchmark: probe.benchmark.clone(),
                    weight: probe.weight,
                },
                output,
            )
        },
    )?;
    Ok(pass.probes.len())
}

/// Runs one shard of the memory collection pass (the memory-experiment
/// sibling of [`crate::experiment::collect_sharded`]): only the probes in
/// `shard.probe_range(total)` run, the returned partial [`Collection`]
/// covers exactly that range, and the second value is the full pass's
/// total probe count for the persistence manifest.
///
/// # Panics
///
/// As [`collect_memory`]; a shard may own zero probes.
pub fn collect_memory_sharded(
    config: &MemCollectionConfig,
    shard: exec::ShardSpec,
) -> (Collection, usize) {
    let identity = mem_pass_identity(config);
    let mut col = Collection {
        keys: identity.keys,
        probes: Vec::new(),
        engines: identity
            .engine_names
            .into_iter()
            .map(|name| EngineResult {
                name,
                deltas: Vec::new(),
                train_time: Duration::ZERO,
                infer_time: Duration::ZERO,
            })
            .collect(),
        overall_ipc: Vec::new(),
        agg_features: Vec::new(),
        captures: Vec::new(),
        catalog: identity.catalog,
    };
    let total = {
        let col = &mut col;
        let result: Result<usize, std::convert::Infallible> =
            collect_memory_sharded_streaming(config, shard, 0, |meta, po| {
                col.probes.push(meta);
                col.overall_ipc.push(po.overall);
                col.agg_features.push(po.agg);
                for (engine, o) in col.engines.iter_mut().zip(po.engines) {
                    engine.deltas.push(o.deltas);
                    engine.train_time += o.train_time;
                    engine.infer_time += o.infer_time;
                    col.captures.extend(o.captures);
                }
                Ok(())
            });
        match result {
            Ok(total) => total,
            Err(never) => match never {},
        }
    };
    (col, total)
}

/// Simulates one memory run and shapes it for stage 1.
fn mem_run(
    config: &MemCollectionConfig,
    arch: &MemArchConfig,
    bug: Option<MemBugSpec>,
    trace: &[perfbug_workloads::Inst],
) -> (RunSeries, f64) {
    let mr = simulate_memory(arch, bug, trace, config.step_cycles);
    let (target, overall) = match config.metric {
        TargetMetric::Ipc => (mr.ipc.clone(), mr.overall_ipc()),
        TargetMetric::Amat => (mr.amat.clone(), mr.overall_amat()),
    };
    (
        RunSeries {
            rows: mr.counter_rows,
            target,
            arch_features: arch.feature_vector(),
        },
        overall,
    )
}

/// Counter selection over the pooled Set-I runs of one probe.
fn select_mem_counters(
    config: &MemCollectionConfig,
    sims: &[(RunSeries, f64)],
    train_units: &[usize],
) -> Vec<usize> {
    match &config.counter_mode {
        CounterMode::Automatic(thresholds) => {
            let mut rows = RowMatrix::new(0);
            let mut target = Vec::new();
            for &u in train_units {
                rows.extend_from(&sims[u].0.rows);
                target.extend_from_slice(&sims[u].0.target);
            }
            // Same feature policy as the core experiment (see
            // `leakage_banned_counters`): only composition/rate columns
            // are candidates. "amat" is additionally the literal target
            // when TargetMetric::Amat is selected.
            let allowed = [
                "l1d_miss_rate",
                "l2_miss_rate",
                "llc_miss_rate",
                "pf_accuracy",
                "mpki",
            ];
            let banned: Vec<usize> = mem_counter_names()
                .iter()
                .enumerate()
                .filter(|(_, n)| !allowed.contains(&n.to_string().as_str()))
                .map(|(i, _)| i)
                .collect();
            select_counters(&rows, &target, thresholds, &banned)
        }
        CounterMode::Manual(cols) => cols.clone(),
    }
}

/// Mirrors a memory catalogue into core-bug placeholders so the shared
/// [`Collection`] evaluation (which consults type ids and names) works
/// unchanged. The mapping preserves type ids (1–8) and variant order.
pub fn mem_catalog_as_core(catalog: &MemBugCatalog) -> BugCatalog {
    use perfbug_uarch::BugSpec;
    // Type ids must match the memory catalogue's variant-to-type mapping;
    // the concrete parameters of these placeholder specs are never used by
    // the evaluation (only `type_id`/`type_name` are consulted), but the
    // ids must line up 1:1.
    let placeholder = |type_id: u32| -> BugSpec {
        match type_id {
            1 => BugSpec::SerializeOpcode {
                x: perfbug_workloads::Opcode::Xor,
            },
            2 => BugSpec::IssueOnlyIfOldest {
                x: perfbug_workloads::Opcode::Xor,
            },
            3 => BugSpec::IfOldestIssueOnlyX {
                x: perfbug_workloads::Opcode::Xor,
            },
            4 => BugSpec::DelayIfDependsOn {
                x: perfbug_workloads::Opcode::Add,
                y: perfbug_workloads::Opcode::Load,
                t: 1,
            },
            5 => BugSpec::IqBelowDelay { n: 1, t: 1 },
            6 => BugSpec::RobBelowDelay { n: 1, t: 1 },
            7 => BugSpec::MispredictExtraDelay { t: 1 },
            _ => BugSpec::StoresToLineDelay { n: 1, t: 1 },
        }
    };
    BugCatalog::new(
        catalog
            .variants()
            .iter()
            .map(|m| placeholder(m.type_id()))
            .collect(),
    )
}

/// Human-readable names of the memory bug variants, aligned with the
/// collection's catalogue order.
pub fn mem_variant_names(catalog: &MemBugCatalog) -> Vec<String> {
    catalog.variants().iter().map(|v| v.describe()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::evaluate_two_stage;
    use crate::stage2::Stage2Params;
    use perfbug_ml::GbtParams;

    fn tiny_mem_config() -> MemCollectionConfig {
        let mut config = MemCollectionConfig::new(
            vec![EngineSpec::Gbt(GbtParams {
                n_trees: 30,
                ..GbtParams::default()
            })],
            TargetMetric::Amat,
        );
        config.workload = WorkloadScale::tiny();
        config.step_cycles = 300;
        config.max_probes = Some(5);
        config.catalog = MemBugCatalog::full();
        config
    }

    #[test]
    fn memory_collection_shapes() {
        let config = tiny_mem_config();
        let col = collect_memory(&config);
        assert_eq!(col.probes.len(), 5);
        // 7 non-Set-I designs x (1 + 10 bugs).
        assert_eq!(col.keys.len(), 7 * 11);
        assert_eq!(col.engines[0].deltas.len(), 5);
    }

    #[test]
    fn memory_detection_runs_end_to_end() {
        let config = tiny_mem_config();
        let col = collect_memory(&config);
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        assert!(eval.metrics.roc_auc >= 0.0);
        assert_eq!(eval.folds.len(), 6); // six memory bug types
    }

    #[test]
    fn sharded_memory_collection_merges_to_the_full_one() {
        use crate::persist::{
            mem_config_fingerprint, merge_collections, ExperimentKind, FileHeader, ShardManifest,
            CORPUS_REVISION,
        };
        let config = tiny_mem_config();
        let mut full = collect_memory(&config);
        let fingerprint = mem_config_fingerprint(&config);
        let parts: Vec<_> = (0..2)
            .map(|index| {
                let shard = exec::ShardSpec::new(index, 2);
                let (col, total) = collect_memory_sharded(&config, shard);
                let header = FileHeader {
                    kind: ExperimentKind::Memory,
                    corpus_revision: CORPUS_REVISION,
                    fingerprint,
                    manifest: ShardManifest::of(shard, total),
                };
                (col, header)
            })
            .collect();
        let (mut merged, header) = merge_collections(parts).expect("merge");
        assert!(header.manifest.is_full());
        assert_eq!(header.kind, ExperimentKind::Memory);
        // Wall-clock timings are the only nondeterministic fields.
        for col in [&mut merged, &mut full] {
            for engine in &mut col.engines {
                engine.train_time = std::time::Duration::ZERO;
                engine.infer_time = std::time::Duration::ZERO;
            }
        }
        assert_eq!(merged, full);
    }

    #[test]
    fn catalog_mirror_preserves_types() {
        let mem = MemBugCatalog::full();
        let core = mem_catalog_as_core(&mem);
        assert_eq!(core.len(), mem.len());
        assert_eq!(core.type_ids(), mem.type_ids());
        for t in mem.type_ids() {
            assert_eq!(core.variants_of_type(t), mem.variants_of_type(t));
        }
    }
}

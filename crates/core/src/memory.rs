//! The memory-system variant of the methodology (§IV-D, Table VII).
//!
//! Identical two-stage pipeline, but probes run on the ChampSim-like cache
//! hierarchy simulator and the stage-1 target can be either IPC or AMAT.
//! Results feed the same [`Collection`] / evaluation machinery as the core
//! experiment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use perfbug_memsim::{self as memsim, simulate_memory, MemArchConfig, MemBugSpec};
use perfbug_uarch::ArchSet;
use perfbug_workloads::{Probe, Program, WorkloadScale};

use crate::bugs::{BugCatalog, MemBugCatalog};
use crate::counter_select::{select_counters, CounterMode, SelectionThresholds};
use perfbug_memsim::mem_counter_names;
use crate::experiment::{Collection, EngineResult, ProbeMeta, RunKey};
use crate::stage1::{inference_error, EngineSpec, FeatureSpec, ProbeModel, RunSeries};

/// Which per-step series the stage-1 models learn to infer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMetric {
    /// Committed instructions per cycle.
    Ipc,
    /// Average memory access time (the paper's memory-focused target).
    Amat,
}

impl TargetMetric {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            TargetMetric::Ipc => "IPC",
            TargetMetric::Amat => "AMAT",
        }
    }
}

/// Configuration of a memory-experiment collection pass.
#[derive(Debug, Clone)]
pub struct MemCollectionConfig {
    /// Workload scale (instructions per probe).
    pub workload: WorkloadScale,
    /// Counter sampling period in cycles.
    pub step_cycles: u64,
    /// Stage-1 engines.
    pub engines: Vec<EngineSpec>,
    /// Target metric (Table VII evaluates both IPC and AMAT).
    pub metric: TargetMetric,
    /// Counter selection mode.
    pub counter_mode: CounterMode,
    /// Memory bug catalogue.
    pub catalog: MemBugCatalog,
    /// Optional probe cap.
    pub max_probes: Option<usize>,
    /// Worker threads.
    pub threads: usize,
}

impl MemCollectionConfig {
    /// Default configuration for the Table VII experiment.
    pub fn new(engines: Vec<EngineSpec>, metric: TargetMetric) -> Self {
        MemCollectionConfig {
            workload: WorkloadScale::default(),
            step_cycles: 500,
            engines,
            metric,
            counter_mode: CounterMode::Automatic(SelectionThresholds {
                // AMAT correlates with fewer counters than IPC; keep the
                // paper's thresholds but let the fallback fill to 4.
                ..SelectionThresholds::default()
            }),
            catalog: MemBugCatalog::full(),
            max_probes: None,
            threads: 2,
        }
    }
}

fn mem_set(set: memsim::ArchSet) -> ArchSet {
    match set {
        memsim::ArchSet::I => ArchSet::I,
        memsim::ArchSet::II => ArchSet::II,
        memsim::ArchSet::III => ArchSet::III,
        memsim::ArchSet::IV => ArchSet::IV,
    }
}

struct MemProbeOutput {
    deltas: Vec<Vec<f64>>,
    times: Vec<(Duration, Duration)>,
    overall: Vec<f64>,
    agg: Vec<Vec<f64>>,
}

/// Runs the memory-system collection pass. The returned [`Collection`]
/// reuses the core experiment's structure (and thus its evaluation
/// functions); the `catalog` field inside it is a placeholder mirroring
/// the memory catalogue's shape, exposed through
/// [`mem_catalog_as_core`].
///
/// # Panics
///
/// Panics if no engines are configured.
pub fn collect_memory(config: &MemCollectionConfig) -> Collection {
    assert!(!config.engines.is_empty(), "collection needs at least one engine");
    let archs = memsim::config::all();
    let train: Vec<&MemArchConfig> =
        archs.iter().filter(|a| a.set == memsim::ArchSet::I).collect();
    let eval: Vec<&MemArchConfig> =
        archs.iter().filter(|a| a.set != memsim::ArchSet::I).collect();
    let val: Vec<&MemArchConfig> =
        archs.iter().filter(|a| a.set == memsim::ArchSet::II).collect();

    // Keys: every non-Set-I design, bug-free + every catalogue bug.
    let mut keys = Vec::new();
    for arch in &eval {
        keys.push(RunKey { arch: arch.name.clone(), set: mem_set(arch.set), bug: None });
        for i in 0..config.catalog.len() {
            keys.push(RunKey { arch: arch.name.clone(), set: mem_set(arch.set), bug: Some(i) });
        }
    }

    // Probes from the 22-SimPoint memory suite.
    let suite = memsim::memory_suite();
    let programs: Vec<Program> = suite.iter().map(|b| b.program(&config.workload)).collect();
    let mut probes: Vec<(usize, Probe)> = Vec::new();
    for (bi, bench) in suite.iter().enumerate() {
        for p in bench.probes(&config.workload) {
            probes.push((bi, p));
        }
    }
    if let Some(max) = config.max_probes {
        probes.truncate(max);
    }
    assert!(!probes.is_empty(), "no memory probes extracted");

    let metas: Vec<ProbeMeta> = probes
        .iter()
        .map(|(_, p)| ProbeMeta {
            id: p.id(),
            benchmark: p.benchmark.clone(),
            weight: p.weight,
        })
        .collect();

    let next = AtomicUsize::new(0);
    let outputs: Mutex<Vec<Option<MemProbeOutput>>> =
        Mutex::new((0..probes.len()).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for _ in 0..config.threads.clamp(1, 8) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= probes.len() {
                    break;
                }
                let (bi, probe) = &probes[i];
                let out = process_mem_probe(config, &keys, probe, &programs[*bi], &train, &val, &eval);
                outputs.lock().expect("worker poisoned the lock")[i] = Some(out);
            });
        }
    })
    .expect("worker panicked");

    let outputs: Vec<MemProbeOutput> = outputs
        .into_inner()
        .expect("lock intact")
        .into_iter()
        .map(|o| o.expect("every probe processed"))
        .collect();

    let mut engines: Vec<EngineResult> = config
        .engines
        .iter()
        .map(|e| EngineResult {
            name: e.name(),
            deltas: Vec::new(),
            train_time: Duration::ZERO,
            infer_time: Duration::ZERO,
        })
        .collect();
    let mut overall = Vec::new();
    let mut agg = Vec::new();
    for out in outputs {
        for (e, engine) in engines.iter_mut().enumerate() {
            engine.deltas.push(out.deltas[e].clone());
            engine.train_time += out.times[e].0;
            engine.infer_time += out.times[e].1;
        }
        overall.push(out.overall);
        agg.push(out.agg);
    }

    Collection {
        keys,
        probes: metas,
        engines,
        overall_ipc: overall,
        agg_features: agg,
        captures: Vec::new(),
        catalog: mem_catalog_as_core(&config.catalog),
    }
}

/// Mirrors a memory catalogue into core-bug placeholders so the shared
/// [`Collection`] evaluation (which consults type ids and names) works
/// unchanged. The mapping preserves type ids (1–6) and variant order.
pub fn mem_catalog_as_core(catalog: &MemBugCatalog) -> BugCatalog {
    use perfbug_uarch::BugSpec;
    // Type ids must match the memory catalogue's variant-to-type mapping;
    // the concrete parameters of these placeholder specs are never used by
    // the evaluation (only `type_id`/`type_name` are consulted), but the
    // ids must line up 1:1.
    let placeholder = |type_id: u32| -> BugSpec {
        match type_id {
            1 => BugSpec::SerializeOpcode { x: perfbug_workloads::Opcode::Xor },
            2 => BugSpec::IssueOnlyIfOldest { x: perfbug_workloads::Opcode::Xor },
            3 => BugSpec::IfOldestIssueOnlyX { x: perfbug_workloads::Opcode::Xor },
            4 => BugSpec::DelayIfDependsOn {
                x: perfbug_workloads::Opcode::Add,
                y: perfbug_workloads::Opcode::Load,
                t: 1,
            },
            5 => BugSpec::IqBelowDelay { n: 1, t: 1 },
            _ => BugSpec::RobBelowDelay { n: 1, t: 1 },
        }
    };
    BugCatalog::new(
        catalog.variants().iter().map(|m| placeholder(m.type_id())).collect(),
    )
}

/// Human-readable names of the memory bug variants, aligned with the
/// collection's catalogue order.
pub fn mem_variant_names(catalog: &MemBugCatalog) -> Vec<String> {
    catalog.variants().iter().map(|v| v.describe()).collect()
}

#[allow(clippy::too_many_arguments)]
fn process_mem_probe(
    config: &MemCollectionConfig,
    keys: &[RunKey],
    probe: &Probe,
    program: &Program,
    train: &[&MemArchConfig],
    val: &[&MemArchConfig],
    eval: &[&MemArchConfig],
) -> MemProbeOutput {
    let trace = probe.trace(program);
    let run = |arch: &MemArchConfig, bug: Option<MemBugSpec>| -> (RunSeries, f64) {
        let mr = simulate_memory(arch, bug, &trace, config.step_cycles);
        let (target, overall) = match config.metric {
            TargetMetric::Ipc => (mr.ipc.clone(), mr.overall_ipc()),
            TargetMetric::Amat => (mr.amat.clone(), mr.overall_amat()),
        };
        (
            RunSeries { rows: mr.counter_rows, target, arch_features: arch.feature_vector() },
            overall,
        )
    };

    let train_runs: Vec<RunSeries> = train.iter().map(|a| run(a, None).0).collect();
    let val_runs: Vec<RunSeries> = val.iter().map(|a| run(a, None).0).collect();

    let selected = match &config.counter_mode {
        CounterMode::Automatic(thresholds) => {
            let mut rows = Vec::new();
            let mut target = Vec::new();
            for r in &train_runs {
                rows.extend(r.rows.iter().cloned());
                target.extend_from_slice(&r.target);
            }
            // Same feature policy as the core experiment (see
            // `leakage_banned_counters`): only composition/rate columns
            // are candidates. "amat" is additionally the literal target
            // when TargetMetric::Amat is selected.
            let allowed = ["l1d_miss_rate", "l2_miss_rate", "llc_miss_rate", "pf_accuracy", "mpki"];
            let banned: Vec<usize> = mem_counter_names()
                .iter()
                .enumerate()
                .filter(|(_, n)| !allowed.contains(&n.to_string().as_str()))
                .map(|(i, _)| i)
                .collect();
            select_counters(&rows, &target, thresholds, &banned)
        }
        CounterMode::Manual(cols) => cols.clone(),
    };
    let features = FeatureSpec { selected, arch_features: true, window: 1 };

    let arch_by_name =
        |name: &str| -> &MemArchConfig { eval.iter().find(|a| a.name == name).expect("key design") };
    let eval_runs: Vec<(RunSeries, f64)> = keys
        .iter()
        .map(|key| {
            let bug = key.bug.map(|i| config.catalog.variants()[i]);
            run(arch_by_name(&key.arch), bug)
        })
        .collect();

    let agg: Vec<Vec<f64>> = eval_runs
        .iter()
        .map(|(series, overall)| {
            let n = series.rows.len().max(1) as f64;
            let width = series.rows.first().map_or(0, Vec::len);
            let mut mean = vec![0.0; width];
            for row in &series.rows {
                for (m, v) in mean.iter_mut().zip(row) {
                    *m += v;
                }
            }
            mean.iter_mut().for_each(|m| *m /= n);
            mean.extend_from_slice(&series.arch_features);
            mean.push(*overall);
            mean
        })
        .collect();

    let mut deltas = Vec::new();
    let mut times = Vec::new();
    for engine in &config.engines {
        let t0 = Instant::now();
        let model = ProbeModel::train(engine, features.clone(), &train_runs, &val_runs);
        let train_time = t0.elapsed();
        let t1 = Instant::now();
        let engine_deltas: Vec<f64> = eval_runs
            .iter()
            .map(|(series, _)| {
                let inferred = model.infer(series);
                let delta = inference_error(&series.target, &inferred);
                if delta.is_finite() {
                    delta.min(1e6)
                } else {
                    1e6
                }
            })
            .collect();
        times.push((train_time, t1.elapsed()));
        deltas.push(engine_deltas);
    }

    MemProbeOutput {
        deltas,
        times,
        overall: eval_runs.iter().map(|(_, o)| *o).collect(),
        agg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::evaluate_two_stage;
    use crate::stage2::Stage2Params;
    use perfbug_ml::GbtParams;

    fn tiny_mem_config() -> MemCollectionConfig {
        let mut config = MemCollectionConfig::new(
            vec![EngineSpec::Gbt(GbtParams { n_trees: 30, ..GbtParams::default() })],
            TargetMetric::Amat,
        );
        config.workload = WorkloadScale::tiny();
        config.step_cycles = 300;
        config.max_probes = Some(5);
        config.catalog = MemBugCatalog::full();
        config
    }

    #[test]
    fn memory_collection_shapes() {
        let config = tiny_mem_config();
        let col = collect_memory(&config);
        assert_eq!(col.probes.len(), 5);
        // 7 non-Set-I designs x (1 + 10 bugs).
        assert_eq!(col.keys.len(), 7 * 11);
        assert_eq!(col.engines[0].deltas.len(), 5);
    }

    #[test]
    fn memory_detection_runs_end_to_end() {
        let config = tiny_mem_config();
        let col = collect_memory(&config);
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        assert!(eval.metrics.roc_auc >= 0.0);
        assert_eq!(eval.folds.len(), 6); // six memory bug types
    }

    #[test]
    fn catalog_mirror_preserves_types() {
        let mem = MemBugCatalog::full();
        let core = mem_catalog_as_core(&mem);
        assert_eq!(core.len(), mem.len());
        assert_eq!(core.type_ids(), mem.type_ids());
        for t in mem.type_ids() {
            assert_eq!(core.variants_of_type(t), mem.variants_of_type(t));
        }
    }
}

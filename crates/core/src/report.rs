//! Plain-text table and series formatting shared by the bench harness.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with fixed precision, using `-` for `None`.
pub fn opt_f(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "-".to_string(),
    }
}

/// Formats a numeric series as `idx<TAB>value` lines (figure data).
pub fn series(name: &str, values: &[f64]) -> String {
    let mut out = format!("# {name}\n");
    for (i, v) in values.iter().enumerate() {
        out.push_str(&format!("{i}\t{v:.6}\n"));
    }
    out
}

/// Summary statistics of a sample: (mean, standard deviation, median,
/// 90th percentile).
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn stats(sample: &[f64]) -> (f64, f64, f64, f64) {
    assert!(!sample.is_empty(), "stats of an empty sample");
    let n = sample.len() as f64;
    let mean = sample.iter().sum::<f64>() / n;
    let var = sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let quantile = |q: f64| -> f64 {
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
        }
    };
    (mean, var.sqrt(), quantile(0.5), quantile(0.9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("a-much-longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn stats_are_correct() {
        let (mean, std, median, p90) = stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((mean - 3.0).abs() < 1e-12);
        assert!((median - 3.0).abs() < 1e-12);
        assert!((std - (2.0f64).sqrt()).abs() < 1e-12);
        assert!((p90 - 4.6).abs() < 1e-12);
    }

    #[test]
    fn series_format() {
        let s = series("ipc", &[0.5, 0.75]);
        assert!(s.starts_with("# ipc\n0\t0.500000\n"));
    }

    #[test]
    fn opt_f_formats() {
        assert_eq!(opt_f(Some(0.1234), 2), "0.12");
        assert_eq!(opt_f(None, 2), "-");
    }
}

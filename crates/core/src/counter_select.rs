//! Two-step Pearson-correlation counter selection (§III-B2).
//!
//! Step 1 keeps counters whose correlation with the target (IPC) exceeds
//! 0.7 in magnitude; step 2 prunes one of every pair of surviving counters
//! correlated above 0.95 with each other (redundancy). Selection runs
//! independently per probe, which is what makes the methodology resilient
//! to counter-set differences across designs.

use perfbug_ml::metrics::pearson;
use perfbug_workloads::RowMatrix;

/// Thresholds of the two selection steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionThresholds {
    /// Minimum |r| against the target to survive step 1 (paper: 0.7).
    pub target_corr: f64,
    /// |r| between two counters above which one is pruned (paper: 0.95).
    pub redundancy_corr: f64,
    /// Lower bound on selected counters (paper reports 4–64 per probe).
    pub min_counters: usize,
    /// Upper bound on selected counters.
    pub max_counters: usize,
}

impl Default for SelectionThresholds {
    fn default() -> Self {
        SelectionThresholds {
            target_corr: 0.7,
            redundancy_corr: 0.95,
            min_counters: 4,
            max_counters: 64,
        }
    }
}

/// How a probe's feature counters are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum CounterMode {
    /// The paper's automatic two-step Pearson selection.
    Automatic(SelectionThresholds),
    /// A fixed manual counter list shared by all probes (Fig. 10's
    /// comparison point). Entries are column indices into the counter rows.
    Manual(Vec<usize>),
}

impl Default for CounterMode {
    fn default() -> Self {
        CounterMode::Automatic(SelectionThresholds::default())
    }
}

/// Selects counter columns for one probe given its training rows.
///
/// `rows` are per-step counter vectors pooled over all bug-free training
/// runs of the probe; `target` is the per-step IPC aligned with `rows`.
/// Columns listed in `banned` are never candidates — the experiment layer
/// bans counters that are deterministic functions of the target in a
/// trace-driven simulator (see [`leakage_banned_counters`]). Returns
/// sorted column indices.
///
/// # Panics
///
/// Panics if `rows` and `target` lengths differ or are empty.
pub fn select_counters(
    rows: &RowMatrix,
    target: &[f64],
    thresholds: &SelectionThresholds,
    banned: &[usize],
) -> Vec<usize> {
    assert_eq!(rows.len(), target.len(), "one target per row required");
    assert!(!rows.is_empty(), "cannot select counters without data");
    let n_cols = rows.width();

    // Step 1: correlation with the target.
    let mut scored: Vec<(usize, f64)> = (0..n_cols)
        .filter(|c| !banned.contains(c))
        .map(|c| {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            (c, pearson(&col, target).abs())
        })
        .collect();
    let mut kept: Vec<(usize, f64)> = scored
        .iter()
        .copied()
        .filter(|(_, r)| *r > thresholds.target_corr)
        .collect();

    // Guarantee the paper's lower bound by falling back to the strongest
    // correlations when the 0.7 cut leaves too few.
    if kept.len() < thresholds.min_counters {
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        kept = scored
            .iter()
            .copied()
            .take(thresholds.min_counters)
            .collect();
    }
    // Strongest-first so redundancy pruning keeps the better of a pair.
    kept.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    // Step 2: pairwise redundancy pruning.
    let mut selected: Vec<usize> = Vec::new();
    for &(c, _) in &kept {
        if selected.len() >= thresholds.max_counters {
            break;
        }
        let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
        let redundant = selected.iter().any(|&s| {
            let sel: Vec<f64> = rows.iter().map(|r| r[s]).collect();
            pearson(&col, &sel).abs() > thresholds.redundancy_corr
        });
        if !redundant {
            selected.push(c);
        }
    }
    // Redundancy pruning may dip below the minimum; refill with the next
    // strongest non-selected counters.
    if selected.len() < thresholds.min_counters {
        for &(c, _) in &kept {
            if selected.len() >= thresholds.min_counters {
                break;
            }
            if !selected.contains(&c) {
                selected.push(c);
            }
        }
    }
    selected.sort_unstable();
    selected
}

/// Core-simulator counters banned from stage-1 feature candidacy.
///
/// Two groups, both substrate-calibration decisions documented in
/// DESIGN.md/EXPERIMENTS.md:
///
/// 1. **Target leakage.** gem5's front end fetches and executes wrong
///    paths, so its fetched/issued counts exceed the committed count and
///    carry independent signal. Our trace-driven substrate replays only
///    the correct path, which makes every throughput/event count equal
///    (a fraction of) the committed count — i.e. the IPC target times the
///    step length. Leaving them in lets any engine reconstruct IPC
///    exactly, bug or no bug, silently defeating the methodology.
/// 2. **Bug symptoms.** Stall and occupancy counters co-move with *any*
///    slowdown, so a model trained on them keeps tracking IPC when a bug
///    bites instead of exposing the divergence the methodology relies on
///    (the paper's Fig. 6b behaviour — inferred IPC staying at bug-free
///    levels — requires features that encode what the IPC *should* be).
///
/// The surviving candidates are workload-composition and rate features
/// (branch fraction, misprediction rate, per-level miss rates, commit-
/// saturation fraction, …) plus the design-parameter features.
pub fn leakage_banned_counters() -> Vec<usize> {
    // Ban everything except the derived composition/rate columns.
    let allowed = [
        "branch_frac",
        "mispredict_rate",
        "indirect_correct_frac",
        "l1d_miss_rate",
        "l2_miss_rate",
        "l3_miss_rate",
    ];
    perfbug_uarch::counter_names()
        .iter()
        .enumerate()
        .filter(|(_, n)| !allowed.contains(n))
        .map(|(i, _)| i)
        .collect()
}

/// The fixed 22-counter manual list used as Fig. 10's comparison point:
/// cache miss counts and rates for every level, branch statistics, and
/// per-stage instruction counts.
pub fn manual_counter_indices() -> Vec<usize> {
    use perfbug_uarch::Counter as C;
    let raw = [
        C::FetchedInsts,
        C::DecodedInsts,
        C::RenamedInsts,
        C::IssuedInsts,
        C::CommittedInsts,
        C::BranchInsts,
        C::CondBranches,
        C::TakenBranches,
        C::Mispredicts,
        C::IndirectBranches,
        C::L1dAccesses,
        C::L1dMisses,
        C::L2Accesses,
        C::L2Misses,
        C::L3Accesses,
        C::L3Misses,
        C::MemAccesses,
        C::IcacheMisses,
    ];
    let mut cols: Vec<usize> = raw.iter().map(|&c| c as usize).collect();
    // Derived ratio counters: miss rates and branch fraction (by name).
    let names = perfbug_uarch::counter_names();
    for wanted in [
        "l1d_miss_rate",
        "l2_miss_rate",
        "l3_miss_rate",
        "branch_frac",
    ] {
        if let Some(i) = names.iter().position(|n| *n == wanted) {
            cols.push(i);
        }
    }
    assert_eq!(cols.len(), 22, "manual list must have 22 counters");
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic rows: col0 tracks target, col1 = 2*col0 (redundant), col2
    /// noise-ish, col3 anti-correlated.
    fn synthetic() -> (RowMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut target = Vec::new();
        for i in 0..50 {
            let t = (i as f64 * 0.37).sin();
            let noise = ((i * 7919) % 23) as f64 / 23.0 - 0.5;
            rows.push(vec![t, 2.0 * t, noise, -t, 0.0]);
            target.push(t);
        }
        (RowMatrix::from_rows(&rows), target)
    }

    #[test]
    fn keeps_correlated_prunes_redundant() {
        let (rows, target) = synthetic();
        let thresholds = SelectionThresholds {
            min_counters: 1,
            ..Default::default()
        };
        let selected = select_counters(&rows, &target, &thresholds, &[]);
        // col0 and col1 are mutually redundant: exactly one survives.
        assert!(selected.contains(&0) ^ selected.contains(&1));
        // col3 (anti-correlated) survives step 1 via |r|, but it is also
        // perfectly redundant with col0 (|r| = 1), so it must be pruned.
        assert!(!selected.contains(&3));
        // Noise and constant columns are dropped.
        assert!(!selected.contains(&2));
        assert!(!selected.contains(&4));
    }

    #[test]
    fn enforces_minimum() {
        let (rows, target) = synthetic();
        let thresholds = SelectionThresholds::default(); // min 4
        let selected = select_counters(&rows, &target, &thresholds, &[]);
        assert!(selected.len() >= 4);
    }

    #[test]
    fn respects_maximum() {
        // 100 identical copies of the target: redundancy pruning keeps one,
        // refill tops up to the minimum, but never past the maximum.
        let rows = RowMatrix::from_rows(
            &(0..40)
                .map(|i| vec![(i as f64).sin(); 100])
                .collect::<Vec<_>>(),
        );
        let target: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let thresholds = SelectionThresholds {
            max_counters: 8,
            ..Default::default()
        };
        let selected = select_counters(&rows, &target, &thresholds, &[]);
        assert!(selected.len() <= 8);
        assert!(selected.len() >= 4);
    }

    #[test]
    fn manual_list_is_22_valid_columns() {
        let cols = manual_counter_indices();
        assert_eq!(cols.len(), 22);
        let n = perfbug_uarch::N_COUNTERS;
        assert!(cols.iter().all(|&c| c < n));
    }

    #[test]
    fn selection_is_deterministic() {
        let (rows, target) = synthetic();
        let t = SelectionThresholds::default();
        assert_eq!(
            select_counters(&rows, &target, &t, &[]),
            select_counters(&rows, &target, &t, &[])
        );
    }
}

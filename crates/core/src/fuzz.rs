//! Deterministic, seed-parameterised bug fuzzer (ROADMAP item 3).
//!
//! [`FuzzSpec`] describes a randomized bug corpus: which families to draw
//! from, how many variants per family, and an optional severity band the
//! calibrated IPC impact must land in. Generation is a pure function of
//! the spec — same seed, same catalog, bit for bit — so fuzzed corpora
//! fingerprint, cache, shard and orchestrate exactly like hand-seeded
//! ones (the catalogue's variants are part of the PBCL config
//! fingerprint, see [`crate::persist::config_fingerprint`]).
//!
//! Severity is *calibrated*, not assumed: every candidate variant is
//! simulated against a fixed calibration workload and its relative IPC
//! (core) or cycle (memory) impact graded through [`Severity::grade`].
//! Candidates outside the requested band are rejected and redrawn a
//! bounded number of times; if the band cannot be hit, the closest
//! candidate seen is kept, so generation always terminates with `count`
//! variants per parameterised family.

use std::sync::OnceLock;

use perfbug_memsim::{simulate_memory, CacheLevel, MemArchConfig, MemBugSpec};
use perfbug_uarch::{presets, simulate, BugSpec};
use perfbug_workloads::{benchmark, Inst, Opcode, WorkloadScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bugs::{BugCatalog, MemBugCatalog, Severity};

/// Redraws per variant before settling for the closest-severity sample.
const MAX_ATTEMPTS: usize = 12;

/// Sampling step used by both simulators during calibration.
const CALIBRATION_STEP: u64 = 500;

/// One fuzzable bug family: a bug *type* in one of the two simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// A core-pipeline family, by [`BugSpec::type_id`] (1–16).
    Core(u32),
    /// A memory-system family, by [`MemBugSpec::type_id`] (1–8).
    Mem(u32),
}

impl Family {
    /// Every fuzzable family, core families first, ids ascending.
    pub fn all() -> Vec<Family> {
        (1..=16)
            .map(Family::Core)
            .chain((1..=8).map(Family::Mem))
            .collect()
    }

    /// The family's stable name — the simulator's `type_name` (e.g.
    /// `TlbPageWalkDelayT`, `SppDegreeStride`). Names are unique across
    /// the two simulators.
    pub fn name(self) -> &'static str {
        // Any sample of the family carries the type name; the throwaway
        // rng never influences generation state.
        let mut rng = StdRng::seed_from_u64(0);
        match self {
            Family::Core(id) => sample_core(id, &mut rng).type_name(),
            Family::Mem(id) => sample_mem(id, &mut rng).type_name(),
        }
    }

    /// Resolves a family from its [`Family::name`] string.
    pub fn parse(name: &str) -> Option<Family> {
        Family::all().into_iter().find(|f| f.name() == name)
    }
}

/// A deterministic fuzzing recipe. Two equal specs generate bit-identical
/// catalogues on any machine, worker count or shard partition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzSpec {
    /// Root seed of the draw stream.
    pub seed: u64,
    /// Families to sample, in order. Order matters: it fixes the draw
    /// stream, hence the catalogue.
    pub families: Vec<Family>,
    /// Variants to generate per family.
    pub count: usize,
    /// Inclusive severity band (`min..=max`) the calibrated grade must
    /// land in; `None` accepts any severity on the first draw.
    pub severity_band: Option<(Severity, Severity)>,
}

/// One generated variant with its calibration evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzedVariant<T> {
    /// The concrete bug.
    pub spec: T,
    /// Calibrated severity grade on the calibration workload.
    pub severity: Severity,
    /// Measured relative impact backing the grade.
    pub impact: f64,
}

/// The output of [`FuzzSpec::generate`]: per-simulator variant lists in
/// draw order, each with its calibrated severity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FuzzedCatalog {
    /// Core-pipeline variants.
    pub core: Vec<FuzzedVariant<BugSpec>>,
    /// Memory-system variants.
    pub mem: Vec<FuzzedVariant<MemBugSpec>>,
}

impl FuzzedCatalog {
    /// The core variants as a [`BugCatalog`]; `None` when no core family
    /// was requested.
    pub fn core_catalog(&self) -> Option<BugCatalog> {
        if self.core.is_empty() {
            None
        } else {
            Some(BugCatalog::new(self.core.iter().map(|v| v.spec).collect()))
        }
    }

    /// The memory variants as a [`MemBugCatalog`]; `None` when no memory
    /// family was requested.
    pub fn mem_catalog(&self) -> Option<MemBugCatalog> {
        if self.mem.is_empty() {
            None
        } else {
            Some(MemBugCatalog::new(
                self.mem.iter().map(|v| v.spec).collect(),
            ))
        }
    }
}

impl FuzzSpec {
    /// Generates the catalogue. Pure in the spec: the draw stream is a
    /// single [`StdRng`] seeded from `seed`, consumed family by family in
    /// the order given.
    pub fn generate(&self) -> FuzzedCatalog {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = FuzzedCatalog::default();
        for &family in &self.families {
            match family {
                Family::Core(id) => {
                    let picked = draw_family(
                        self.count,
                        self.severity_band,
                        || sample_core(id, &mut rng),
                        core_impact,
                    );
                    out.core.extend(picked);
                }
                Family::Mem(id) => {
                    let picked = draw_family(
                        self.count,
                        self.severity_band,
                        || sample_mem(id, &mut rng),
                        mem_impact,
                    );
                    out.mem.extend(picked);
                }
            }
        }
        out
    }
}

/// Draws up to `count` distinct variants of one family, rejection-sampling
/// into the severity band (closest-seen fallback). Duplicate draws are
/// skipped, so parameterless families contribute one variant regardless of
/// `count`.
fn draw_family<T: Copy + PartialEq>(
    count: usize,
    band: Option<(Severity, Severity)>,
    mut sample: impl FnMut() -> T,
    impact_of: impl Fn(T) -> f64,
) -> Vec<FuzzedVariant<T>> {
    let mut picked: Vec<FuzzedVariant<T>> = Vec::new();
    for _ in 0..count {
        let mut best: Option<FuzzedVariant<T>> = None;
        for _ in 0..MAX_ATTEMPTS {
            let cand = sample();
            if picked.iter().any(|v| v.spec == cand) {
                continue;
            }
            let impact = impact_of(cand);
            let severity = Severity::grade(impact);
            let var = FuzzedVariant {
                spec: cand,
                severity,
                impact,
            };
            let in_band = band.map(|(lo, hi)| severity >= lo && severity <= hi);
            if in_band.unwrap_or(true) {
                best = Some(var);
                break;
            }
            let closer = match &best {
                None => true,
                Some(b) => band_distance(severity, band) < band_distance(b.severity, band),
            };
            if closer {
                best = Some(var);
            }
        }
        match best {
            Some(var) => picked.push(var),
            // Every attempt was a duplicate: the family's parameter space
            // is exhausted (e.g. parameterless SPP bugs) — stop early.
            None => break,
        }
    }
    picked
}

/// Bands away from the requested band (0 = inside).
fn band_distance(sev: Severity, band: Option<(Severity, Severity)>) -> usize {
    let Some((lo, hi)) = band else { return 0 };
    let rank = |s: Severity| Severity::all().iter().position(|&x| x == s).unwrap_or(0);
    let (s, l, h) = (rank(sev), rank(lo), rank(hi));
    if s < l {
        l - s
    } else {
        s.saturating_sub(h)
    }
}

/// Opcodes the fuzzer targets for opcode-parameterised families: the mix
/// that actually occurs in the SPEC-like traces, common and rare.
const OPCODE_POOL: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::Xor,
    Opcode::Logic,
    Opcode::Shift,
    Opcode::Mul,
    Opcode::Popcnt,
    Opcode::FpAdd,
    Opcode::FpMul,
    Opcode::Load,
    Opcode::Store,
];

fn pick_opcode(rng: &mut StdRng) -> Opcode {
    OPCODE_POOL[rng.gen_range(0..OPCODE_POOL.len())]
}

/// Samples one concrete variant of core family `type_id` (1–16).
///
/// # Panics
///
/// Panics if `type_id` is not a known core family.
pub fn sample_core(type_id: u32, rng: &mut StdRng) -> BugSpec {
    match type_id {
        1 => BugSpec::SerializeOpcode {
            x: pick_opcode(rng),
        },
        2 => BugSpec::IssueOnlyIfOldest {
            x: pick_opcode(rng),
        },
        3 => BugSpec::IfOldestIssueOnlyX {
            x: pick_opcode(rng),
        },
        4 => BugSpec::DelayIfDependsOn {
            x: pick_opcode(rng),
            y: pick_opcode(rng),
            t: rng.gen_range(2..=40u32),
        },
        5 => BugSpec::IqBelowDelay {
            n: rng.gen_range(2..=24u32),
            t: rng.gen_range(2..=24u32),
        },
        6 => BugSpec::RobBelowDelay {
            n: rng.gen_range(4..=32u32),
            t: rng.gen_range(2..=24u32),
        },
        7 => BugSpec::MispredictExtraDelay {
            t: rng.gen_range(2..=40u32),
        },
        8 => BugSpec::StoresToLineDelay {
            n: rng.gen_range(2..=8u32),
            t: rng.gen_range(2..=40u32),
        },
        9 => BugSpec::WritesToRegDelay {
            n: rng.gen_range(8..=64u32),
            t: rng.gen_range(2..=16u32),
            periodic: rng.gen_bool(0.5),
        },
        10 => BugSpec::L2ExtraLatency {
            t: rng.gen_range(2..=30u32),
        },
        11 => BugSpec::FewerPhysRegs {
            n: rng.gen_range(32..=280u32),
        },
        12 => BugSpec::LongBranchDelay {
            bytes: rng.gen_range(4..=6u8),
            t: rng.gen_range(2..=24u32),
        },
        13 => BugSpec::OpcodeUsesRegDelay {
            x: pick_opcode(rng),
            r: rng.gen_range(0..=7u8),
            t: rng.gen_range(2..=24u32),
        },
        14 => BugSpec::BtbIndexMask {
            lost_bits: rng.gen_range(2..=12u32),
        },
        15 => BugSpec::TlbPageWalkDelay {
            entries: 1 << rng.gen_range(2..=7u32),
            t: rng.gen_range(10..=60u32),
        },
        16 => BugSpec::IssueReplayEveryN {
            n: rng.gen_range(4..=64u32),
            t: rng.gen_range(2..=16u32),
        },
        other => panic!("unknown core bug family {other}"),
    }
}

/// Samples one concrete variant of memory family `type_id` (1–8).
///
/// # Panics
///
/// Panics if `type_id` is not a known memory family.
pub fn sample_mem(type_id: u32, rng: &mut StdRng) -> MemBugSpec {
    let level = if rng.gen_bool(0.5) {
        CacheLevel::L1d
    } else {
        CacheLevel::L2
    };
    match type_id {
        1 => MemBugSpec::NoAgeUpdate { level },
        2 => MemBugSpec::EvictMru { level },
        3 => MemBugSpec::MissesDelay {
            level,
            n: rng.gen_range(50..=500u32),
            t: rng.gen_range(2..=30u32),
        },
        4 => MemBugSpec::SppSignatureReset,
        5 => MemBugSpec::SppLeastConfidence,
        6 => MemBugSpec::SppDroppedPrefetch {
            n: rng.gen_range(1..=8u32),
        },
        7 => MemBugSpec::SppDegreeStride {
            degree: rng.gen_range(4..=16u32),
            skew: rng.gen_range(-3..=3i64),
        },
        8 => MemBugSpec::DramPageCloseDelay {
            t: rng.gen_range(4..=60u32),
        },
        other => panic!("unknown memory bug family {other}"),
    }
}

/// The core calibration trace: the first probe of 458.sjeng at tiny scale.
fn core_calibration_trace() -> &'static [Inst] {
    static TRACE: OnceLock<Vec<Inst>> = OnceLock::new();
    TRACE.get_or_init(|| {
        let scale = WorkloadScale::tiny();
        let spec = benchmark("458.sjeng").expect("suite benchmark");
        let program = spec.program(&scale);
        spec.probes(&scale)[0].trace(&program)
    })
}

/// The memory calibration trace: a synthetic mix of a streaming load
/// front (prefetcher + DRAM row locality), a hot reuse set (replacement
/// policy) and a store sprinkle, so every memory family has something to
/// perturb.
fn mem_calibration_trace() -> &'static [Inst] {
    static TRACE: OnceLock<Vec<Inst>> = OnceLock::new();
    TRACE.get_or_init(|| {
        let mut trace = Vec::new();
        for i in 0..40_000u32 {
            let mut stream = Inst::nop(0x1000);
            stream.opcode = Opcode::Load;
            stream.mem_addr = 0x4000_0000 + i * 64;
            trace.push(stream);
            if i % 4 == 0 {
                let mut hot = Inst::nop(0x1004);
                hot.opcode = Opcode::Load;
                hot.mem_addr = 0x5000_0000 + (i % 192) * 64;
                trace.push(hot);
            }
            if i % 7 == 0 {
                let mut st = Inst::nop(0x1008);
                st.opcode = Opcode::Store;
                st.mem_addr = 0x7000_0000 + (i % 4096) * 64;
                trace.push(st);
            }
        }
        trace
    })
}

fn mem_calibration_config() -> MemArchConfig {
    perfbug_memsim::config::by_name("Skylake").expect("Skylake memory preset")
}

/// Calibrated relative IPC impact of one core bug on the calibration
/// workload (`0.07` = 7 % IPC degradation; clamped at 0).
pub fn core_impact(bug: BugSpec) -> f64 {
    static HEALTHY: OnceLock<f64> = OnceLock::new();
    let trace = core_calibration_trace();
    let healthy = *HEALTHY
        .get_or_init(|| simulate(&presets::skylake(), None, trace, CALIBRATION_STEP).overall_ipc());
    let buggy = simulate(&presets::skylake(), Some(bug), trace, CALIBRATION_STEP).overall_ipc();
    if healthy <= 0.0 {
        return 0.0;
    }
    ((healthy - buggy) / healthy).max(0.0)
}

/// Calibrated relative cycle impact of one memory bug on the calibration
/// workload (clamped at 0).
pub fn mem_impact(bug: MemBugSpec) -> f64 {
    static HEALTHY: OnceLock<u64> = OnceLock::new();
    let trace = mem_calibration_trace();
    let healthy = *HEALTHY.get_or_init(|| {
        simulate_memory(&mem_calibration_config(), None, trace, CALIBRATION_STEP).total_cycles
    });
    let buggy = simulate_memory(
        &mem_calibration_config(),
        Some(bug),
        trace,
        CALIBRATION_STEP,
    )
    .total_cycles;
    if healthy == 0 {
        return 0.0;
    }
    (buggy as f64 - healthy as f64).max(0.0) / healthy as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_unique_and_parse_round_trips() {
        let all = Family::all();
        assert_eq!(all.len(), 24);
        let mut names: Vec<&str> = all.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "family names must be unique");
        for f in all {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("NoSuchFamily"), None);
    }

    #[test]
    fn same_spec_generates_identical_catalogs() {
        let spec = FuzzSpec {
            seed: 7,
            families: vec![Family::Core(15), Family::Core(16), Family::Mem(7)],
            count: 2,
            severity_band: None,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.core.len(), 4);
        assert_eq!(a.mem.len(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FuzzSpec {
            seed,
            families: vec![Family::Core(7), Family::Core(10)],
            count: 3,
            severity_band: None,
        };
        assert_ne!(mk(1).generate(), mk(2).generate());
    }

    #[test]
    fn parameterless_families_collapse_to_one_variant() {
        let spec = FuzzSpec {
            seed: 3,
            families: vec![Family::Mem(4), Family::Mem(5)],
            count: 5,
            severity_band: None,
        };
        let cat = spec.generate();
        assert_eq!(cat.mem.len(), 2, "one variant per parameterless family");
    }

    #[test]
    fn severity_band_biases_grades_into_band() {
        // High-band fuzzing of a family whose parameter clearly scales
        // impact: every pick must grade at least Medium (closest-fallback
        // may undershoot High, but never by more than the family allows).
        let spec = FuzzSpec {
            seed: 11,
            families: vec![Family::Core(1)],
            count: 3,
            severity_band: Some((Severity::Medium, Severity::High)),
        };
        let relaxed = FuzzSpec {
            severity_band: None,
            ..spec.clone()
        };
        let banded: f64 = spec.generate().core.iter().map(|v| v.impact).sum();
        let free: f64 = relaxed.generate().core.iter().map(|v| v.impact).sum();
        assert!(
            banded >= free,
            "band (Medium..=High) must not select milder variants than unbanded \
             ({banded} < {free})"
        );
    }
}

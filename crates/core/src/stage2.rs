//! Stage 2 — rule-based bug classification over per-probe errors (§III-D).
//!
//! Per-probe error statistics (μ±ασ) of labelled buggy and bug-free designs
//! normalise a new design's error vector into γ⁺/γ⁻ ratios; the design is
//! flagged when one probe's γ⁺ exceeds η (= 15) or the mean γ⁻ exceeds
//! λ (= 5). α is trained by grid search maximising TPR subject to
//! FPR ≤ 0.25 on the labelled data.

/// Floor applied to γ denominators so zero-variance probes cannot produce
/// infinities.
const DENOM_FLOOR: f64 = 1e-9;

/// Stage-2 hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage2Params {
    /// Rule-1 threshold on the maximum γ⁺.
    ///
    /// The paper's empirical value is 15 for its gem5/SPEC error scale;
    /// the default here is recalibrated (η = 3) to this reproduction's
    /// error scale — chosen, like the paper's, as the value maximising TPR
    /// at zero observed FPR on the labelled designs (see EXPERIMENTS.md).
    pub eta: f64,
    /// Rule-2 threshold on the mean γ⁻ (paper: 5; recalibrated to 1.5,
    /// with λ < η as the paper requires).
    pub lambda: f64,
    /// Grid of α candidates evaluated during training.
    pub alpha_grid: (f64, f64, usize),
    /// Maximum false-positive rate allowed when picking α (paper: 0.25).
    pub max_train_fpr: f64,
}

impl Default for Stage2Params {
    fn default() -> Self {
        Stage2Params {
            eta: 3.0,
            lambda: 1.5,
            alpha_grid: (0.0, 4.0, 41),
            max_train_fpr: 0.25,
        }
    }
}

impl Stage2Params {
    /// The paper's literal thresholds (η = 15, λ = 5) — appropriate for
    /// error scales where bugs inflate probe errors by an order of
    /// magnitude; kept for ablation.
    pub fn paper_thresholds() -> Self {
        Stage2Params {
            eta: 15.0,
            lambda: 5.0,
            ..Stage2Params::default()
        }
    }
}

/// The trained rule-based classifier.
#[derive(Debug, Clone)]
pub struct Stage2Classifier {
    params: Stage2Params,
    alpha: f64,
    mu_pos: Vec<f64>,
    sigma_pos: Vec<f64>,
    mu_neg: Vec<f64>,
    sigma_neg: Vec<f64>,
}

fn column_stats(samples: &[Vec<f64>], col: usize) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().map(|s| s[col]).sum::<f64>() / n;
    let var = samples.iter().map(|s| (s[col] - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

impl Stage2Classifier {
    /// Trains the classifier from labelled per-probe error vectors.
    ///
    /// `positives` are error vectors of designs with an injected bug,
    /// `negatives` of bug-free designs; every vector must have one entry
    /// per probe. α is chosen from the grid to maximise TPR on the labelled
    /// data subject to `max_train_fpr`.
    ///
    /// # Panics
    ///
    /// Panics if either class is empty or vector lengths are inconsistent.
    pub fn fit(params: Stage2Params, positives: &[Vec<f64>], negatives: &[Vec<f64>]) -> Self {
        assert!(
            !positives.is_empty(),
            "stage 2 needs positive (buggy) samples"
        );
        assert!(
            !negatives.is_empty(),
            "stage 2 needs negative (bug-free) samples"
        );
        let n_probes = positives[0].len();
        assert!(
            positives
                .iter()
                .chain(negatives)
                .all(|v| v.len() == n_probes),
            "all error vectors must cover the same probes"
        );

        let mut mu_pos = Vec::with_capacity(n_probes);
        let mut sigma_pos = Vec::with_capacity(n_probes);
        let mut mu_neg = Vec::with_capacity(n_probes);
        let mut sigma_neg = Vec::with_capacity(n_probes);
        for c in 0..n_probes {
            let (mp, sp) = column_stats(positives, c);
            let (mn, sn) = column_stats(negatives, c);
            mu_pos.push(mp);
            sigma_pos.push(sp);
            mu_neg.push(mn);
            sigma_neg.push(sn);
        }

        let mut best = Stage2Classifier {
            params,
            alpha: 0.0,
            mu_pos,
            sigma_pos,
            mu_neg,
            sigma_neg,
        };
        let (lo, hi, steps) = params.alpha_grid;
        let mut best_alpha = lo;
        let mut best_tpr = -1.0;
        for i in 0..steps.max(1) {
            let alpha = lo + (hi - lo) * i as f64 / (steps.max(2) - 1) as f64;
            best.alpha = alpha;
            let tp = positives.iter().filter(|v| best.classify(v)).count() as f64;
            let fp = negatives.iter().filter(|v| best.classify(v)).count() as f64;
            let tpr = tp / positives.len() as f64;
            let fpr = fp / negatives.len() as f64;
            if fpr <= params.max_train_fpr && tpr > best_tpr {
                best_tpr = tpr;
                best_alpha = alpha;
            }
        }
        best.alpha = best_alpha;
        best
    }

    /// The trained α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Computes the (γ⁺, γ⁻) vectors of Eq. (2) for a new design's errors.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` has the wrong probe count.
    pub fn gammas(&self, deltas: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(deltas.len(), self.mu_pos.len(), "probe count mismatch");
        let gamma = |d: f64, mu: f64, sigma: f64| d / (mu + self.alpha * sigma).max(DENOM_FLOOR);
        let pos = deltas
            .iter()
            .zip(self.mu_pos.iter().zip(&self.sigma_pos))
            .map(|(&d, (&m, &s))| gamma(d, m, s))
            .collect();
        let neg = deltas
            .iter()
            .zip(self.mu_neg.iter().zip(&self.sigma_neg))
            .map(|(&d, (&m, &s))| gamma(d, m, s))
            .collect();
        (pos, neg)
    }

    /// Continuous bug-likelihood score: `max(max γ⁺ / η, mean γ⁻ / λ)`.
    /// The default decision rule is `score >= 1`; sweeping the threshold
    /// yields the ROC curves of Fig. 8.
    pub fn score(&self, deltas: &[f64]) -> f64 {
        let (pos, neg) = self.gammas(deltas);
        let max_pos = pos.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean_neg = neg.iter().sum::<f64>() / neg.len().max(1) as f64;
        (max_pos / self.params.eta).max(mean_neg / self.params.lambda)
    }

    /// The paper's rule-based verdict: `true` means "bug detected".
    pub fn classify(&self, deltas: &[f64]) -> bool {
        self.score(deltas) >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Buggy designs have ~10x the error of bug-free designs on probe 1.
    fn toy_data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let positives: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![0.1 + 0.01 * i as f64, 2.0 + 0.1 * i as f64, 0.2])
            .collect();
        let negatives: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.1 + 0.01 * i as f64, 0.15, 0.18])
            .collect();
        (positives, negatives)
    }

    #[test]
    fn separable_data_classified_correctly() {
        let (pos, neg) = toy_data();
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        for p in &pos {
            assert!(clf.classify(p), "buggy sample must be flagged: {p:?}");
        }
        for n in &neg {
            assert!(!clf.classify(n), "bug-free sample must pass: {n:?}");
        }
    }

    #[test]
    fn score_orders_severity() {
        let (pos, neg) = toy_data();
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        let mild = vec![0.1, 0.4, 0.2];
        let severe = vec![0.1, 9.0, 0.2];
        assert!(clf.score(&severe) > clf.score(&mild));
    }

    #[test]
    fn gammas_use_trained_alpha() {
        let (pos, neg) = toy_data();
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        let (gp, gn) = clf.gammas(&[0.1, 1.0, 0.2]);
        assert_eq!(gp.len(), 3);
        assert_eq!(gn.len(), 3);
        assert!(gp.iter().all(|g| g.is_finite() && *g >= 0.0));
        assert!(gn.iter().all(|g| g.is_finite() && *g >= 0.0));
    }

    #[test]
    fn zero_variance_probes_do_not_explode() {
        let pos = vec![vec![1.0, 1.0]; 4];
        let neg = vec![vec![0.0, 0.0]; 4]; // zero mean AND zero sigma
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        let s = clf.score(&[0.5, 0.5]);
        assert!(s.is_finite());
    }

    #[test]
    #[should_panic(expected = "probe count mismatch")]
    fn wrong_probe_count_panics() {
        let (pos, neg) = toy_data();
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        clf.gammas(&[1.0]);
    }

    #[test]
    fn alpha_respects_fpr_budget() {
        // Overlapping classes: alpha must be chosen so that training FPR
        // stays within the budget.
        let positives: Vec<Vec<f64>> = (0..10).map(|i| vec![0.5 + 0.05 * i as f64]).collect();
        let negatives: Vec<Vec<f64>> = (0..10).map(|i| vec![0.4 + 0.05 * i as f64]).collect();
        let params = Stage2Params::default();
        let clf = Stage2Classifier::fit(params, &positives, &negatives);
        let fp = negatives.iter().filter(|v| clf.classify(v)).count() as f64;
        assert!(fp / negatives.len() as f64 <= params.max_train_fpr + 1e-9);
    }
}

//! The naïve single-stage baseline detector (§II).
//!
//! One supervised classifier per probe consumes aggregated performance
//! counters, the simulated IPC and the design parameters, and votes "bug"
//! or "no bug"; the design-level verdict is `ρ ≥ θ` where ρ is the
//! fraction of positive probe votes. Unlike the proposed method there is
//! no bug-free reference model — the classifier must separate buggy from
//! bug-free behaviour directly, across microarchitectures.

use perfbug_ml::{Dataset, Gbt, GbtParams, Regressor};

/// Baseline hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineParams {
    /// Boosted-tree configuration of the per-probe classifiers (the paper
    /// uses its best engine, GBT-250; smaller forests trade accuracy for
    /// speed at reproduction scale). The split-finding strategy flows
    /// through unchanged: the default is histogram split finding, and
    /// `GbtParams { split_strategy: SplitStrategy::Exact, .. }` restores
    /// the exact greedy splitter (see `perfbug_ml::SplitStrategy`).
    pub gbt: GbtParams,
    /// Grid of voting thresholds θ evaluated during training.
    pub theta_grid: (f64, f64, usize),
    /// Maximum training FPR allowed when picking θ.
    pub max_train_fpr: f64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams {
            gbt: GbtParams {
                n_trees: 100,
                max_depth: 3,
                ..GbtParams::default()
            },
            theta_grid: (0.05, 0.95, 19),
            max_train_fpr: 0.25,
        }
    }
}

/// One training sample for one probe: aggregated features and the label.
#[derive(Debug, Clone)]
pub struct BaselineSample {
    /// Aggregated feature vector (mean counters + IPC + design parameters).
    pub features: Vec<f64>,
    /// Whether the design producing this sample had an injected bug.
    pub has_bug: bool,
}

/// The trained single-stage detector.
#[derive(Debug)]
pub struct BaselineClassifier {
    models: Vec<Gbt>,
    theta: f64,
}

impl BaselineClassifier {
    /// Trains one classifier per probe, then picks the voting threshold θ
    /// maximising training TPR subject to the FPR budget.
    ///
    /// `per_probe` holds, for every probe, the same number of samples in
    /// the same (design, bug) order so that votes can be assembled
    /// design-wise.
    ///
    /// # Panics
    ///
    /// Panics if probes disagree on sample counts or there are no samples.
    pub fn fit(params: &BaselineParams, per_probe: &[Vec<BaselineSample>]) -> Self {
        assert!(!per_probe.is_empty(), "baseline needs at least one probe");
        let n_samples = per_probe[0].len();
        assert!(n_samples > 0, "baseline needs samples");
        assert!(
            per_probe.iter().all(|p| p.len() == n_samples),
            "all probes must see the same designs"
        );

        // Train per-probe regressors to the 0/1 label.
        let mut models = Vec::with_capacity(per_probe.len());
        for samples in per_probe {
            let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.clone()).collect();
            let y: Vec<f64> = samples.iter().map(|s| f64::from(s.has_bug as u8)).collect();
            let data = Dataset::from_rows(&rows, &y).expect("aligned baseline data");
            let mut model = Gbt::new(params.gbt);
            model.fit(&data, None);
            models.push(model);
        }

        // Assemble training votes per design and pick θ.
        let mut clf = BaselineClassifier { models, theta: 0.5 };
        let rhos: Vec<(f64, bool)> = (0..n_samples)
            .map(|i| {
                let features: Vec<&[f64]> =
                    per_probe.iter().map(|p| p[i].features.as_slice()).collect();
                (clf.vote_fraction(&features), per_probe[0][i].has_bug)
            })
            .collect();
        let (lo, hi, steps) = params.theta_grid;
        let n_pos = rhos.iter().filter(|(_, b)| *b).count().max(1) as f64;
        let n_neg = rhos.iter().filter(|(_, b)| !*b).count().max(1) as f64;
        let mut best_theta = 0.5;
        let mut best_tpr = -1.0;
        for k in 0..steps.max(1) {
            let theta = lo + (hi - lo) * k as f64 / (steps.max(2) - 1) as f64;
            let tp = rhos.iter().filter(|(r, b)| *b && *r >= theta).count() as f64;
            let fp = rhos.iter().filter(|(r, b)| !*b && *r >= theta).count() as f64;
            if fp / n_neg <= params.max_train_fpr && tp / n_pos > best_tpr {
                best_tpr = tp / n_pos;
                best_theta = theta;
            }
        }
        clf.theta = best_theta;
        clf
    }

    /// Fraction of probes voting "bug" for one design.
    ///
    /// # Panics
    ///
    /// Panics if the number of feature vectors differs from the number of
    /// trained probes.
    pub fn vote_fraction(&self, per_probe_features: &[&[f64]]) -> f64 {
        assert_eq!(
            per_probe_features.len(),
            self.models.len(),
            "probe count mismatch"
        );
        let votes = self
            .models
            .iter()
            .zip(per_probe_features)
            .filter(|(m, f)| m.predict_row(f) >= 0.5)
            .count();
        votes as f64 / self.models.len() as f64
    }

    /// Continuous score (ρ normalised by θ; ≥ 1 means "bug").
    pub fn score(&self, per_probe_features: &[&[f64]]) -> f64 {
        self.vote_fraction(per_probe_features) / self.theta.max(1e-9)
    }

    /// Binary verdict at the trained operating point.
    pub fn classify(&self, per_probe_features: &[&[f64]]) -> bool {
        self.vote_fraction(per_probe_features) >= self.theta
    }

    /// The trained voting threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three probes, designs alternating bug-free / buggy with a feature
    /// that (noisily) encodes the label.
    fn toy() -> Vec<Vec<BaselineSample>> {
        (0..3)
            .map(|p| {
                (0..20)
                    .map(|i| {
                        let has_bug = i % 2 == 1;
                        let signal = if has_bug { 1.0 } else { 0.0 };
                        let noise = ((i * 31 + p * 7) % 10) as f64 / 20.0;
                        BaselineSample {
                            features: vec![signal + noise, p as f64],
                            has_bug,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn learns_separable_votes() {
        let data = toy();
        let clf = BaselineClassifier::fit(&BaselineParams::default(), &data);
        // Classify each training design.
        let mut correct = 0;
        for i in 0..20 {
            let features: Vec<&[f64]> = data.iter().map(|p| p[i].features.as_slice()).collect();
            if clf.classify(&features) == data[0][i].has_bug {
                correct += 1;
            }
        }
        assert!(
            correct >= 16,
            "baseline should fit separable data, got {correct}/20"
        );
    }

    #[test]
    fn score_scales_with_votes() {
        let data = toy();
        let clf = BaselineClassifier::fit(&BaselineParams::default(), &data);
        let buggy: Vec<&[f64]> = data.iter().map(|p| p[1].features.as_slice()).collect();
        let clean: Vec<&[f64]> = data.iter().map(|p| p[0].features.as_slice()).collect();
        assert!(clf.score(&buggy) > clf.score(&clean));
    }

    #[test]
    #[should_panic(expected = "probe count mismatch")]
    fn wrong_probe_count_panics() {
        let data = toy();
        let clf = BaselineClassifier::fit(&BaselineParams::default(), &data);
        clf.vote_fraction(&[&[1.0, 0.0]]);
    }
}

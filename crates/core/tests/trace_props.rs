//! Property and integration tests for the persistent workload-trace
//! cache (`perfbug_core::tracecache`): Inst wire-codec round trips,
//! exhaustive single-byte-flip and truncation rejection of a `.pbtr`
//! file, stale/corrupt-store fallback to regeneration, shard-partition
//! equivalence of warm collections, and the pinned trace-invariance of
//! every bug family.
//!
//! The regeneration-counter equivalence assertions live alone in
//! `trace_equiv.rs`: the tests here regenerate traces on purpose (the
//! fallback paths), which would race a counter-delta window in the same
//! binary.

use std::collections::BTreeSet;
use std::path::PathBuf;

use perfbug_core::bugs::{BugCatalog, MemBugCatalog};
use perfbug_core::memory::{
    collect_memory, collect_memory_sharded, MemCollectionConfig, TargetMetric,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::tracecache::{
    encode_trace_file, trace_cache_rejections, trace_file_name, trace_fingerprint,
    verify_trace_file, TraceMeta, TraceProbeMeta, TraceProvider, TraceStore, TRACE_DIR_ENV,
};
use perfbug_core::ShardSpec;
use perfbug_ml::GbtParams;
use perfbug_workloads::wire::{decode_inst, encode_inst, INST_WIRE_LEN};
use perfbug_workloads::{benchmark, Inst, WorkloadScale, ALL_OPCODES, NO_REG};
use proptest::prelude::*;

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trace-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        0..ALL_OPCODES.len(),
        0u8..=255,
        (0u8..=255, 0u8..=255, 0u8..=255),
        any::<bool>(),
    )
        .prop_map(
            |(pc, mem_addr, target, op, size, (src1, src2, dst), taken)| Inst {
                pc,
                mem_addr,
                target,
                opcode: ALL_OPCODES[op],
                size,
                src1,
                src2,
                dst,
                taken,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inst_codec_round_trips(insts in prop::collection::vec(arb_inst(), 0..64)) {
        let mut buf = Vec::new();
        for inst in &insts {
            encode_inst(inst, &mut buf);
        }
        prop_assert_eq!(buf.len(), insts.len() * INST_WIRE_LEN);
        for (k, inst) in insts.iter().enumerate() {
            let rec = &buf[k * INST_WIRE_LEN..(k + 1) * INST_WIRE_LEN];
            let back = decode_inst(rec).expect("fixed-width record must decode");
            prop_assert_eq!(&back, inst, "record {} diverged through the codec", k);
        }
    }
}

/// A small synthetic but structurally valid trace file: two probes of
/// five instructions each, under the given content fingerprint.
fn synth_trace_bytes(fingerprint: u64) -> Vec<u8> {
    let insts: Vec<Inst> = (0..5u32)
        .map(|i| Inst {
            pc: 0x1000 + i * 4,
            mem_addr: if i % 2 == 0 { 0x8000 + i } else { 0 },
            target: if i == 4 { 0x1000 } else { 0 },
            opcode: ALL_OPCODES[i as usize % ALL_OPCODES.len()],
            size: 4,
            src1: 1,
            src2: NO_REG,
            dst: 2,
            taken: i == 4,
        })
        .collect();
    let meta = TraceMeta {
        benchmark: "bench".into(),
        interval_len: 100,
        probes: vec![
            TraceProbeMeta {
                interval: 0,
                weight_bits: 0.75f64.to_bits(),
            },
            TraceProbeMeta {
                interval: 3,
                weight_bits: 0.25f64.to_bits(),
            },
        ],
    };
    encode_trace_file(fingerprint, &meta, &[insts.clone(), insts]).expect("encode")
}

/// Every truncation and every single-byte flip of a `.pbtr` file is
/// detected — nothing between the magic and the trailing checksum is
/// trusted without validation.
#[test]
fn every_flip_and_truncation_of_a_trace_file_is_rejected() {
    let dir = scratch("flips");
    let bytes = synth_trace_bytes(0xfeed);
    let path = dir.join(trace_file_name("bench", 0xfeed));

    std::fs::write(&path, &bytes).expect("write");
    let (header, insts) = verify_trace_file(&path).expect("pristine file verifies");
    assert_eq!(header.n_probes, 2);
    assert_eq!(insts, 10);

    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        assert!(
            verify_trace_file(&path).is_err(),
            "truncation to {cut} of {} bytes went undetected",
            bytes.len()
        );
    }
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        std::fs::write(&path, &bad).expect("write corrupt");
        assert!(
            verify_trace_file(&path).is_err(),
            "flipping byte {pos} of {} went undetected",
            bytes.len()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged or stale store falls back to regeneration and can never
/// serve a wrong trace: stale fingerprints are rebuilt, corrupt files
/// are rebuilt, and a fingerprint collision with foreign per-probe meta
/// is refused by the identity cross-check.
#[test]
fn stale_and_corrupt_stores_fall_back_and_never_serve_a_wrong_trace() {
    let dir = scratch("fallback");
    let bench = benchmark("458.sjeng").expect("suite benchmark");
    let scale = WorkloadScale::tiny();
    let program = bench.program(&scale);
    let probes = bench.probes(&scale);
    let truth: Vec<Vec<Inst>> = probes.iter().map(|p| p.trace(&program)).collect();
    let store = TraceStore::new(dir.clone());
    let path = store.trace_path(&bench, &scale);

    // A file whose stored fingerprint is not the expected one (e.g. an
    // old trace revision) is rejected and rebuilt in place.
    std::fs::write(&path, synth_trace_bytes(0x1234)).expect("write stale");
    let rejections = trace_cache_rejections();
    let mut reader = store
        .open_or_build(&bench, &scale, &program)
        .expect("stale file must be rebuilt");
    assert!(
        trace_cache_rejections() > rejections,
        "the stale file must be counted as a rejection"
    );
    for (ordinal, t) in truth.iter().enumerate() {
        assert_eq!(&reader.read_probe(ordinal).expect("read"), t);
    }

    // A corrupt file behind a provider: rebuilt, and every served trace
    // equals the ground truth.
    let good = std::fs::read(&path).expect("read rebuilt");
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xff;
    std::fs::write(&path, &bad).expect("write corrupt");
    let provider = TraceProvider::new(
        Some(TraceStore::new(dir.clone())),
        std::slice::from_ref(&bench),
        scale,
    );
    for (probe, t) in probes.iter().zip(&truth) {
        assert_eq!(&provider.trace(probe, &program), t);
    }

    // A fingerprint collision — valid file, right fingerprint, foreign
    // per-probe meta — must not be replayed: the identity cross-check
    // falls back to regeneration.
    let fp = trace_fingerprint(&bench, &scale);
    std::fs::write(&path, synth_trace_bytes(fp)).expect("write collision");
    let provider = TraceProvider::new(
        Some(TraceStore::new(dir.clone())),
        std::slice::from_ref(&bench),
        scale,
    );
    for (probe, t) in probes.iter().zip(&truth) {
        assert_eq!(&provider.trace(probe, &program), t);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tiny memory collection the partition-equivalence test replays.
fn tiny_mem_config() -> MemCollectionConfig {
    let mut config = MemCollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 10,
            ..GbtParams::default()
        })],
        TargetMetric::Amat,
    );
    config.workload = WorkloadScale::tiny();
    config.max_probes = Some(4);
    config.threads = 2;
    config
}

// One env-touching test (not several) on purpose: `PERFBUG_TRACE_DIR`
// is process-global state, and a sibling test mutating it concurrently
// would race this test's cold/warm windows.
#[test]
fn warm_collections_are_bit_identical_under_any_partition() {
    let config = tiny_mem_config();
    let dir = scratch("partition");

    // Cold baseline: no trace store at all.
    std::env::remove_var(TRACE_DIR_ENV);
    let mut baseline = collect_memory(&config);
    baseline.zero_timings();

    std::env::set_var(TRACE_DIR_ENV, &dir);

    // Warm, same partition.
    let mut warm = collect_memory(&config);
    warm.zero_timings();
    assert_eq!(warm, baseline, "warm full pass diverged");

    // Warm, different worker count.
    let mut serial = config.clone();
    serial.threads = 1;
    let mut warm_serial = collect_memory(&serial);
    warm_serial.zero_timings();
    assert_eq!(warm_serial, baseline, "warm single-threaded pass diverged");

    // Warm, any shard partition: the concatenated shard collections
    // must equal the unsharded baseline row for row.
    for count in [2usize, 3] {
        let mut merged: Option<perfbug_core::Collection> = None;
        for index in 0..count {
            let (mut shard, total) = collect_memory_sharded(&config, ShardSpec { index, count });
            shard.zero_timings();
            assert_eq!(total, baseline.probes.len());
            match merged.as_mut() {
                None => merged = Some(shard),
                Some(m) => {
                    m.probes.extend(shard.probes);
                    m.overall_ipc.extend(shard.overall_ipc);
                    m.agg_features.extend(shard.agg_features);
                    m.captures.extend(shard.captures);
                    for (dst, src) in m.engines.iter_mut().zip(shard.engines) {
                        dst.deltas.extend(src.deltas);
                    }
                }
            }
        }
        let merged = merged.expect("at least one shard");
        assert_eq!(merged, baseline, "{count}-shard warm partition diverged");
    }

    std::env::remove_var(TRACE_DIR_ENV);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pins exactly which bug families are trace-invariant: today, *all* of
/// them, on both simulator sides — performance bugs are timing-only and
/// never change the demand stream. A new family must take a position in
/// `perturbs_trace` (the match is exhaustive) and update this pin, so it
/// cannot silently replay a trace it invalidates.
#[test]
fn trace_invariance_is_pinned_per_family() {
    let core = BugCatalog::core_extended();
    let ids: BTreeSet<u32> = core.type_ids().into_iter().collect();
    assert_eq!(ids, (1..=16).collect(), "core family roster changed");
    for bug in core.variants() {
        assert!(
            !bug.perturbs_trace(),
            "core family {} (type {}) is no longer trace-invariant; update the \
             trace-cache gating and this pin together",
            bug.type_name(),
            bug.type_id()
        );
    }
    assert!(core.trace_invariant());

    let mem = MemBugCatalog::extended();
    let ids: BTreeSet<u32> = mem.type_ids().into_iter().collect();
    assert_eq!(ids, (1..=8).collect(), "memory family roster changed");
    for bug in mem.variants() {
        assert!(
            !bug.perturbs_trace(),
            "memory family {} (type {}) is no longer trace-invariant; update the \
             trace-cache gating and this pin together",
            bug.type_name(),
            bug.type_id()
        );
    }
    assert!(mem.trace_invariant());
}

//! Process-level supervision: the orchestrator's [`ProcessLauncher`]
//! over real child processes — exit-status handling, kill/reap of hung
//! and fault-injected workers, spawn failures, and requeue onto the
//! surviving pool.
//!
//! Workers here are tiny `sh` scripts (touch a marker file, exit with a
//! code, or sleep forever); the collection-level properties (kill
//! schedules still assemble the bit-identical corpus) live in
//! `orchestrate_props.rs`.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use perfbug_core::exec::ShardSpec;
use perfbug_core::orchestrate::{
    run_orchestrator, AttemptOutcome, Fault, OrchestratorConfig, ProcessLauncher,
};

/// Fresh scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfbug-orchproc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn quick_config(workers: usize, shards: usize) -> OrchestratorConfig {
    let mut config = OrchestratorConfig::new(workers, shards);
    config.poll_interval = Duration::from_millis(2);
    config.retry_delay = Duration::from_millis(2);
    config
}

/// `sh -c <script>` command.
fn sh(script: String) -> Command {
    let mut cmd = Command::new("sh");
    cmd.arg("-c").arg(script);
    cmd
}

#[test]
fn real_workers_complete_a_clean_pass() {
    let dir = scratch("clean");
    let marker = |shard: ShardSpec| dir.join(format!("shard-{}.done", shard.index));
    let mut launcher = ProcessLauncher {
        build: |shard: ShardSpec, _attempt: u32| sh(format!("touch {}", marker(shard).display())),
        verify: |shard: ShardSpec| {
            if marker(shard).exists() {
                Ok(())
            } else {
                Err("marker missing".into())
            }
        },
        plan: None,
    };
    let report = run_orchestrator(&quick_config(2, 5), &mut launcher);
    assert!(report.success, "{}", report.summary());
    assert_eq!(report.attempts.len(), 5);
    assert!(report.attempts.iter().all(|a| a.outcome.is_success()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nonzero_exit_is_requeued_with_its_code() {
    let dir = scratch("exitcode");
    let marker = |shard: ShardSpec| dir.join(format!("shard-{}.done", shard.index));
    let mut launcher = ProcessLauncher {
        build: |shard: ShardSpec, attempt: u32| {
            if shard.index == 0 && attempt == 0 {
                sh("exit 3".into())
            } else {
                sh(format!("touch {}", marker(shard).display()))
            }
        },
        verify: |shard: ShardSpec| {
            if marker(shard).exists() {
                Ok(())
            } else {
                Err("marker missing".into())
            }
        },
        plan: None,
    };
    let report = run_orchestrator(&quick_config(2, 3), &mut launcher);
    assert!(report.success, "{}", report.summary());
    let attempts = report.attempts_for(0);
    assert_eq!(attempts.len(), 2);
    assert_eq!(attempts[0].outcome, AttemptOutcome::Exit { code: Some(3) });
    assert!(attempts[1].outcome.is_success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_is_killed_on_timeout_and_shard_recovers() {
    let dir = scratch("timeout");
    let marker = |shard: ShardSpec| dir.join(format!("shard-{}.done", shard.index));
    let mut config = quick_config(2, 2);
    config.shard_timeout = Some(Duration::from_millis(150));
    let t0 = Instant::now();
    let mut launcher = ProcessLauncher {
        build: |shard: ShardSpec, attempt: u32| {
            if shard.index == 1 && attempt == 0 {
                sh("sleep 30".into())
            } else {
                sh(format!("touch {}", marker(shard).display()))
            }
        },
        verify: |shard: ShardSpec| {
            if marker(shard).exists() {
                Ok(())
            } else {
                Err("marker missing".into())
            }
        },
        plan: None,
    };
    let report = run_orchestrator(&config, &mut launcher);
    assert!(report.success, "{}", report.summary());
    let attempts = report.attempts_for(1);
    assert_eq!(attempts[0].outcome, AttemptOutcome::TimedOut);
    assert!(attempts[1].outcome.is_success());
    // The hung worker was killed, not waited out.
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "kill happened via timeout, not sleep completion"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_fault_kills_a_real_worker_and_the_pool_recovers() {
    let dir = scratch("fault");
    let marker = |shard: ShardSpec| dir.join(format!("shard-{}.done", shard.index));
    let mut config = quick_config(3, 6);
    config.faults = Fault::parse_list("kill:1").expect("fault");
    let mut launcher = ProcessLauncher {
        build: |shard: ShardSpec, attempt: u32| {
            if shard.index == 1 && attempt == 0 {
                // Long-lived: only the injected kill can end it promptly.
                sh("sleep 30".into())
            } else {
                sh(format!("touch {}", marker(shard).display()))
            }
        },
        verify: |shard: ShardSpec| {
            if marker(shard).exists() {
                Ok(())
            } else {
                Err("marker missing".into())
            }
        },
        plan: None,
    };
    let t0 = Instant::now();
    let report = run_orchestrator(&config, &mut launcher);
    assert!(report.success, "{}", report.summary());
    let attempts = report.attempts_for(1);
    assert_eq!(attempts[0].outcome, AttemptOutcome::FaultKilled);
    assert!(attempts[1].outcome.is_success());
    assert!(t0.elapsed() < Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unspawnable_worker_is_a_recorded_failure_not_a_crash() {
    let dir = scratch("spawn");
    let marker = |shard: ShardSpec| dir.join(format!("shard-{}.done", shard.index));
    let mut launcher = ProcessLauncher {
        build: |shard: ShardSpec, attempt: u32| {
            if shard.index == 0 && attempt == 0 {
                Command::new("/nonexistent/perfbug-worker-binary")
            } else {
                sh(format!("touch {}", marker(shard).display()))
            }
        },
        verify: |shard: ShardSpec| {
            if marker(shard).exists() {
                Ok(())
            } else {
                Err("marker missing".into())
            }
        },
        plan: None,
    };
    let report = run_orchestrator(&quick_config(1, 2), &mut launcher);
    assert!(report.success, "{}", report.summary());
    let attempts = report.attempts_for(0);
    assert!(matches!(
        attempts[0].outcome,
        AttemptOutcome::SpawnFailed { .. }
    ));
    assert!(attempts[1].outcome.is_success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_exit_without_output_is_retried() {
    let dir = scratch("badout");
    let marker = |shard: ShardSpec| dir.join(format!("shard-{}.done", shard.index));
    let mut launcher = ProcessLauncher {
        build: |shard: ShardSpec, attempt: u32| {
            if shard.index == 0 && attempt == 0 {
                sh("true".into()) // exits 0, produces nothing
            } else {
                sh(format!("touch {}", marker(shard).display()))
            }
        },
        verify: |shard: ShardSpec| {
            if marker(shard).exists() {
                Ok(())
            } else {
                Err("marker missing".into())
            }
        },
        plan: None,
    };
    let report = run_orchestrator(&quick_config(1, 1), &mut launcher);
    assert!(report.success, "{}", report.summary());
    let attempts = report.attempts_for(0);
    assert!(matches!(
        attempts[0].outcome,
        AttemptOutcome::BadOutput { .. }
    ));
    assert!(attempts[1].outcome.is_success());
    let _ = std::fs::remove_dir_all(&dir);
}

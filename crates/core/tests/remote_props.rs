//! Wire-protocol robustness for the distributed shard fan-out
//! (`orchestrate::remote`): every frame round-trips byte-exactly,
//! streams of concatenated frames decode incrementally with correct
//! consumed offsets, and — mirroring the persist codec's corruption
//! discipline — any truncation waits (`Ok(None)`) while any single-bit
//! flip is rejected or keeps waiting; a flipped frame must never decode
//! back to the original. `decode` must not panic on any input.

use perfbug_core::exec::ShardSpec;
use perfbug_core::orchestrate::remote::{Frame, LaunchRequest, MAX_FRAME_LEN, PROTOCOL_VERSION};
use perfbug_core::orchestrate::ExitKind;
use perfbug_core::persist::ExperimentKind;
use proptest::prelude::*;

/// Deterministically expands a numeric seed tuple into one frame,
/// covering every variant (the compat proptest has no `prop_oneof`, so
/// variant choice is the seed's low bits).
fn frame_from(sel: u64, a: u64, b: u64, c: u32) -> Frame {
    match sel % 6 {
        0 => {
            let count = (a % 64) as usize + 1;
            Frame::Launch(LaunchRequest {
                prefix: format!("spec-{:x}", a % 0x1000),
                kind: if a.is_multiple_of(2) {
                    ExperimentKind::Core
                } else {
                    ExperimentKind::Memory
                },
                fingerprint: b,
                shard: ShardSpec::new(b as usize % count, count),
                attempt: c,
                cache_dir: format!("cache/dir-{:x}", b % 0x1000),
                resume_offset: a ^ b,
            })
        }
        1 => Frame::Accepted { resume_offset: a },
        2 => Frame::Rejected {
            reason: format!("refused because {:x} ({})", a, b % 97),
        },
        3 => Frame::Heartbeat { durable_probes: a },
        4 => Frame::ShardChecksum { checksum: a },
        _ => Frame::Exited {
            exit: match a % 3 {
                0 => ExitKind::Success,
                1 => ExitKind::Failure {
                    code: Some(b as i32),
                },
                _ => ExitKind::Failure { code: None },
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_frame_round_trips_byte_exactly(
        sel in 0u64..6,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
    ) {
        let frame = frame_from(sel, a, b, c);
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes);
        prop_assert_eq!(
            decoded,
            Ok(Some((frame, bytes.len()))),
            "a self-encoded frame must decode in full"
        );
    }

    #[test]
    fn concatenated_frames_decode_in_order_with_exact_offsets(
        seeds in prop::collection::vec((0u64..6, any::<u64>(), any::<u64>(), any::<u32>()), 1..6),
    ) {
        let frames: Vec<Frame> = seeds
            .iter()
            .map(|&(sel, a, b, c)| frame_from(sel, a, b, c))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut offset = 0usize;
        for expected in &frames {
            let (decoded, consumed) = Frame::decode(&stream[offset..])
                .expect("valid stream")
                .expect("complete frame available");
            prop_assert_eq!(&decoded, expected);
            offset += consumed;
        }
        prop_assert_eq!(offset, stream.len(), "the stream must be consumed exactly");
    }

    #[test]
    fn any_truncation_waits_for_more_bytes(
        sel in 0u64..6,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = frame_from(sel, a, b, c).encode();
        // Every strict prefix is an incomplete frame: the decoder must
        // ask for more bytes, not guess or panic.
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert_eq!(
            Frame::decode(&bytes[..cut]).expect("prefixes are never invalid"),
            None,
            "truncated at {}/{}",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn any_single_bit_flip_is_rejected_or_left_pending(
        sel in 0u64..6,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        pos_seed in any::<u64>(),
        bit in 0u64..8,
    ) {
        let frame = frame_from(sel, a, b, c);
        let mut flipped = frame.encode();
        let pos = (pos_seed % flipped.len() as u64) as usize;
        flipped[pos] ^= 1 << bit;
        match Frame::decode(&flipped) {
            // Flips in the tag/payload/checksum trip the FNV check; flips
            // in the length field either leave the legal range (error) or
            // claim a longer frame than the buffer holds (pending).
            Err(_) | Ok(None) => {}
            Ok(Some((decoded, _))) => {
                prop_assert!(
                    decoded != frame,
                    "bit {} of byte {} flipped yet the original frame decoded",
                    bit,
                    pos
                );
                prop_assert!(
                    false,
                    "a corrupted frame decoded successfully (byte {}, bit {})",
                    pos,
                    bit
                );
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u64..256, 0..256),
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        // Any result is fine — the property is "no panic".
        let _ = Frame::decode(&raw);
    }
}

#[test]
fn out_of_range_length_fields_are_rejected_up_front() {
    let mut oversized = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 16]);
    assert!(
        Frame::decode(&oversized).is_err(),
        "len above the cap must not 'wait' for a mebibyte that never comes"
    );
    let undersized = 1u32.to_le_bytes().to_vec(); // below the tag+checksum floor
    assert!(Frame::decode(&undersized).is_err());
}

#[test]
fn foreign_protocol_versions_are_rejected() {
    let req = LaunchRequest {
        prefix: "demo".into(),
        kind: ExperimentKind::Core,
        fingerprint: 0xfeed,
        shard: ShardSpec::new(0, 2),
        attempt: 0,
        cache_dir: "cache".into(),
        resume_offset: 0,
    };
    let good = Frame::Launch(req).encode();
    // Version is the first payload field (after len + tag). Patch it and
    // re-checksum so only the version disagrees.
    let mut body = good[4..good.len() - 8].to_vec();
    body[1..5].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
    let sum = perfbug_core::persist::fnv1a(&body);
    let mut patched = ((body.len() + 8) as u32).to_le_bytes().to_vec();
    patched.extend_from_slice(&body);
    patched.extend_from_slice(&sum.to_le_bytes());
    let err = Frame::decode(&patched).expect_err("version skew must be an error");
    assert!(err.0.contains("protocol version"), "{err}");
}

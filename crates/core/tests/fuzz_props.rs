//! Fuzzer determinism and severity-calibration properties.
//!
//! The fuzzer's contract is that a [`FuzzSpec`] *is* the corpus: the same
//! spec must generate the same catalogue bit for bit, the resulting
//! collection configuration must fingerprint identically no matter how
//! the config object was built or how many threads collect it, and a
//! sharded collection over a fuzzed catalogue must reassemble the
//! single-process pass exactly — otherwise fuzzed corpora could not be
//! cached, sharded or compared across machines. Severity calibration
//! must be order-sane too: cranking a delay knob up never grades a
//! variant *milder* on the calibration workload.

use std::sync::OnceLock;

use perfbug_core::bugs::Severity;
use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::{
    collect, collect_sharded, Collection, CollectionConfig, ProbeScale,
};
use perfbug_core::fuzz::{core_impact, mem_impact, Family, FuzzSpec};
use perfbug_core::persist::{config_fingerprint, encode_collection, merge_collections};
use perfbug_core::stage1::EngineSpec;
use perfbug_memsim::MemBugSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::benchmark;
use proptest::prelude::*;

/// Parameterised families the determinism property draws subsets from —
/// a mix of paper types and the post-paper extensions, both simulators.
const FAMILY_POOL: [Family; 6] = [
    Family::Core(7),  // MispredictExtraDelayT
    Family::Core(10), // L2ExtraLatencyT
    Family::Core(15), // TlbPageWalkDelayT
    Family::Core(16), // ReplayEveryNDelayT
    Family::Mem(7),   // SppDegreeStride
    Family::Mem(8),   // DramPageCloseDelayT
];

/// The fixed spec the collection-level invariance tests fuzz with: both
/// new core families, two variants each.
fn fuzzed_core_spec() -> FuzzSpec {
    FuzzSpec {
        seed: 0xF0CC,
        families: vec![Family::Core(15), Family::Core(16)],
        count: 2,
        severity_band: None,
    }
}

/// A tiny collection config over the fuzzed catalogue.
fn fuzz_config(threads: usize) -> CollectionConfig {
    let catalog = fuzzed_core_spec()
        .generate()
        .core_catalog()
        .expect("core families were requested");
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 25,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![benchmark("462.libquantum").expect("suite")];
    config.max_probes = Some(3);
    config.threads = threads;
    config
}

/// The single-thread reference collection, collected once.
fn reference_collection() -> &'static Collection {
    static FULL: OnceLock<Collection> = OnceLock::new();
    FULL.get_or_init(|| collect(&fuzz_config(1)))
}

/// Same spec, same catalogue — including the calibrated severities and
/// impacts — and same PBCL config fingerprint, no matter that the spec
/// and config objects were built twice from scratch. The thread count
/// must not leak into the fingerprint (workers are an execution detail).
fn check_same_spec_identity(seed: u64, mask: u32) -> Result<(), TestCaseError> {
    let families: Vec<Family> = FAMILY_POOL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &f)| f)
        .collect();
    let spec = || FuzzSpec {
        seed,
        families: families.clone(),
        count: 1,
        severity_band: None,
    };
    let a = spec().generate();
    let b = spec().generate();
    prop_assert_eq!(&a, &b, "one spec, two catalogues");

    if let (Some(cat_a), Some(cat_b)) = (a.core_catalog(), b.core_catalog()) {
        let mk = |catalog, threads| {
            let mut config =
                CollectionConfig::new(vec![EngineSpec::Gbt(GbtParams::default())], catalog);
            config.scale = ProbeScale::tiny();
            config.threads = threads;
            config
        };
        prop_assert_eq!(
            config_fingerprint(&mk(cat_a, 1)),
            config_fingerprint(&mk(cat_b, 4)),
            "fingerprint must depend on the fuzzed catalogue only"
        );
    }
    Ok(())
}

/// Larger delay knobs never grade *milder*: the calibrated severity of
/// every delay-parameterised family is monotone in `t` along a doubling
/// sequence.
fn check_severity_monotone(base: u32) -> Result<(), TestCaseError> {
    let ts = [base, base * 2, base * 4, base * 8];
    let ladders: [&dyn Fn(u32) -> f64; 4] = [
        &|t| core_impact(BugSpec::MispredictExtraDelay { t }),
        &|t| core_impact(BugSpec::L2ExtraLatency { t }),
        &|t| core_impact(BugSpec::TlbPageWalkDelay { entries: 8, t }),
        &|t| mem_impact(MemBugSpec::DramPageCloseDelay { t }),
    ];
    for (which, impact_of) in ladders.iter().enumerate() {
        let grades: Vec<Severity> = ts.iter().map(|&t| Severity::grade(impact_of(t))).collect();
        for pair in grades.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "ladder {which}: grades {grades:?} not monotone over t = {ts:?}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_spec_generates_identical_catalog_and_fingerprint(
        seed in any::<u64>(),
        mask in 1u32..(1 << FAMILY_POOL.len()),
    ) {
        check_same_spec_identity(seed, mask)?;
    }

    #[test]
    fn severity_calibration_is_monotone_in_delay(base in 2u32..=12) {
        check_severity_monotone(base)?;
    }
}

/// Thread-count invariance at the collection level: a fuzzed catalogue
/// collected with 1 worker and with 3 encodes byte-identically (timings
/// aside — the only sanctioned nondeterminism).
#[test]
fn fuzzed_collection_is_worker_count_invariant() {
    let mut one = reference_collection().clone();
    let mut three = collect(&fuzz_config(3));
    one.zero_timings();
    three.zero_timings();
    let fp = config_fingerprint(&fuzz_config(1));
    assert_eq!(
        fp,
        config_fingerprint(&fuzz_config(3)),
        "thread count must not change the fingerprint"
    );
    assert!(
        encode_collection(&one, fp) == encode_collection(&three, fp),
        "worker count changed the collected corpus"
    );
}

/// Shard-partition invariance: collecting the fuzzed corpus in 3 shards
/// and merging reassembles the single-process pass bit for bit.
#[test]
fn fuzzed_collection_is_shard_partition_invariant() {
    let config = fuzz_config(2);
    let fp = config_fingerprint(&config);
    let parts: Vec<_> = (0..3)
        .map(|index| {
            let shard = ShardSpec::new(index, 3);
            let (col, total) = collect_sharded(&config, shard);
            let header = perfbug_core::persist::FileHeader {
                kind: perfbug_core::persist::ExperimentKind::Core,
                corpus_revision: perfbug_core::persist::CORPUS_REVISION,
                fingerprint: fp,
                manifest: perfbug_core::persist::ShardManifest::of(shard, total),
            };
            (col, header)
        })
        .collect();
    let (mut merged, header) = merge_collections(parts).expect("complete partition merges");
    assert!(header.manifest.is_full());
    let mut full = reference_collection().clone();
    merged.zero_timings();
    full.zero_timings();
    assert!(
        encode_collection(&merged, fp) == encode_collection(&full, fp),
        "shard partition changed the fuzzed corpus"
    );
}

//! Crash-recovery properties of the v3 chunked format: a part file
//! truncated or corrupted at *any* byte offset yields a clean durable
//! chunk prefix (or a precise rejection) — never wrong probe data — and
//! resuming from a kill at any point finishes a file bit-identical to an
//! uninterrupted pass.

use std::path::PathBuf;
use std::time::Duration;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{CapturedSeries, Collection, EngineResult, ProbeMeta, RunKey};
use perfbug_core::persist::{
    encode_collection_with, part_path_for, scan_part, ExperimentKind, FileHeader, ProbeRecord,
    ShardManifest, ShardStreamWriter, CORPUS_REVISION,
};
use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::Opcode;
use proptest::prelude::*;

/// A small synthetic collection with *zeroed* engine timings, so a
/// streamed re-write (whose resumed timings restart at zero) can be
/// compared byte-for-byte against the direct encode.
fn synth_collection(n_probes: usize, floats: &[f64]) -> Collection {
    let mut next = {
        let mut i = 0;
        move || {
            let v = floats[i % floats.len()];
            i += 1;
            v
        }
    };
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::FpMul },
        BugSpec::OpcodeUsesRegDelay {
            x: Opcode::Load,
            r: 3,
            t: 8,
        },
    ]);
    let mut keys = vec![RunKey {
        arch: "Skylake".into(),
        set: ArchSet::IV,
        bug: None,
    }];
    for b in 0..catalog.len() {
        keys.push(RunKey {
            arch: "Skylake".into(),
            set: ArchSet::II,
            bug: Some(b),
        });
    }
    let probes: Vec<ProbeMeta> = (0..n_probes)
        .map(|p| ProbeMeta {
            id: format!("bench#{p}"),
            benchmark: "bench".into(),
            weight: next(),
        })
        .collect();
    let engines: Vec<EngineResult> = (0..2)
        .map(|e| EngineResult {
            name: format!("GBT-{e}"),
            deltas: (0..n_probes)
                .map(|_| keys.iter().map(|_| next()).collect())
                .collect(),
            train_time: Duration::ZERO,
            infer_time: Duration::ZERO,
        })
        .collect();
    Collection {
        overall_ipc: (0..n_probes)
            .map(|_| keys.iter().map(|_| next()).collect())
            .collect(),
        agg_features: (0..n_probes)
            .map(|_| keys.iter().map(|_| vec![next(), next()]).collect())
            .collect(),
        captures: (0..n_probes)
            .map(|p| CapturedSeries {
                probe_id: format!("bench#{p}"),
                arch: "IvyBridge".into(),
                bug: (p % 2 == 0).then_some(p % 2),
                engine: "GBT-0".into(),
                simulated: vec![next(), next()],
                inferred: vec![next(), next()],
            })
            .collect(),
        keys,
        probes,
        engines,
        catalog,
    }
}

fn header_for(col: &Collection, fingerprint: u64) -> FileHeader {
    FileHeader {
        kind: ExperimentKind::Core,
        corpus_revision: CORPUS_REVISION,
        fingerprint,
        manifest: ShardManifest::full(col.probes.len()),
    }
}

/// The probe record the v3 codec stores for probe `p` of `col`.
fn record_for(col: &Collection, p: usize) -> ProbeRecord {
    ProbeRecord {
        meta: col.probes[p].clone(),
        overall: col.overall_ipc[p].clone(),
        agg: col.agg_features[p].clone(),
        deltas: col.engines.iter().map(|e| e.deltas[p].clone()).collect(),
        captures: col
            .captures
            .iter()
            .filter(|c| c.probe_id == col.probes[p].id)
            .cloned()
            .collect(),
    }
}

/// A scratch directory unique to one proptest case.
fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perfbug-recover-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Killing the writer after any byte count — the part file is an
    // arbitrary prefix of the finished file — and resuming finishes a
    // file bit-identical to the uninterrupted pass.
    #[test]
    fn resume_from_any_kill_point_is_bit_identical(
        cut_seed in any::<u64>(),
        n_probes in 1usize..5,
        floats in prop::collection::vec(-1e9..1e9f64, 8..16),
    ) {
        let col = synth_collection(n_probes, &floats);
        let header = header_for(&col, 0xfeed);
        let reference = encode_collection_with(&col, &header);
        let cut = (cut_seed as usize) % reference.len();

        let dir = scratch("kill", cut as u64);
        let target = dir.join("shard.pbcol");
        std::fs::write(part_path_for(&target), &reference[..cut]).expect("write part");

        let engine_names: Vec<String> =
            col.engines.iter().map(|e| e.name.clone()).collect();
        let mut writer = ShardStreamWriter::create_or_resume(
            &target, &header, &col.keys, &engine_names, &col.catalog,
        ).expect("create_or_resume");
        let resumed = writer.resumed_probes();
        prop_assert!(resumed <= n_probes as u64, "cannot resume more than exists");
        for p in resumed as usize..n_probes {
            writer
                .append_probe(&record_for(&col, p), &[(Duration::ZERO, Duration::ZERO); 2])
                .expect("append");
        }
        writer.finish().expect("finish");

        let finished = std::fs::read(&target).expect("read finished");
        prop_assert!(
            finished == reference,
            "kill at byte {cut}/{} (resumed {resumed} probes): finished file differs",
            reference.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // A part truncated at any offset scans to a clean chunk prefix whose
    // probe records are exactly the first `k` originals — or is rejected
    // outright (cut inside header/meta). Never wrong data.
    #[test]
    fn truncation_recovers_a_clean_prefix_or_rejects(
        cut_seed in any::<u64>(),
        floats in prop::collection::vec(-1e9..1e9f64, 8..16),
    ) {
        let col = synth_collection(3, &floats);
        let header = header_for(&col, 0xbeef);
        let reference = encode_collection_with(&col, &header);
        let cut = (cut_seed as usize) % reference.len();
        let full = scan_part(&reference).expect("finished file scans");
        let meta_end = (full.chunks[0].offset + full.chunks[0].len) as usize;

        match scan_part(&reference[..cut]) {
            Ok(prefix) => {
                prop_assert!(prefix.durable_len as usize <= cut);
                prop_assert_eq!(prefix.torn_bytes as usize, cut - prefix.durable_len as usize);
                // Every durable chunk boundary matches the uninterrupted
                // file's chunk table exactly.
                prop_assert_eq!(
                    &full.chunks[..prefix.chunks.len()],
                    &prefix.chunks[..]
                );
                prop_assert_eq!(prefix.header, header);
            }
            Err(_) => {
                // Rejection is precise: only a cut inside the mandatory
                // header + meta chunk makes the part unscannable.
                prop_assert!(
                    cut < meta_end,
                    "cut at {cut} (meta ends {meta_end}) must scan"
                );
            }
        }
    }

    // Flipping any single byte of a torn part never produces wrong probe
    // data: the scan either rejects the part or yields probe records
    // equal to the originals (the flipped chunk and everything after it
    // are dropped; a header flip may relabel the file but cannot forge
    // payload).
    #[test]
    fn corruption_never_yields_wrong_probe_data(
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
        floats in prop::collection::vec(-1e9..1e9f64, 8..16),
    ) {
        let col = synth_collection(3, &floats);
        let header = header_for(&col, 0xdead);
        let reference = encode_collection_with(&col, &header);
        let full = scan_part(&reference).expect("finished file scans");
        // Only the chunked body: the footer region is already a torn tail
        // to scan_part, so flips there are trivially invisible.
        let body_len = full.durable_len as usize;
        let mut bytes = reference[..body_len].to_vec();
        let pos = (pos_seed as usize) % body_len;
        bytes[pos] ^= flip;

        if let Ok(prefix) = scan_part(&bytes) {
            for entry in prefix.chunks.iter().filter(|c| !c.is_meta()) {
                prop_assert!(
                    (pos as u64) < entry.offset || (pos as u64) >= entry.offset + entry.len,
                    "flip at {pos} landed inside a chunk reported durable \
                     ({}..{})",
                    entry.offset,
                    entry.offset + entry.len
                );
            }
        }
    }
}

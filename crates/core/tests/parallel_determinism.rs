//! The run-level parallel execution engine must be invisible in the
//! results: `collect()` with one worker and with many workers has to
//! produce byte-identical collections — same `RunKey` ordering, same
//! stage-1 deltas, same aggregate features — because scheduling must
//! never leak into the science.

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, CollectionConfig, ProbeScale};
use perfbug_core::memory::{collect_memory, MemCollectionConfig, TargetMetric};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode, WorkloadScale};

fn config_with_threads(threads: usize) -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 30,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite benchmark"),
        benchmark("462.libquantum").expect("suite benchmark"),
    ];
    config.max_probes = Some(4);
    config.threads = threads;
    config
}

#[test]
fn collect_is_identical_across_worker_counts() {
    let serial = collect(&config_with_threads(1));
    for threads in [2, 4, 7] {
        let parallel = collect(&config_with_threads(threads));

        // Same key list in the same order.
        assert_eq!(
            serial.keys, parallel.keys,
            "threads={threads}: key order diverged"
        );
        assert_eq!(
            serial.probes, parallel.probes,
            "threads={threads}: probe order diverged"
        );

        // Byte-identical stage-1 errors.
        assert_eq!(serial.engines.len(), parallel.engines.len());
        for (a, b) in serial.engines.iter().zip(&parallel.engines) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.deltas, b.deltas, "threads={threads}: deltas diverged");
        }

        // Byte-identical simulated IPC and baseline aggregates.
        assert_eq!(
            serial.overall_ipc, parallel.overall_ipc,
            "threads={threads}"
        );
        assert_eq!(
            serial.agg_features, parallel.agg_features,
            "threads={threads}"
        );
    }
}

#[test]
fn collect_memory_is_identical_across_worker_counts() {
    let build = |threads: usize| {
        let mut config = MemCollectionConfig::new(
            vec![EngineSpec::Gbt(GbtParams {
                n_trees: 20,
                ..GbtParams::default()
            })],
            TargetMetric::Amat,
        );
        config.workload = WorkloadScale::tiny();
        config.step_cycles = 300;
        config.max_probes = Some(3);
        config.threads = threads;
        collect_memory(&config)
    };
    let serial = build(1);
    let parallel = build(8);
    assert_eq!(serial.keys, parallel.keys);
    assert_eq!(serial.engines[0].deltas, parallel.engines[0].deltas);
    assert_eq!(serial.overall_ipc, parallel.overall_ipc);
    assert_eq!(serial.agg_features, parallel.agg_features);
}

#[test]
fn thread_count_defaults_to_available_parallelism() {
    let config = CollectionConfig::new(
        vec![EngineSpec::gbt250()],
        BugCatalog::new(vec![BugSpec::L2ExtraLatency { t: 10 }]),
    );
    // No 8-thread cap: the default must equal the machine's parallelism
    // and never be clamped above 1.
    assert_eq!(config.threads, perfbug_core::exec::default_threads());
    assert!(config.threads >= 1);
}

//! Shard determinism: any shard partition of the (probe × unit) grid,
//! merged in any order, reassembles the single-process collection
//! bit-identically (wall-clock timings aside, which sum over shards), and
//! overlapping or missing shard sets are rejected with precise errors.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use perfbug_core::bugs::BugCatalog;
use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::{
    collect, collect_sharded, CaptureSpec, Collection, CollectionConfig, ProbeScale,
};
use perfbug_core::persist::{
    collect_shard_or_load, config_fingerprint, encode_collection, merge_collections, CacheStatus,
    ExperimentKind, FileHeader, PersistError, ShardManifest, CORPUS_REVISION,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};
use proptest::prelude::*;

/// Shard counts the property test draws from: an even split, an uneven
/// split, and more shards than probes (so some shards are empty).
const SHARD_COUNTS: [usize; 3] = [2, 3, 7];

fn tiny_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 25,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite"),
        benchmark("462.libquantum").expect("suite"),
    ];
    config.max_probes = Some(5);
    config.threads = 2;
    // A captured series on a middle probe, so the merge path is exercised
    // on captures too (they concatenate in probe order).
    config.captures = vec![CaptureSpec {
        probe_id: "458.sjeng#1".into(),
        arch: "Skylake".into(),
        bug: Some(1),
    }];
    config
}

/// The single-process reference collection, collected once.
fn full_collection() -> &'static Collection {
    static FULL: OnceLock<Collection> = OnceLock::new();
    FULL.get_or_init(|| collect(&tiny_config()))
}

/// One decoded shard: its collection and the header it was written under.
type ShardPart = (Collection, FileHeader);

/// Shard parts per shard count, collected once per count and shared
/// across property cases (each count costs one full collection pass).
fn shard_parts(count: usize) -> Vec<ShardPart> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Vec<ShardPart>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("shard cache lock");
    cache
        .entry(count)
        .or_insert_with(|| {
            let config = tiny_config();
            let fingerprint = config_fingerprint(&config);
            (0..count)
                .map(|index| {
                    let shard = ShardSpec::new(index, count);
                    let (col, total) = collect_sharded(&config, shard);
                    let header = FileHeader {
                        kind: ExperimentKind::Core,
                        corpus_revision: CORPUS_REVISION,
                        fingerprint,
                        manifest: ShardManifest::of(shard, total),
                    };
                    (col, header)
                })
                .collect()
        })
        .clone()
}

/// Deterministic Fisher–Yates driven by a seed, so "merged in any order"
/// is exercised without `rand` in the test.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_partition_merged_in_any_order_is_bit_identical(
        count_idx in 0usize..SHARD_COUNTS.len(),
        order_seed in any::<u64>(),
    ) {
        let count = SHARD_COUNTS[count_idx];
        let mut parts = shard_parts(count);
        shuffle(&mut parts, order_seed);

        let (mut merged, header) = merge_collections(parts).expect("complete partition merges");
        prop_assert!(header.manifest.is_full());

        let mut full = full_collection().clone();
        merged.zero_timings();
        full.zero_timings();
        // Bit-identical: the canonical encodings must match byte for byte.
        let fingerprint = config_fingerprint(&tiny_config());
        prop_assert!(
            encode_collection(&merged, fingerprint) == encode_collection(&full, fingerprint),
            "merge of {count} shards (order seed {order_seed}) diverged from the full pass"
        );
    }

    #[test]
    fn missing_shards_are_rejected_with_the_missing_range(
        count_idx in 0usize..SHARD_COUNTS.len(),
        drop_seed in any::<u64>(),
    ) {
        let count = SHARD_COUNTS[count_idx];
        let mut parts = shard_parts(count);
        let dropped = (drop_seed as usize) % parts.len();
        parts.remove(dropped);
        match merge_collections(parts) {
            Err(PersistError::Shard(msg)) => prop_assert!(
                msg.contains(&format!("expected {count} shards")),
                "error must name the expected shard count: {msg}"
            ),
            other => prop_assert!(false, "expected shard error, merged: {:?}", other.is_ok()),
        }
    }
}

#[test]
fn overlapping_shards_are_rejected_with_the_overlap() {
    // Shard 0's part presented as covering shard 1's range too: the same
    // probes appear twice under a consistent-looking count.
    let parts = shard_parts(2);
    let dup = vec![parts[0].clone(), parts[0].clone()];
    match merge_collections(dup) {
        // Same index twice with identical ranges: caught as overlap.
        Err(PersistError::Shard(msg)) => {
            assert!(msg.contains("overlap"), "imprecise error: {msg}")
        }
        other => panic!("expected overlap rejection, got ok={}", other.is_ok()),
    }
}

#[test]
fn partition_mismatch_is_rejected() {
    // A shard from a 2-way split cannot complete a 3-way split.
    let two = shard_parts(2);
    let three = shard_parts(3);
    let mixed = vec![two[0].clone(), three[1].clone(), three[2].clone()];
    match merge_collections(mixed) {
        Err(PersistError::Shard(msg)) => {
            assert!(msg.contains("partition mismatch"), "imprecise error: {msg}")
        }
        other => panic!("expected partition mismatch, got ok={}", other.is_ok()),
    }
}

#[test]
fn empty_shards_round_trip_through_files() {
    // 7 shards over 5 probes: shards 5 and 6 own zero probes; their files
    // must still save, replay and participate in assembly.
    let config = tiny_config();
    let dir = std::env::temp_dir().join(format!("perfbug-shard-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let shard = ShardSpec::new(6, 7);
    let path = dir.join("empty-shard.pbcol");
    let _ = std::fs::remove_file(&path);
    let (col, status) = collect_shard_or_load(&path, &config, shard).expect("save empty shard");
    assert_eq!(status, CacheStatus::Collected);
    assert!(col.probes.is_empty());
    let (back, status) = collect_shard_or_load(&path, &config, shard).expect("replay empty shard");
    assert_eq!(status, CacheStatus::Replayed);
    assert_eq!(back, col);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

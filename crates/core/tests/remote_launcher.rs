//! In-process loopback suite for the distributed launcher: real TCP
//! connections to real [`serve_daemon`] accept loops on 127.0.0.1, with
//! scripted [`ShardAgent`]s standing in for worker processes. Each test
//! pins one failure-mode mapping of the protocol onto the supervision
//! state machine's vocabulary: connect refusal ⇒ spawn failure
//! (requeue), mid-stream hangup ⇒ wait failure (bounded retry),
//! fingerprint skew ⇒ rejection before any work, supervisor hangup ⇒
//! daemon-side child kill, heartbeats ⇒ resume accounting.

use std::collections::VecDeque;
use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, Collection, CollectionConfig, ProbeScale};
use perfbug_core::orchestrate::remote::{
    serve_daemon, DaemonOptions, LaunchRequest, RemoteLauncher, ShardAgent,
};
use perfbug_core::orchestrate::{
    run_orchestrator, AttemptOutcome, CollectPlan, ExitKind, Fault, OrchestratorConfig,
    WorkerHandle,
};
use perfbug_core::persist::{
    self, collect_shard_or_load, config_fingerprint, encode_collection, load_or_assemble,
    ExperimentKind,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn daemon_options() -> DaemonOptions {
    DaemonOptions {
        poll_interval: Duration::from_millis(5),
        heartbeat_interval: Duration::from_millis(25),
        handshake_timeout: Duration::from_secs(5),
    }
}

/// Starts a worker daemon on an ephemeral loopback port; the accept loop
/// runs on a leaked thread for the life of the test process.
fn spawn_daemon(agent: Arc<dyn ShardAgent>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let _ = serve_daemon(listener, agent, daemon_options());
    });
    addr
}

/// A loopback port with nothing listening: bound once to reserve a fresh
/// number, then dropped so connects are refused.
fn dead_endpoint() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    listener.local_addr().expect("local addr").to_string()
}

fn fast_orch(workers: usize, shards: usize, max_attempts: u32) -> OrchestratorConfig {
    let mut config = OrchestratorConfig::new(workers, shards);
    config.max_attempts = max_attempts;
    config.poll_interval = Duration::from_millis(1);
    config.retry_delay = Duration::from_millis(1);
    config
}

fn accept_all_launcher(endpoints: Vec<String>) -> RemoteLauncher {
    let mut launcher = RemoteLauncher::with_verify(
        endpoints,
        "scripted",
        ExperimentKind::Core,
        0x5eed,
        "unused-cache-dir",
        None,
        Box::new(|_, _| Ok(())),
    );
    launcher.set_timeouts(Duration::from_secs(2), Duration::from_secs(5));
    launcher
}

// ---------------------------------------------------------------------
// Scripted agent
// ---------------------------------------------------------------------

/// What one scripted launch's worker does.
#[derive(Debug, Clone, Copy)]
enum Script {
    /// Exit successfully on the first poll.
    Succeed,
    /// `try_finish` errors immediately: the daemon can no longer observe
    /// the worker, kills it and hangs up without an exit frame.
    WaitError,
    /// Run (poll as "still running") for the given time, then hit the
    /// wait error.
    StallThenWaitError(u64),
    /// Run until killed.
    StallForever,
}

struct ScriptedHandle {
    script: Script,
    spawned: Instant,
    kills: Arc<AtomicUsize>,
}

impl WorkerHandle for ScriptedHandle {
    fn try_finish(&mut self) -> io::Result<Option<ExitKind>> {
        match self.script {
            Script::Succeed => Ok(Some(ExitKind::Success)),
            Script::WaitError => Err(io::Error::other("scripted wait failure")),
            Script::StallThenWaitError(ms) => {
                if self.spawned.elapsed() >= Duration::from_millis(ms) {
                    Err(io::Error::other("scripted wait failure"))
                } else {
                    Ok(None)
                }
            }
            Script::StallForever => Ok(None),
        }
    }

    fn kill(&mut self) {
        self.kills.fetch_add(1, Ordering::SeqCst);
    }
}

/// [`ShardAgent`] whose launches pop a script queue (empty queue means
/// "succeed"), recording every admitted request.
struct ScriptedAgent {
    scripts: Mutex<VecDeque<Script>>,
    launches: Mutex<Vec<LaunchRequest>>,
    kills: Arc<AtomicUsize>,
    /// Fingerprint this daemon insists on; `Some` enables admission.
    expected_fingerprint: Option<u64>,
    /// Durable probes reported on the accept frame and every heartbeat
    /// *after* the first call (accept itself sees 0, so resume knowledge
    /// can only arrive via heartbeats).
    heartbeat_durable: u64,
    durable_calls: AtomicU64,
}

impl ScriptedAgent {
    fn new(scripts: Vec<Script>) -> Self {
        ScriptedAgent {
            scripts: Mutex::new(scripts.into()),
            launches: Mutex::new(Vec::new()),
            kills: Arc::new(AtomicUsize::new(0)),
            expected_fingerprint: None,
            heartbeat_durable: 0,
            durable_calls: AtomicU64::new(0),
        }
    }

    fn launch_count(&self) -> usize {
        self.launches.lock().expect("launches").len()
    }
}

impl ShardAgent for ScriptedAgent {
    fn accept(&self, req: &LaunchRequest) -> Result<(), String> {
        if let Some(expected) = self.expected_fingerprint {
            if req.fingerprint != expected {
                return Err(format!(
                    "config fingerprint mismatch: supervisor sent {:016x}, \
                     this daemon resolves {:016x} (version skew)",
                    req.fingerprint, expected
                ));
            }
        }
        Ok(())
    }

    fn launch(&self, req: &LaunchRequest) -> io::Result<Box<dyn WorkerHandle + Send>> {
        self.launches.lock().expect("launches").push(req.clone());
        let script = self
            .scripts
            .lock()
            .expect("scripts")
            .pop_front()
            .unwrap_or(Script::Succeed);
        Ok(Box::new(ScriptedHandle {
            script,
            spawned: Instant::now(),
            kills: Arc::clone(&self.kills),
        }))
    }

    fn durable_probes(&self, _req: &LaunchRequest) -> Option<u64> {
        if self.durable_calls.fetch_add(1, Ordering::SeqCst) == 0 {
            Some(0)
        } else {
            Some(self.heartbeat_durable)
        }
    }
}

// ---------------------------------------------------------------------
// Failure-mode mappings
// ---------------------------------------------------------------------

#[test]
fn connect_refusal_is_a_requeued_spawn_failure_with_bounded_retries() {
    let mut launcher = accept_all_launcher(vec![dead_endpoint()]);
    let report = run_orchestrator(&fast_orch(1, 1, 2), &mut launcher);
    assert!(!report.success, "nothing listens, so the pass must fail");
    assert_eq!(report.excluded, vec![0]);
    assert_eq!(
        report.attempts.len(),
        2,
        "retries are bounded by the budget: {}",
        report.summary()
    );
    for a in &report.attempts {
        assert!(
            matches!(&a.outcome, AttemptOutcome::SpawnFailed { .. }),
            "a refused connect maps to spawn-failed, got {}",
            a.outcome
        );
    }
}

#[test]
fn a_dead_endpoint_fails_over_to_the_live_one_within_a_single_attempt() {
    let agent = Arc::new(ScriptedAgent::new(vec![]));
    let live = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    let mut launcher = accept_all_launcher(vec![dead_endpoint(), live]);
    let report = run_orchestrator(&fast_orch(1, 1, 1), &mut launcher);
    assert!(report.success, "{}", report.summary());
    assert_eq!(
        report.attempts.len(),
        1,
        "failover must not burn an attempt"
    );
    assert!(report.attempts[0].outcome.is_success());
    assert_eq!(agent.launch_count(), 1);
}

#[test]
fn mid_stream_disconnect_is_a_requeued_wait_failure_then_recovers() {
    let agent = Arc::new(ScriptedAgent::new(vec![Script::WaitError]));
    let live = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    let mut launcher = accept_all_launcher(vec![live]);
    let report = run_orchestrator(&fast_orch(1, 1, 3), &mut launcher);
    assert!(report.success, "{}", report.summary());
    assert_eq!(report.attempts.len(), 2, "{}", report.summary());
    assert!(
        matches!(
            &report.attempts[0].outcome,
            AttemptOutcome::WaitFailed { .. }
        ),
        "a daemon hangup mid-attempt maps to wait-failed, got {}",
        report.attempts[0].outcome
    );
    assert!(report.attempts[1].outcome.is_success());
    assert_eq!(agent.launch_count(), 2);
}

#[test]
fn fingerprint_skew_is_rejected_before_any_work_starts() {
    let mut agent = ScriptedAgent::new(vec![]);
    // The daemon's "correct" fingerprint — anything differing from the
    // launcher's 0x5eed.
    agent.expected_fingerprint = Some(0xd1ff);
    let agent = Arc::new(agent);
    let live = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    // The launcher advertises a different fingerprint than the daemon
    // resolves: admission must refuse, nothing may spawn.
    let mut launcher = accept_all_launcher(vec![live]);
    let report = run_orchestrator(&fast_orch(1, 1, 1), &mut launcher);
    assert!(!report.success);
    let why = match &report.attempts[0].outcome {
        AttemptOutcome::SpawnFailed { why } => why.clone(),
        other => panic!("rejection maps to spawn-failed, got {other}"),
    };
    assert!(why.contains("rejected"), "{why}");
    assert!(why.contains("fingerprint mismatch"), "{why}");
    assert_eq!(agent.launch_count(), 0, "no worker may start on skew");
}

#[test]
fn supervisor_fault_kill_hangs_up_and_the_daemon_kills_its_child() {
    let agent = Arc::new(ScriptedAgent::new(vec![Script::StallForever]));
    let live = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    let mut launcher = accept_all_launcher(vec![live]);
    let mut config = fast_orch(1, 1, 2);
    config.faults = Fault::parse_list("kill:0").expect("fault spec");
    let report = run_orchestrator(&config, &mut launcher);
    assert!(report.success, "{}", report.summary());
    assert!(
        report
            .attempts
            .iter()
            .any(|a| a.outcome == AttemptOutcome::FaultKilled),
        "{}",
        report.summary()
    );
    // The supervisor only shut its socket; the *daemon* must translate
    // that hangup into killing the worker. Its connection thread races
    // this assertion, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while agent.kills.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        agent.kills.load(Ordering::SeqCst),
        1,
        "the orphaned worker must be killed exactly once"
    );
    assert_eq!(agent.launch_count(), 2, "the shard retried after the kill");
}

#[test]
fn heartbeats_carry_durable_progress_into_resume_accounting() {
    let mut agent = ScriptedAgent::new(vec![Script::StallThenWaitError(120)]);
    // First durable_probes call backs the accept frame (0); later calls
    // back heartbeats (7). Only the heartbeat path can deliver the 7.
    agent.heartbeat_durable = 7;
    let agent = Arc::new(agent);
    let live = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    let mut launcher = accept_all_launcher(vec![live]);
    let report = run_orchestrator(&fast_orch(1, 1, 3), &mut launcher);
    assert!(report.success, "{}", report.summary());
    let retry = report
        .attempts
        .iter()
        .find(|a| a.attempt == 1)
        .expect("the stalled first attempt forces a retry");
    assert_eq!(
        retry.resumed_probes,
        Some(7),
        "heartbeat-observed durable progress must reach the report"
    );
    let launches = agent.launches.lock().expect("launches");
    assert_eq!(launches.len(), 2);
    assert_eq!(
        launches[1].resume_offset, 7,
        "the retry's launch frame must carry the observed durable prefix"
    );
}

// ---------------------------------------------------------------------
// End-to-end: real shard collection through two daemons
// ---------------------------------------------------------------------

fn tiny_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 20,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![benchmark("458.sjeng").expect("suite")];
    config.max_probes = Some(4);
    config.threads = 2;
    config
}

fn full_collection() -> &'static Collection {
    static FULL: OnceLock<Collection> = OnceLock::new();
    FULL.get_or_init(|| collect(&tiny_config()))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfbug-remote-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Agent running the real shard-collection path synchronously inside
/// `launch` — the in-process stand-in for `pborch worker-daemon`'s
/// re-invocation of the worker binary.
struct CollectAgent {
    plan: CollectPlan,
    config: CollectionConfig,
}

impl ShardAgent for CollectAgent {
    fn launch(&self, req: &LaunchRequest) -> io::Result<Box<dyn WorkerHandle + Send>> {
        let path = self.plan.shard_path(req.shard);
        collect_shard_or_load(&path, &self.config, req.shard)
            .map_err(|e| io::Error::other(format!("shard collection: {e}")))?;
        Ok(Box::new(ScriptedHandle {
            script: Script::Succeed,
            spawned: Instant::now(),
            kills: Arc::new(AtomicUsize::new(0)),
        }))
    }

    fn shard_checksum(&self, req: &LaunchRequest) -> Option<u64> {
        let bytes = std::fs::read(self.plan.shard_path(req.shard)).ok()?;
        Some(persist::fnv1a(&bytes))
    }
}

#[test]
fn a_two_daemon_pass_assembles_the_bit_identical_corpus() {
    let dir = scratch("e2e");
    let config = tiny_config();
    let plan = CollectPlan {
        dir: dir.clone(),
        prefix: "remote-e2e".into(),
        kind: ExperimentKind::Core,
        fingerprint: config_fingerprint(&config),
    };
    let agent = Arc::new(CollectAgent {
        plan: plan.clone(),
        config,
    });
    let a = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    let b = spawn_daemon(Arc::clone(&agent) as Arc<dyn ShardAgent>);
    let mut launcher = RemoteLauncher::for_plan(vec![a, b], &plan);
    launcher.set_timeouts(Duration::from_secs(2), Duration::from_secs(30));
    let report = run_orchestrator(&fast_orch(2, 3, 2), &mut launcher);
    assert!(report.success, "{}", report.summary());
    // Success implies every shard also passed `for_plan`'s verify — the
    // local decode *and* the cross-check against the daemon-reported
    // FNV-1a checksum.
    let (mut merged, _status) = load_or_assemble(&plan.full_path(), plan.kind, plan.fingerprint)
        .expect("assembly")
        .expect("complete shard set");
    let mut full = full_collection().clone();
    merged.zero_timings();
    full.zero_timings();
    assert!(
        encode_collection(&merged, plan.fingerprint) == encode_collection(&full, plan.fingerprint),
        "a distributed pass must be bit-identical to the single-process one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! The trace-cache equivalence harness: a warm collection pass replays
//! every trace from the `.pbtr` store — zero regenerations — and yields
//! a corpus byte-identical (after timing zeroing) to the cold pass, on
//! both simulator sides.
//!
//! One test (not several) on purpose: the assertions sample the
//! process-global `exec::traces_regenerated()` counter, and a sibling
//! test collecting (or exercising a regeneration fallback) concurrently
//! in the same binary would move it inside the assertion window. The
//! non-counter trace-cache properties live in `trace_props.rs`.

use perfbug_core::bugs::BugCatalog;
use perfbug_core::exec;
use perfbug_core::experiment::{collect, CollectionConfig, ProbeScale};
use perfbug_core::memory::{collect_memory, MemCollectionConfig, TargetMetric};
use perfbug_core::persist::{config_fingerprint, mem_config_fingerprint, save_collection};
use perfbug_core::stage1::EngineSpec;
use perfbug_core::tracecache::TRACE_DIR_ENV;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode, WorkloadScale};

fn gbt10() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 10,
        ..GbtParams::default()
    })
}

fn tiny_core_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(vec![gbt10()], catalog);
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![benchmark("462.libquantum").expect("suite")];
    config.max_probes = Some(3);
    config.threads = 2;
    config
}

fn tiny_mem_config() -> MemCollectionConfig {
    let mut config = MemCollectionConfig::new(vec![gbt10()], TargetMetric::Amat);
    config.workload = WorkloadScale::tiny();
    config.max_probes = Some(3);
    config.threads = 2;
    config
}

#[test]
fn warm_passes_regenerate_nothing_and_replay_byte_identical_corpora() {
    let dir = std::env::temp_dir().join(format!("trace-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::env::set_var(TRACE_DIR_ENV, dir.join("traces"));

    // Memory side: cold builds the store, warm replays it.
    let mem_config = tiny_mem_config();
    let before = exec::traces_regenerated();
    let mut cold = collect_memory(&mem_config);
    assert!(
        exec::traces_regenerated() > before,
        "the cold pass must generate traces"
    );
    let before = exec::traces_regenerated();
    let mut warm = collect_memory(&mem_config);
    assert_eq!(
        exec::traces_regenerated() - before,
        0,
        "a warm memory pass must regenerate no traces"
    );
    cold.zero_timings();
    warm.zero_timings();
    assert_eq!(warm, cold, "warm memory corpus diverged from cold");

    // Byte identity through the persistence codec, not just `Eq`.
    let fp = mem_config_fingerprint(&mem_config);
    let (a, b) = (dir.join("cold.pbcol"), dir.join("warm.pbcol"));
    save_collection(&a, &cold, fp).expect("save cold");
    save_collection(&b, &warm, fp).expect("save warm");
    assert_eq!(
        std::fs::read(&a).expect("read cold"),
        std::fs::read(&b).expect("read warm"),
        "warm memory corpus is not byte-identical"
    );

    // Core (uarch) side: same contract through `experiment::collect`.
    let core_config = tiny_core_config();
    let before = exec::traces_regenerated();
    let mut cold = collect(&core_config);
    assert!(
        exec::traces_regenerated() > before,
        "the cold core pass must generate traces"
    );
    let before = exec::traces_regenerated();
    let mut warm = collect(&core_config);
    assert_eq!(
        exec::traces_regenerated() - before,
        0,
        "a warm core pass must regenerate no traces"
    );
    cold.zero_timings();
    warm.zero_timings();
    assert_eq!(warm, cold, "warm core corpus diverged from cold");
    let fp = config_fingerprint(&core_config);
    let (a, b) = (dir.join("cold-core.pbcol"), dir.join("warm-core.pbcol"));
    save_collection(&a, &cold, fp).expect("save cold");
    save_collection(&b, &warm, fp).expect("save warm");
    assert_eq!(
        std::fs::read(&a).expect("read cold"),
        std::fs::read(&b).expect("read warm"),
        "warm core corpus is not byte-identical"
    );

    std::env::remove_var(TRACE_DIR_ENV);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Requeue semantics at the collection level: **any** schedule of worker
//! losses still assembles a corpus bit-identical to the single-process
//! pass, a worker dying mid-shard leaves no partial `.pbcol` visible to
//! assembly (writes are temp-file + atomic rename), and retries are
//! bounded.
//!
//! Workers here run the real shard-collection path in-process (the fake
//! launcher calls `collect_shard_or_load`); "killed" attempts write only
//! a junk in-flight temp file — exactly what a worker killed mid-`save`
//! leaves behind — and report a signal death to the supervisor.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::{collect, Collection, CollectionConfig, ProbeScale};
use perfbug_core::orchestrate::{
    run_orchestrator, verify_shard_file, CollectPlan, ExitKind, Launcher, OrchestratorConfig,
    WorkerHandle,
};
use perfbug_core::persist::{
    self, collect_shard_or_load, config_fingerprint, encode_collection, is_temp_file_name,
    load_or_assemble, CacheStatus, ExperimentKind,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};
use proptest::prelude::*;

/// Per-shard attempt budget used throughout; kill schedules only touch
/// attempts `0..MAX_ATTEMPTS-1`, so every shard eventually lands.
const MAX_ATTEMPTS: u32 = 3;

fn tiny_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 20,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![benchmark("458.sjeng").expect("suite")];
    config.max_probes = Some(4);
    config.threads = 2;
    config
}

/// The single-process reference, collected once and shared by all cases.
fn full_collection() -> &'static Collection {
    static FULL: OnceLock<Collection> = OnceLock::new();
    FULL.get_or_init(|| collect(&tiny_config()))
}

/// Fresh scratch cache directory per case.
fn scratch() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "perfbug-orchprops-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A worker that already ran to completion inside `launch`.
struct DoneHandle {
    killed: bool,
}

impl WorkerHandle for DoneHandle {
    fn try_finish(&mut self) -> io::Result<Option<ExitKind>> {
        Ok(Some(if self.killed {
            // A killed worker dies by signal: no exit code.
            ExitKind::Failure { code: None }
        } else {
            ExitKind::Success
        }))
    }

    fn kill(&mut self) {}
}

/// Launcher running the real shard-collection path synchronously;
/// scheduled kills skip collection and leave only the junk temp file a
/// worker killed mid-save would.
struct CollectLauncher<'a> {
    plan: &'a CollectPlan,
    config: &'a CollectionConfig,
    kills: &'a HashSet<(usize, u32)>,
}

impl Launcher for CollectLauncher<'_> {
    type Handle = DoneHandle;

    fn launch(&mut self, shard: ShardSpec, attempt: u32, _worker: usize) -> io::Result<DoneHandle> {
        if self.kills.contains(&(shard.index, attempt)) {
            // Death mid-save: the atomic-write discipline means at worst
            // an in-flight temp file is left, never a partial `.pbcol`.
            let tmp = self.plan.shard_path(shard).with_extension(format!(
                "{}.{}-kill.tmp",
                persist::FILE_EXTENSION,
                attempt
            ));
            std::fs::write(&tmp, b"partial bytes from a killed worker")?;
            return Ok(DoneHandle { killed: true });
        }
        let path = self.plan.shard_path(shard);
        collect_shard_or_load(&path, self.config, shard)
            .map_err(|e| io::Error::other(format!("shard collection: {e}")))?;
        Ok(DoneHandle { killed: false })
    }

    fn verify(&mut self, shard: ShardSpec) -> Result<(), String> {
        verify_shard_file(self.plan, shard)
    }
}

/// Runs one orchestrated pass over `shards` shards with the given kill
/// schedule; returns the scratch dir and the report.
fn orchestrated_pass(
    shards: usize,
    kills: &HashSet<(usize, u32)>,
) -> (PathBuf, CollectPlan, perfbug_core::orchestrate::RunReport) {
    let dir = scratch();
    let config = tiny_config();
    let plan = CollectPlan {
        dir: dir.clone(),
        prefix: "orchprops".into(),
        kind: ExperimentKind::Core,
        fingerprint: config_fingerprint(&config),
    };
    let mut orch = OrchestratorConfig::new(2, shards);
    orch.max_attempts = MAX_ATTEMPTS;
    orch.poll_interval = Duration::from_millis(1);
    orch.retry_delay = Duration::from_millis(1);
    let mut launcher = CollectLauncher {
        plan: &plan,
        config: &config,
        kills,
    };
    let report = run_orchestrator(&orch, &mut launcher);
    (dir, plan, report)
}

/// Every `.pbcol` under `dir` must decode — a killed worker must never
/// leave a partial one visible.
fn assert_no_partial_pbcol(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let path = entry.expect("entry").path();
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext == persist::FILE_EXTENSION => {
                let bytes = std::fs::read(&path).expect("read pbcol");
                persist::decode_collection_with(&bytes, None).unwrap_or_else(|e| {
                    panic!("partial/corrupt {} visible to readers: {e}", path.display())
                });
            }
            _ => {}
        }
    }
}

/// Derives a kill schedule from a seed: each shard's first `k` attempts
/// are killed, `k` drawn per shard from the seed's bits and capped at
/// `MAX_ATTEMPTS - 1` (the final attempt is never killed, so the pass
/// always converges). Kills form a prefix because a later attempt only
/// exists once every earlier one failed.
fn kill_schedule(shards: usize, seed: u64) -> HashSet<(usize, u32)> {
    let mut kills = HashSet::new();
    for shard in 0..shards {
        let k = (seed >> ((2 * shard) % 63) & 0b11) as u32 % MAX_ATTEMPTS;
        for attempt in 0..k {
            kills.insert((shard, attempt));
        }
    }
    kills
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_kill_schedule_assembles_bit_identically(
        shards_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let shards = [2usize, 3, 5][shards_idx];
        let kills = kill_schedule(shards, seed);
        let (dir, plan, report) = orchestrated_pass(shards, &kills);
        prop_assert!(report.success, "kills {kills:?}: {}", report.summary());
        prop_assert_eq!(
            report.attempts.len(),
            shards + kills.len(),
            "every kill costs exactly one extra attempt"
        );

        // No partial `.pbcol` anywhere, and the junk temp files the kills
        // left behind are invisible to assembly.
        assert_no_partial_pbcol(&dir);
        let (mut merged, status) = load_or_assemble(&plan.full_path(), plan.kind, plan.fingerprint)
            .expect("assembly")
            .expect("complete shard set");
        prop_assert_eq!(status, CacheStatus::Assembled);

        let mut full = full_collection().clone();
        merged.zero_timings();
        full.zero_timings();
        prop_assert!(
            encode_collection(&merged, plan.fingerprint)
                == encode_collection(&full, plan.fingerprint),
            "kill schedule {kills:?} over {shards} shards diverged from the full pass"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_worker_leaves_only_an_ignored_temp_file() {
    let kills: HashSet<(usize, u32)> = [(1usize, 0u32)].into_iter().collect();
    let (dir, plan, report) = orchestrated_pass(3, &kills);
    assert!(report.success, "{}", report.summary());

    // The junk temp file is still on disk (prune's job, not assembly's) …
    let temps: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok()?.file_name().to_str().map(String::from))
        .filter(|n| is_temp_file_name(n))
        .collect();
    assert_eq!(temps.len(), 1, "exactly the kill's temp file: {temps:?}");

    // … and assembly both ignored it and produced the identical corpus.
    assert_no_partial_pbcol(&dir);
    let (mut merged, _) = load_or_assemble(&plan.full_path(), plan.kind, plan.fingerprint)
        .expect("assembly")
        .expect("complete shard set");
    let mut full = full_collection().clone();
    merged.zero_timings();
    full.zero_timings();
    assert!(
        encode_collection(&merged, plan.fingerprint) == encode_collection(&full, plan.fingerprint)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_shard_dying_every_attempt_is_excluded_and_nothing_assembles() {
    let kills: HashSet<(usize, u32)> = (0..MAX_ATTEMPTS).map(|a| (0usize, a)).collect();
    let (dir, plan, report) = orchestrated_pass(2, &kills);
    assert!(!report.success);
    assert_eq!(report.excluded, vec![0]);
    assert_eq!(
        report.attempts_for(0).len(),
        MAX_ATTEMPTS as usize,
        "retries are bounded by the budget"
    );
    // Shard 1 still completed; the corpus is (correctly) not assemblable.
    assert!(report
        .attempts_for(1)
        .iter()
        .any(|a| a.outcome.is_success()));
    let assembled = load_or_assemble(&plan.full_path(), plan.kind, plan.fingerprint)
        .expect("no persistence error");
    assert!(assembled.is_none(), "an incomplete pass must not assemble");
    let _ = std::fs::remove_dir_all(&dir);
}

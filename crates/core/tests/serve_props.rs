//! The detection-service core (`perfbug_core::serve`): flat-JSON
//! protocol robustness (round-trip, rejection of everything the protocol
//! excludes, no panics on arbitrary lines), request round-trips, and a
//! loopback end-to-end pass proving the property CI's service smoke
//! asserts — the first submission of a config collects, the second is
//! served from the multi-tenant store with **zero simulations**, and
//! tenants are isolated by fingerprint.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::CollectionConfig;
use perfbug_core::experiment::ProbeScale;
use perfbug_core::orchestrate::CollectPlan;
use perfbug_core::persist::{collect_or_load, config_fingerprint, ExperimentKind};
use perfbug_core::serve::{
    self, is_tenant_dir_name, parse_flat_object, ExperimentBackend, JsonValue, Request, RunOutcome,
    ServeOptions, ServeStore, SubmitRequest,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Flat-JSON parser properties
// ---------------------------------------------------------------------

/// Emits a flat object from a sorted map, mirroring the server's own
/// emission style (the parser must accept what the service produces).
fn emit_flat(fields: &BTreeMap<String, JsonValue>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{k}\": "));
        match v {
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Num(n) => out.push_str(&n.to_string()),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Expands a numeric seed into one field value (strings exercise the
/// escape paths).
fn value_from(sel: u64, n: i64) -> JsonValue {
    match sel % 4 {
        0 => JsonValue::Num(n),
        1 => JsonValue::Bool(n % 2 == 0),
        2 => JsonValue::Str(format!("plain-{:x}", n.unsigned_abs() % 0xffff)),
        _ => JsonValue::Str(format!("esc \"q\" \\ nl\n tail-{}", n.unsigned_abs() % 97)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_objects_round_trip(
        seeds in prop::collection::vec((0u64..4, any::<u64>()), 0..8),
    ) {
        let mut fields = BTreeMap::new();
        for (i, &(sel, raw)) in seeds.iter().enumerate() {
            fields.insert(format!("key_{i}"), value_from(sel, raw as i64));
        }
        let line = emit_flat(&fields);
        let parsed = parse_flat_object(&line);
        prop_assert_eq!(parsed, Ok(fields), "line was {}", line);
    }

    #[test]
    fn arbitrary_lines_never_panic_the_parser(
        bytes in prop::collection::vec(0u64..128, 0..96),
    ) {
        let line: String = bytes
            .iter()
            .filter_map(|&b| char::from_u32(b as u32))
            .collect();
        // Any result is fine — the property is "no panic".
        let _ = parse_flat_object(&line);
    }

    #[test]
    fn submit_requests_round_trip_through_their_protocol_line(
        workers in 0usize..9,
        shards in 0usize..17,
        max_attempts in 1u64..6,
        timeout_sel in 0u64..2,
        hosts_sel in 0u64..2,
        seed in any::<u64>(),
    ) {
        let request = Request::Submit(SubmitRequest {
            spec: format!("spec-{:x}", seed % 0x1000),
            workers,
            shards,
            max_attempts: max_attempts as u32,
            timeout_secs: (timeout_sel == 1).then_some(seed % 900),
            hosts: (hosts_sel == 1).then(|| format!("127.0.0.1:{}", 1024 + seed % 60000)),
        });
        prop_assert_eq!(Request::parse(&request.to_json()), Ok(request));
    }
}

#[test]
fn status_and_fetch_round_trip() {
    for request in [
        Request::Status,
        Request::Fetch {
            spec: "replay-demo".into(),
        },
    ] {
        assert_eq!(Request::parse(&request.to_json()), Ok(request));
    }
}

#[test]
fn the_parser_rejects_what_the_protocol_excludes() {
    for (line, what) in [
        ("", "empty line"),
        ("[1, 2]", "arrays"),
        ("{\"a\": {\"b\": 1}}", "nested objects"),
        ("{\"a\": 1.5}", "floats"),
        ("{\"a\": null}", "null"),
        ("{\"a\": 1, \"a\": 2}", "duplicate keys"),
        ("{\"a\": 1} trailing", "trailing content"),
        ("{\"a\": \"unterminated}", "unterminated strings"),
    ] {
        assert!(
            parse_flat_object(line).is_err(),
            "{what} must be rejected: {line:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Loopback end-to-end: cold collect, then cache hit with zero sims
// ---------------------------------------------------------------------

fn tiny_config(max_probes: usize) -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 20,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![benchmark("458.sjeng").expect("suite")];
    config.max_probes = Some(max_probes);
    config.threads = 2;
    config
}

/// Backend over two in-process "specs": `alpha` (collectable) and
/// `beta` (a distinct fingerprint that is never collected, proving
/// tenant isolation).
struct TinyBackend {
    alpha: CollectionConfig,
    beta: CollectionConfig,
}

impl ExperimentBackend for TinyBackend {
    fn identity(&self, spec: &str) -> Result<(ExperimentKind, u64), String> {
        match spec {
            "alpha" => Ok((ExperimentKind::Core, config_fingerprint(&self.alpha))),
            "beta" => Ok((ExperimentKind::Core, config_fingerprint(&self.beta))),
            other => Err(format!("unknown spec {other:?}")),
        }
    }

    fn run(&self, submit: &SubmitRequest, plan: &CollectPlan) -> Result<RunOutcome, String> {
        let config = match submit.spec.as_str() {
            "alpha" => &self.alpha,
            "beta" => &self.beta,
            other => return Err(format!("unknown spec {other:?}")),
        };
        let (collection, status) =
            collect_or_load(&plan.full_path(), config).map_err(|e| e.to_string())?;
        Ok(RunOutcome {
            status,
            probes: collection.probes.len(),
        })
    }
}

struct Service {
    addr: String,
    store_root: PathBuf,
}

/// One shared service instance: the loopback tests below are ordered
/// statements about a single store's lifecycle, so they share it.
fn service() -> &'static Service {
    static SERVICE: OnceLock<Service> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let store_root = std::env::temp_dir().join(format!("perfbug-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_root);
        std::fs::create_dir_all(&store_root).expect("store root");
        let backend = TinyBackend {
            alpha: tiny_config(4),
            beta: tiny_config(3),
        };
        assert_ne!(
            config_fingerprint(&backend.alpha),
            config_fingerprint(&backend.beta),
            "the two specs must land in distinct tenants"
        );
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let store = ServeStore::new(store_root.clone());
        std::thread::spawn(move || {
            let _ = serve::serve(listener, Arc::new(backend), store, ServeOptions::default());
        });
        Service { addr, store_root }
    })
}

fn submit_alpha() -> Request {
    Request::Submit(SubmitRequest {
        spec: "alpha".into(),
        workers: 0,
        shards: 0,
        max_attempts: 3,
        timeout_secs: None,
        hosts: None,
    })
}

#[test]
fn second_submission_is_a_cache_hit_with_zero_simulations() {
    let service = service();
    let mut first_events = Vec::new();
    let first = serve::request(&service.addr, &submit_alpha(), |line| {
        first_events.push(line.to_string())
    })
    .expect("first submission");
    // The first submission may race another test's — either it collected
    // or it was served the freshly collected corpus. Both end complete.
    assert!(
        first.status == "collected" || first.status == "cache-hit",
        "{first:?}"
    );
    assert!(first.probes.unwrap_or(0) > 0, "{first:?}");
    assert!(
        first_events.iter().any(|l| l.contains("\"accepted\"")),
        "{first_events:?}"
    );

    // The repeat submission is the service's core promise: served from
    // the store, zero simulations, same probe count.
    let mut events = Vec::new();
    let second = serve::request(&service.addr, &submit_alpha(), |line| {
        events.push(line.to_string())
    })
    .expect("second submission");
    assert_eq!(second.status, "cache-hit", "{events:?}");
    assert_eq!(second.simulations_run, Some(0), "{events:?}");
    assert_eq!(second.probes, first.probes);
    assert!(
        events.iter().any(|l| l.contains("\"cache-hit\"")),
        "{events:?}"
    );

    // The store now holds exactly alpha's tenant directory.
    let tenants: Vec<String> = std::fs::read_dir(&service.store_root)
        .expect("store root")
        .filter_map(|e| e.ok()?.file_name().to_str().map(String::from))
        .filter(|n| is_tenant_dir_name(n))
        .collect();
    assert_eq!(tenants.len(), 1, "{tenants:?}");
}

#[test]
fn fetch_never_collects_and_distinct_fingerprints_are_isolated_tenants() {
    let service = service();
    // Fetching beta must not touch alpha's corpus: beta's tenant is
    // empty, so the answer is "absent" — even after alpha collected.
    let outcome = serve::request(
        &service.addr,
        &Request::Fetch {
            spec: "beta".into(),
        },
        |_| {},
    )
    .expect("fetch");
    assert_eq!(outcome.status, "absent");
    assert_eq!(outcome.simulations_run, Some(0));
}

#[test]
fn unknown_specs_and_malformed_lines_surface_as_error_events() {
    let service = service();
    let err = serve::request(
        &service.addr,
        &Request::Fetch {
            spec: "no-such-spec".into(),
        },
        |_| {},
    )
    .expect_err("unknown spec");
    assert!(err.contains("server error"), "{err}");

    // A raw malformed line (not emitted by any Request) gets an error
    // event rather than a hang or a dropped connection.
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(&service.addr).expect("connect");
    stream.write_all(b"this is not json\n").expect("send");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("receive");
    assert!(line.contains("\"error\""), "{line:?}");
}

#[test]
fn status_lists_tenants_after_a_collection() {
    let service = service();
    // Ensure alpha exists regardless of test ordering.
    serve::request(&service.addr, &submit_alpha(), |_| {}).expect("submit");
    let mut events = Vec::new();
    let outcome = serve::request(&service.addr, &Request::Status, |line| {
        events.push(line.to_string())
    })
    .expect("status");
    assert_eq!(outcome.status, "ok");
    assert!(
        events.iter().any(|l| l.contains("\"tenant\"")),
        "{events:?}"
    );
}

//! Property and integration tests for collection persistence: round-trip
//! identity, corrupt/truncated-file rejection, version and fingerprint
//! validation, and the `collect_or_load` replay front door on a real
//! collected corpus.

use std::time::Duration;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{
    collect, CapturedSeries, Collection, CollectionConfig, EngineResult, ProbeMeta, ProbeScale,
    RunKey,
};
use perfbug_core::persist::{
    cache_file_name, collect_or_load, config_fingerprint, decode_collection, encode_collection,
    load_collection, parse_cache_file_name, save_collection, shard_file_name, CacheStatus,
    ExperimentKind, PersistError, FORMAT_VERSION, LEGACY_FORMAT_VERSION,
};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::GbtParams;
use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::{benchmark, Opcode};
use proptest::prelude::*;

/// Builds a structurally valid collection from fuzzed dimensions and
/// payload floats. `floats` seeds every numeric field (cycled), so the
/// round trip exercises arbitrary bit patterns including subnormals.
fn synth_collection(
    n_probes: usize,
    n_engines: usize,
    n_captures: usize,
    floats: &[f64],
    with_bug_keys: bool,
) -> Collection {
    let mut next = {
        let mut i = 0;
        move || {
            let v = floats[i % floats.len()];
            i += 1;
            v
        }
    };
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::FpMul },
        BugSpec::WritesToRegDelay {
            n: 32,
            t: 6,
            periodic: true,
        },
        BugSpec::OpcodeUsesRegDelay {
            x: Opcode::Load,
            r: 3,
            t: 8,
        },
        // Post-paper extension types (ids 15/16): fuzzed corpora put
        // these in cache files, so every persistence property must hold
        // for them too.
        BugSpec::TlbPageWalkDelay { entries: 64, t: 40 },
        BugSpec::IssueReplayEveryN { n: 8, t: 12 },
    ]);
    let mut keys = vec![RunKey {
        arch: "Skylake".into(),
        set: ArchSet::IV,
        bug: None,
    }];
    if with_bug_keys {
        for b in 0..catalog.len() {
            keys.push(RunKey {
                arch: "Skylake".into(),
                set: ArchSet::II,
                bug: Some(b),
            });
        }
    }
    let probes: Vec<ProbeMeta> = (0..n_probes)
        .map(|p| ProbeMeta {
            id: format!("bench#{p}"),
            benchmark: "bench".into(),
            weight: next(),
        })
        .collect();
    let engines: Vec<EngineResult> = (0..n_engines)
        .map(|e| EngineResult {
            name: format!("GBT-{e}"),
            deltas: (0..n_probes)
                .map(|_| keys.iter().map(|_| next()).collect())
                .collect(),
            train_time: Duration::new(e as u64, 123_456_789),
            infer_time: Duration::from_micros(e as u64 * 7 + 1),
        })
        .collect();
    Collection {
        overall_ipc: (0..n_probes)
            .map(|_| keys.iter().map(|_| next()).collect())
            .collect(),
        agg_features: (0..n_probes)
            .map(|_| keys.iter().map(|_| vec![next(), next(), next()]).collect())
            .collect(),
        captures: (0..n_captures)
            .map(|c| CapturedSeries {
                // Non-decreasing valid probe ids: the v3 codec stores
                // captures inside their probe's chunk, so a capture must
                // name a real probe and the flat list is probe-ordered.
                probe_id: format!("bench#{}", c * n_probes / n_captures.max(1)),
                arch: "IvyBridge".into(),
                bug: (c % 2 == 0).then_some(c % 3),
                engine: "GBT-0".into(),
                simulated: vec![next(), next()],
                inferred: vec![next(), next()],
            })
            .collect(),
        keys,
        probes,
        engines,
        catalog,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_is_identity(
        n_probes in 1usize..5,
        n_engines in 1usize..4,
        n_captures in 0usize..3,
        floats in prop::collection::vec(-1e9..1e9f64, 8..24),
        with_bug_keys in any::<bool>(),
        fingerprint in any::<u64>(),
    ) {
        let col = synth_collection(n_probes, n_engines, n_captures, &floats, with_bug_keys);
        let bytes = encode_collection(&col, fingerprint);
        let back = decode_collection(&bytes, fingerprint)
            .expect("round trip must decode");
        prop_assert!(back == col, "decoded collection differs");
    }

    #[test]
    fn corrupt_bytes_are_rejected(
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
        fingerprint in any::<u64>(),
    ) {
        let col = synth_collection(2, 1, 1, &[0.5, -3.25, 1e-300], true);
        let mut bytes = encode_collection(&col, fingerprint);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(
            decode_collection(&bytes, fingerprint).is_err(),
            "flipping byte {pos} with {flip:#x} went undetected"
        );
    }

    #[test]
    fn truncated_bytes_are_rejected(cut_seed in any::<u64>(), fingerprint in any::<u64>()) {
        let col = synth_collection(2, 2, 0, &[42.0, 0.125], false);
        let bytes = encode_collection(&col, fingerprint);
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(decode_collection(&bytes[..cut], fingerprint).is_err());
    }

    #[test]
    fn wrong_fingerprint_is_rejected(fp in any::<u64>(), other in any::<u64>()) {
        prop_assume!(fp != other);
        let col = synth_collection(1, 1, 0, &[1.5], false);
        let bytes = encode_collection(&col, fp);
        match decode_collection(&bytes, other) {
            Err(PersistError::Fingerprint { found, expected }) => {
                prop_assert_eq!(found, fp);
                prop_assert_eq!(expected, other);
            }
            r => prop_assert!(false, "expected fingerprint rejection, got {:?}", r.is_ok()),
        }
    }

    #[test]
    fn wrong_version_is_rejected(version in any::<u32>()) {
        // v2 is the read-compat version, not a rejected one (the bytes
        // would then fail as corrupt, not as a version mismatch).
        prop_assume!(version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION);
        let col = synth_collection(1, 1, 0, &[2.5], false);
        let mut bytes = encode_collection(&col, 1);
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        // Reject even with a re-sealed checksum: the version gate is
        // independent of integrity.
        let body = bytes.len() - 8;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes[..body] {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        bytes[body..].copy_from_slice(&hash.to_le_bytes());
        match decode_collection(&bytes, 1) {
            Err(PersistError::Version { found, expected }) => {
                prop_assert_eq!(found, version);
                prop_assert_eq!(expected, FORMAT_VERSION);
            }
            r => prop_assert!(false, "expected version rejection, got {:?}", r.is_ok()),
        }
    }

    #[test]
    fn file_names_round_trip_through_parse(
        fingerprint in any::<u64>(),
        index in 0u32..512,
        extra in 1u32..512,
        mem in any::<bool>(),
    ) {
        let count = index + extra;
        let kind = if mem { ExperimentKind::Memory } else { ExperimentKind::Core };
        // Prefixes with dashes (even a trailing `-s`) must survive.
        for prefix in ["fig08", "speed-test", "tbl-s"] {
            let full = cache_file_name(prefix, kind, fingerprint);
            let parsed = parse_cache_file_name(&full).expect("full name parses");
            prop_assert_eq!(&parsed.prefix, prefix);
            prop_assert_eq!(parsed.kind, kind);
            prop_assert_eq!(parsed.fingerprint, fingerprint);
            prop_assert_eq!(parsed.shard, None);

            let shard = shard_file_name(prefix, kind, fingerprint, index as usize, count as usize);
            let parsed = parse_cache_file_name(&shard).expect("shard name parses");
            prop_assert_eq!(&parsed.prefix, prefix);
            prop_assert_eq!(parsed.fingerprint, fingerprint);
            prop_assert_eq!(parsed.shard, Some((index, count)));
        }
    }
}

/// A minimal structurally-valid collection around `catalog`: one probe,
/// one engine, one bugged key per variant. No simulation involved — the
/// point is pushing the *catalogue* through the codec.
fn collection_with_catalog(catalog: BugCatalog) -> Collection {
    let mut keys = vec![RunKey {
        arch: "Skylake".into(),
        set: ArchSet::IV,
        bug: None,
    }];
    for b in 0..catalog.len() {
        keys.push(RunKey {
            arch: "Skylake".into(),
            set: ArchSet::II,
            bug: Some(b),
        });
    }
    Collection {
        probes: vec![ProbeMeta {
            id: "bench#0".into(),
            benchmark: "bench".into(),
            weight: 1.0,
        }],
        engines: vec![EngineResult {
            name: "GBT-0".into(),
            deltas: vec![keys.iter().enumerate().map(|(i, _)| i as f64).collect()],
            train_time: Duration::from_millis(1),
            infer_time: Duration::from_micros(1),
        }],
        overall_ipc: vec![keys.iter().map(|_| 1.5).collect()],
        agg_features: vec![keys.iter().map(|_| vec![0.25, -0.5]).collect()],
        captures: Vec::new(),
        keys,
        catalog,
    }
}

/// Every extended-catalogue variant — the post-paper core types and the
/// memory types via their same-id core placeholder — survives the PBCL
/// codec and the streaming verifier (`pbcol verify --stream`'s engine).
#[test]
fn extended_catalogs_round_trip_and_verify() {
    use perfbug_core::bugs::MemBugCatalog;
    use perfbug_core::memory::mem_catalog_as_core;
    use perfbug_core::persist::{save_collection, verify_stream};

    let dir = std::env::temp_dir().join(format!("perfbug-extcat-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let catalogs = [
        BugCatalog::core_extended(),
        mem_catalog_as_core(&MemBugCatalog::extended()),
    ];
    for (i, catalog) in catalogs.into_iter().enumerate() {
        let col = collection_with_catalog(catalog);
        let fp = 0xE0 + i as u64;

        let bytes = encode_collection(&col, fp);
        let back = decode_collection(&bytes, fp).expect("extended catalogue must decode");
        assert_eq!(back, col, "catalogue {i} diverged through the codec");

        let path = dir.join(format!("extcat-{i}.pbcol"));
        save_collection(&path, &col, fp).expect("save");
        let mut chunks = 0;
        let header = verify_stream(&path, Some(fp), |_| chunks += 1)
            .expect("extended catalogue must stream-verify");
        assert_eq!(header.fingerprint, fp);
        assert!(chunks > 0, "verifier must visit the probe chunks");
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
}

// --------------------------------------------------------------------------
// Integration: a real collected corpus through the file front door
// --------------------------------------------------------------------------

fn tiny_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 25,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![benchmark("462.libquantum").expect("suite")];
    config.max_probes = Some(3);
    config.threads = 2;
    config
}

// One test (not two) on purpose: the replay assertion samples the
// process-global `exec::simulations_run()` counter, and a sibling test
// collecting concurrently in the same binary would move it inside the
// assertion window.
#[test]
fn real_collection_round_trips_and_replays_without_simulating() {
    let config = tiny_config();
    let fp = config_fingerprint(&config);
    let dir = std::env::temp_dir().join(format!("perfbug-persist-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // save -> load is the identity on a real collected corpus.
    let col = collect(&config);
    let path = dir.join(cache_file_name("round-trip", ExperimentKind::Core, fp));
    save_collection(&path, &col, fp).expect("save");
    let loaded = load_collection(&path, fp).expect("load");
    assert_eq!(loaded, col, "collection must replay byte-identically");

    // A changed configuration fingerprint must reject the cache.
    let mut stale = config.clone();
    stale.arch_features = !config.arch_features;
    let stale_fp = config_fingerprint(&stale);
    assert_ne!(stale_fp, fp);
    assert!(matches!(
        load_collection(&path, stale_fp),
        Err(PersistError::Fingerprint { .. })
    ));

    // The collect_or_load front door: cold pass collects and saves, warm
    // pass replays without touching the simulator.
    let front = dir.join(cache_file_name("front-door", ExperimentKind::Core, fp));
    let _ = std::fs::remove_file(&front);
    let (cold, status) = collect_or_load(&front, &config).expect("cold pass");
    assert_eq!(status, CacheStatus::Collected);
    assert!(front.exists());

    let sims_before = perfbug_core::exec::simulations_run();
    let (warm, status) = collect_or_load(&front, &config).expect("warm pass");
    assert_eq!(status, CacheStatus::Replayed);
    assert_eq!(
        perfbug_core::exec::simulations_run(),
        sims_before,
        "replay must not simulate"
    );
    assert_eq!(warm, cold);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&front);
    let _ = std::fs::remove_dir(&dir);
}

//! Peak-allocation proof that the v3 streaming reader is O(chunk), not
//! O(corpus): decoding one probe through [`ProbeReader`] must allocate a
//! small fraction of what a full [`load_collection`] decode allocates.
//!
//! One test in its own binary on purpose: the `#[global_allocator]`
//! counting wrapper is process-global, and a sibling test allocating
//! concurrently would pollute the peak window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{Collection, EngineResult, ProbeMeta, RunKey};
use perfbug_core::persist::{load_collection, save_collection, ProbeReader};
use perfbug_uarch::{ArchSet, BugSpec};
use perfbug_workloads::Opcode;

/// [`System`] wrapper tracking live bytes and the high-water mark.
struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    const fn new() -> Self {
        CountingAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    fn reset_peak(&self) -> usize {
        let live = self.live.load(Ordering::Relaxed);
        self.peak.store(live, Ordering::Relaxed);
        live
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            self.live.fetch_sub(layout.size(), Ordering::Relaxed);
            let live = self.live.fetch_add(new_size, Ordering::Relaxed) + new_size;
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A corpus whose encoded size dwarfs any single probe chunk: 192 probes
/// with fat capture series, so O(chunk) and O(corpus) are far apart.
fn big_collection() -> Collection {
    let n_probes = 192;
    let catalog = BugCatalog::new(vec![BugSpec::SerializeOpcode { x: Opcode::FpMul }]);
    let keys = vec![
        RunKey {
            arch: "Skylake".into(),
            set: ArchSet::IV,
            bug: None,
        },
        RunKey {
            arch: "Skylake".into(),
            set: ArchSet::II,
            bug: Some(0),
        },
    ];
    let probes: Vec<ProbeMeta> = (0..n_probes)
        .map(|p| ProbeMeta {
            id: format!("bench#{p}"),
            benchmark: "bench".into(),
            weight: 1.0 / (p + 1) as f64,
        })
        .collect();
    Collection {
        overall_ipc: (0..n_probes).map(|p| vec![p as f64; keys.len()]).collect(),
        agg_features: (0..n_probes)
            .map(|p| vec![vec![p as f64; 8]; keys.len()])
            .collect(),
        captures: (0..n_probes)
            .map(|p| perfbug_core::experiment::CapturedSeries {
                probe_id: format!("bench#{p}"),
                arch: "Skylake".into(),
                bug: Some(0),
                engine: "GBT-0".into(),
                simulated: (0..256).map(|i| (p * i) as f64).collect(),
                inferred: (0..256).map(|i| (p + i) as f64).collect(),
            })
            .collect(),
        engines: vec![EngineResult {
            name: "GBT-0".into(),
            deltas: (0..n_probes).map(|p| vec![p as f64; keys.len()]).collect(),
            train_time: Duration::ZERO,
            infer_time: Duration::ZERO,
        }],
        keys,
        probes,
        catalog,
    }
}

#[test]
fn one_probe_streaming_decode_allocates_o_chunk_not_o_corpus() {
    let dir = std::env::temp_dir().join(format!("perfbug-streamalloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("big.pbcol");
    let col = big_collection();
    save_collection(&path, &col, 0xa110c).expect("save");
    let file_size = std::fs::metadata(&path).expect("metadata").len() as usize;
    drop(col);

    // Full decode: the whole corpus is materialised, so the peak is at
    // least the file size (bytes buffer alone).
    ALLOC.reset_peak();
    let full = load_collection(&path, 0xa110c).expect("load");
    let full_peak = ALLOC.peak();
    drop(full);

    // Streaming one-probe decode: open reads header + footer + meta, and
    // read_probe touches exactly one chunk.
    ALLOC.reset_peak();
    let mut reader = ProbeReader::open(&path, Some(0xa110c)).expect("open");
    let rec = reader.read_probe(100).expect("read probe");
    let stream_peak = ALLOC.peak();
    assert_eq!(rec.meta.id, "bench#100");
    drop(reader);

    assert!(
        full_peak >= file_size,
        "full decode peak {full_peak} is below the file size {file_size} — \
         the counting allocator is not seeing the decode"
    );
    assert!(
        stream_peak < full_peak / 8,
        "streaming peak {stream_peak} is not well below the full-decode \
         peak {full_peak} (file is {file_size} bytes)"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

//! Property-based tests for the detection core: Eq. (1), stage-2 rules and
//! detection metrics.

use perfbug_core::detmetrics::{Decision, DetectionMetrics};
use perfbug_core::stage1::inference_error;
use perfbug_core::stage2::{Stage2Classifier, Stage2Params};
use proptest::prelude::*;

fn series(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..4.0f64, len)
}

proptest! {
    #[test]
    fn eq1_nonnegative_and_zero_iff_equal(a in series(12)) {
        prop_assert!(inference_error(&a, &a).abs() < 1e-12);
        let shifted: Vec<f64> = a.iter().map(|v| v + 0.5).collect();
        let err = inference_error(&a, &shifted);
        prop_assert!(err > 0.0);
        // Shifting every step by c costs about c per trapezoid: (T-1)*c.
        let expect = (a.len() - 1) as f64 * 0.5;
        prop_assert!((err - expect).abs() < 1e-9);
    }

    #[test]
    fn eq1_symmetric_and_scales(a in series(10), b in series(10), k in 1.0..5.0f64) {
        let e1 = inference_error(&a, &b);
        let e2 = inference_error(&b, &a);
        prop_assert!((e1 - e2).abs() < 1e-9, "Eq.(1) must be symmetric");
        let a_scaled: Vec<f64> = a.iter().map(|v| v * k).collect();
        let b_scaled: Vec<f64> = b.iter().map(|v| v * k).collect();
        let e3 = inference_error(&a_scaled, &b_scaled);
        prop_assert!((e3 - k * e1).abs() < 1e-6, "Eq.(1) is positively homogeneous");
    }

    #[test]
    fn eq1_never_averages_out_spikes(base in series(20), spike in 5.0..50.0f64) {
        // The paper prefers Eq.(1) over MSE because one bad step must not
        // vanish: the error strictly grows with the spike size.
        let mut spiked = base.clone();
        spiked[10] += spike;
        let small = inference_error(&base, &base);
        let big = inference_error(&base, &spiked);
        prop_assert!(big >= spike - 1e-9, "spike of {spike} must contribute fully");
        prop_assert!(big > small);
    }

    #[test]
    fn stage2_score_monotone_in_errors(
        pos in prop::collection::vec(prop::collection::vec(1.0..3.0f64, 4), 3..8),
        neg in prop::collection::vec(prop::collection::vec(0.0..0.5f64, 4), 3..8),
        probe in 0usize..4,
        bump in 0.1..10.0f64,
    ) {
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        let base = vec![0.2; 4];
        let mut worse = base.clone();
        worse[probe] += bump;
        prop_assert!(
            clf.score(&worse) >= clf.score(&base) - 1e-12,
            "inflating any probe's error must not lower the bug score"
        );
    }

    #[test]
    fn stage2_classify_agrees_with_score(
        pos in prop::collection::vec(prop::collection::vec(1.0..3.0f64, 3), 3..6),
        neg in prop::collection::vec(prop::collection::vec(0.0..0.5f64, 3), 3..6),
        test in prop::collection::vec(0.0..6.0f64, 3),
    ) {
        let clf = Stage2Classifier::fit(Stage2Params::default(), &pos, &neg);
        prop_assert_eq!(clf.classify(&test), clf.score(&test) >= 1.0);
    }

    #[test]
    fn metrics_bounds(
        scores in prop::collection::vec(0.0..5.0f64, 4..24),
        labels in prop::collection::vec(any::<bool>(), 4..24),
    ) {
        let n = scores.len().min(labels.len());
        let decisions: Vec<Decision> = (0..n)
            .map(|i| Decision {
                score: scores[i],
                flagged: scores[i] >= 1.0,
                has_bug: labels[i],
                severity: None,
            })
            .collect();
        let m = DetectionMetrics::from_decisions(&decisions);
        for v in [m.tpr, m.fpr, m.precision, m.roc_auc] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(m.positives + m.negatives, n);
    }
}

//! Memory-hierarchy configurations and the twelve presets of §IV-D.
//!
//! The paper emulates Intel Broadwell, Haswell, Skylake, Sandybridge,
//! Ivybridge, Nehalem, AMD K10 and Ryzen 7, plus four artificial designs,
//! in ChampSim. The paper does not publish the set partitioning for the
//! memory experiment; we partition analogously to the core experiment
//! (documented in EXPERIMENTS.md): five designs train the stage-1 models,
//! two validate, two more label stage 2, and three (all real) are held out.

use crate::spp::SppConfig;

/// Re-export of the core experiment's set marker (same semantics).
pub use perfbug_uarch_set::ArchSet;

// A tiny shim module so we do not depend on perfbug-uarch just for an enum.
mod perfbug_uarch_set {
    /// Which experiment set a memory design belongs to (same roles as the
    /// core experiment's sets I–IV).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum ArchSet {
        /// Stage-1 training designs.
        I,
        /// Stage-1 validation / stage-2 training designs.
        II,
        /// Additional stage-2 training designs.
        III,
        /// Held-out test designs.
        IV,
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    /// Capacity in bytes.
    pub size: u64,
    /// Associativity.
    pub assoc: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl LevelConfig {
    /// Convenience constructor with KiB sizing.
    pub fn kib(size_kib: u64, assoc: u32, latency: u32) -> Self {
        LevelConfig {
            size: size_kib * 1024,
            assoc,
            latency,
        }
    }

    /// Convenience constructor with MiB sizing.
    pub fn mib(size_mib: u64, assoc: u32, latency: u32) -> Self {
        LevelConfig {
            size: size_mib * 1024 * 1024,
            assoc,
            latency,
        }
    }
}

/// One simulated cache-hierarchy design.
#[derive(Debug, Clone, PartialEq)]
pub struct MemArchConfig {
    /// Design name.
    pub name: String,
    /// Experiment-set membership.
    pub set: ArchSet,
    /// Whether this models a real commercial design.
    pub real: bool,
    /// L1 data cache.
    pub l1d: LevelConfig,
    /// L2 cache (SPP prefetches into this level).
    pub l2: LevelConfig,
    /// Last-level cache.
    pub llc: LevelConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Prefetcher configuration.
    pub spp: SppConfig,
    /// Retire width of the modelled core front (for the IPC estimate).
    pub width: u32,
}

impl MemArchConfig {
    /// Names of the design-parameter features for the stage-1 models.
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "arch.l1d_kib",
            "arch.l1d_assoc",
            "arch.l1d_latency",
            "arch.l2_kib",
            "arch.l2_assoc",
            "arch.l2_latency",
            "arch.llc_mib",
            "arch.llc_assoc",
            "arch.llc_latency",
            "arch.mem_latency",
            "arch.pf_degree",
        ]
    }

    /// Static design-parameter feature vector.
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.l1d.size as f64 / 1024.0,
            self.l1d.assoc as f64,
            self.l1d.latency as f64,
            self.l2.size as f64 / 1024.0,
            self.l2.assoc as f64,
            self.l2.latency as f64,
            self.llc.size as f64 / (1024.0 * 1024.0),
            self.llc.assoc as f64,
            self.llc.latency as f64,
            self.mem_latency as f64,
            self.spp.max_degree as f64,
        ]
    }
}

fn mem_arch(
    name: &str,
    set: ArchSet,
    real: bool,
    l1d: LevelConfig,
    l2: LevelConfig,
    llc: LevelConfig,
    mem_latency: u32,
) -> MemArchConfig {
    MemArchConfig {
        name: name.to_string(),
        set,
        real,
        l1d,
        l2,
        llc,
        mem_latency,
        spp: SppConfig::default(),
        width: 4,
    }
}

/// The twelve memory-hierarchy designs of the §IV-D evaluation.
pub fn all() -> Vec<MemArchConfig> {
    vec![
        mem_arch(
            "Nehalem",
            ArchSet::I,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(256, 8, 10),
            LevelConfig::mib(8, 16, 38),
            220,
        ),
        mem_arch(
            "Sandybridge",
            ArchSet::I,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(256, 8, 11),
            LevelConfig::mib(8, 16, 30),
            210,
        ),
        mem_arch(
            "Haswell",
            ArchSet::I,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(256, 8, 11),
            LevelConfig::mib(8, 16, 34),
            205,
        ),
        mem_arch(
            "Artificial M1",
            ArchSet::I,
            false,
            LevelConfig::kib(64, 4, 5),
            LevelConfig::kib(512, 8, 14),
            LevelConfig::mib(4, 16, 30),
            240,
        ),
        mem_arch(
            "Artificial M2",
            ArchSet::I,
            false,
            LevelConfig::kib(16, 4, 3),
            LevelConfig::mib(1, 16, 18),
            LevelConfig::mib(16, 32, 44),
            190,
        ),
        mem_arch(
            "Ivybridge",
            ArchSet::II,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(256, 8, 11),
            LevelConfig::mib(16, 16, 30),
            215,
        ),
        mem_arch(
            "Artificial M3",
            ArchSet::II,
            false,
            LevelConfig::kib(32, 2, 3),
            LevelConfig::kib(512, 4, 12),
            LevelConfig::mib(2, 8, 26),
            230,
        ),
        mem_arch(
            "Broadwell",
            ArchSet::III,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(256, 8, 12),
            LevelConfig::mib(6, 16, 42),
            200,
        ),
        mem_arch(
            "Artificial M4",
            ArchSet::III,
            false,
            LevelConfig::kib(48, 12, 5),
            LevelConfig::mib(1, 16, 16),
            LevelConfig::mib(12, 12, 40),
            225,
        ),
        mem_arch(
            "K10",
            ArchSet::IV,
            true,
            LevelConfig::kib(64, 2, 3),
            LevelConfig::kib(512, 16, 12),
            LevelConfig::mib(6, 16, 40),
            235,
        ),
        mem_arch(
            "Ryzen7",
            ArchSet::IV,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(512, 8, 12),
            LevelConfig::mib(8, 16, 35),
            200,
        ),
        mem_arch(
            "Skylake",
            ArchSet::IV,
            true,
            LevelConfig::kib(32, 8, 4),
            LevelConfig::kib(256, 4, 12),
            LevelConfig::mib(8, 16, 34),
            195,
        ),
    ]
}

/// Designs belonging to one experiment set.
pub fn by_set(set: ArchSet) -> Vec<MemArchConfig> {
    all().into_iter().filter(|a| a.set == set).collect()
}

/// Looks up a design by name.
pub fn by_name(name: &str) -> Option<MemArchConfig> {
    all().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_designs_partitioned() {
        assert_eq!(all().len(), 12);
        assert_eq!(by_set(ArchSet::I).len(), 5);
        assert_eq!(by_set(ArchSet::II).len(), 2);
        assert_eq!(by_set(ArchSet::III).len(), 2);
        assert_eq!(by_set(ArchSet::IV).len(), 3);
    }

    #[test]
    fn eight_real_designs() {
        assert_eq!(all().iter().filter(|a| a.real).count(), 8);
        assert!(by_set(ArchSet::IV).iter().all(|a| a.real));
    }

    #[test]
    fn feature_vector_matches_names() {
        let cfg = by_name("Skylake").unwrap();
        assert_eq!(
            cfg.feature_vector().len(),
            MemArchConfig::feature_names().len()
        );
    }
}

//! Trace-driven cache-hierarchy timing model (the ChampSim stand-in).
//!
//! A simple four-wide core front retires instructions at one per width
//! cycles; loads walk the L1D → L2 → LLC → memory hierarchy, train the SPP
//! prefetcher at the L2 boundary and accumulate Average Memory Access Time
//! (AMAT). Miss latency beyond the L1 is charged with a fixed
//! memory-level-parallelism discount, approximating an out-of-order
//! window without simulating one — the per-step *shape* of AMAT and IPC is
//! what the stage-1 models consume.

use perfbug_workloads::{Inst, Opcode, RowMatrix};

use crate::bugs::{CacheLevel, MemBugSpec};
use crate::cache::{AgedCache, ReplacementBugs};
use crate::config::MemArchConfig;
use crate::spp::{Spp, SppBugs};

/// Overlap factor applied to post-L1 miss latency (models MLP).
const MLP_FACTOR: u64 = 4;

/// Names of the per-step counter features of the memory simulator.
pub fn mem_counter_names() -> Vec<&'static str> {
    vec![
        "cycles",
        "insts",
        "loads",
        "stores",
        "l1d_hits",
        "l1d_misses",
        "l2_accesses",
        "l2_hits",
        "l2_misses",
        "llc_accesses",
        "llc_hits",
        "llc_misses",
        "mem_accesses",
        "load_latency_sum",
        "pf_issued",
        "pf_filled",
        "pf_useful",
        // Derived.
        "l1d_miss_rate",
        "l2_miss_rate",
        "llc_miss_rate",
        "amat",
        "pf_accuracy",
        "mpki",
    ]
}

/// Number of per-step counter features.
pub const N_MEM_COUNTERS: usize = 23;
const N_MEM_RAW: usize = 17;

#[derive(Debug, Clone, Copy, Default)]
struct Raw {
    v: [u64; N_MEM_RAW],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
enum C {
    Cycles,
    Insts,
    Loads,
    Stores,
    L1dHits,
    L1dMisses,
    L2Accesses,
    L2Hits,
    L2Misses,
    LlcAccesses,
    LlcHits,
    LlcMisses,
    MemAccesses,
    LoadLatencySum,
    PfIssued,
    PfFilled,
    PfUseful,
}

impl Raw {
    fn inc(&mut self, c: C) {
        self.v[c as usize] += 1;
    }
    fn add(&mut self, c: C, n: u64) {
        self.v[c as usize] += n;
    }
    fn get(&self, c: C) -> u64 {
        self.v[c as usize]
    }
}

/// Result of simulating one probe on one memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemRun {
    /// One feature row per time step (see [`mem_counter_names`]),
    /// stored contiguously.
    pub counter_rows: RowMatrix,
    /// Per-step IPC.
    pub ipc: Vec<f64>,
    /// Per-step AMAT in cycles.
    pub amat: Vec<f64>,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Total instructions.
    pub total_insts: u64,
}

impl MemRun {
    /// Whole-run IPC.
    pub fn overall_ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_insts as f64 / self.total_cycles as f64
        }
    }

    /// Whole-run average AMAT (mean of per-step AMATs).
    pub fn overall_amat(&self) -> f64 {
        if self.amat.is_empty() {
            0.0
        } else {
            self.amat.iter().sum::<f64>() / self.amat.len() as f64
        }
    }
}

/// Appends the per-step feature row (raw deltas + derived ratios) into
/// `out` without allocating, returning the step's (IPC, AMAT).
fn sample_row_into(cur: &Raw, prev: &Raw, step_cycles: u64, out: &mut Vec<f64>) -> (f64, f64) {
    let mut delta = [0u64; N_MEM_RAW];
    out.reserve(N_MEM_COUNTERS);
    for (d, (c, p)) in delta.iter_mut().zip(cur.v.iter().zip(&prev.v)) {
        *d = c - p;
        out.push(*d as f64);
    }
    let d = |c: C| delta[c as usize] as f64;
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let loads = d(C::Loads);
    let amat = ratio(d(C::LoadLatencySum), loads);
    out.push(ratio(d(C::L1dMisses), loads));
    out.push(ratio(d(C::L2Misses), d(C::L2Accesses)));
    out.push(ratio(d(C::LlcMisses), d(C::LlcAccesses)));
    out.push(amat);
    out.push(ratio(d(C::PfUseful), d(C::PfIssued)));
    out.push(ratio(d(C::L1dMisses) * 1000.0, d(C::Insts)));
    let ipc = d(C::Insts) / step_cycles as f64;
    (ipc, amat)
}

/// Simulates `trace` on the memory hierarchy `cfg`, optionally with one
/// injected bug, sampling every `step_cycles` cycles.
///
/// # Panics
///
/// Panics if `step_cycles` is zero.
pub fn simulate_memory(
    cfg: &MemArchConfig,
    bug: Option<MemBugSpec>,
    trace: &[Inst],
    step_cycles: u64,
) -> MemRun {
    assert!(step_cycles > 0, "step_cycles must be positive");
    let mut l1d = AgedCache::new(cfg.l1d.size, cfg.l1d.assoc);
    let mut l2 = AgedCache::new(cfg.l2.size, cfg.l2.assoc);
    let mut llc = AgedCache::new(cfg.llc.size, cfg.llc.assoc);
    let mut spp = Spp::new(cfg.spp);

    // Install bugs.
    let mut l1_miss_delay: Option<(u32, u32)> = None; // (threshold, delay)
    let mut l2_miss_delay: Option<(u32, u32)> = None;
    let mut drop_period: Option<u32> = None;
    let mut dram_close: Option<u32> = None;
    match bug {
        Some(MemBugSpec::NoAgeUpdate { level }) => {
            let bugs = ReplacementBugs {
                skip_age_update: true,
                ..Default::default()
            };
            match level {
                CacheLevel::L1d => l1d.set_bugs(bugs),
                CacheLevel::L2 => l2.set_bugs(bugs),
            }
        }
        Some(MemBugSpec::EvictMru { level }) => {
            let bugs = ReplacementBugs {
                evict_mru: true,
                ..Default::default()
            };
            match level {
                CacheLevel::L1d => l1d.set_bugs(bugs),
                CacheLevel::L2 => l2.set_bugs(bugs),
            }
        }
        Some(MemBugSpec::MissesDelay { level, n, t }) => match level {
            CacheLevel::L1d => l1_miss_delay = Some((n, t)),
            CacheLevel::L2 => l2_miss_delay = Some((n, t)),
        },
        Some(MemBugSpec::SppSignatureReset) => spp.set_bugs(SppBugs {
            reset_signature: true,
            ..Default::default()
        }),
        Some(MemBugSpec::SppLeastConfidence) => spp.set_bugs(SppBugs {
            least_confidence: true,
            ..Default::default()
        }),
        Some(MemBugSpec::SppDroppedPrefetch { n }) => drop_period = Some(n.max(1)),
        Some(MemBugSpec::SppDegreeStride { degree, skew }) => spp.set_bugs(SppBugs {
            degree_override: degree.max(1),
            delta_skew: skew,
            ..Default::default()
        }),
        Some(MemBugSpec::DramPageCloseDelay { t }) => dram_close = Some(t),
        None => {}
    }
    // Bug 8 state: per-bank last open row, tracked only when installed.
    let mut dram_banks = [u64::MAX; 8];

    let mut raw = Raw::default();
    let mut snapshot = raw;
    let mut rows = RowMatrix::new(N_MEM_COUNTERS);
    let mut ipc_series = Vec::new();
    let mut amat_series = Vec::new();

    // Fixed-point cycle accumulator in quarter-cycles.
    let mut qcycles: u64 = 0;
    let inst_q = 4 / cfg.width.clamp(1, 4) as u64;
    let mut next_boundary = step_cycles;
    let mut l1_misses_seen = 0u32;
    let mut l2_misses_seen = 0u32;

    for inst in trace {
        raw.inc(C::Insts);
        qcycles += inst_q;
        match inst.opcode {
            Opcode::Load => {
                raw.inc(C::Loads);
                let addr = inst.mem_addr as u64;
                let mut latency;
                let l1 = l1d.access(addr);
                if l1.hit {
                    raw.inc(C::L1dHits);
                    latency = cfg.l1d.latency;
                } else {
                    raw.inc(C::L1dMisses);
                    l1_misses_seen += 1;
                    raw.inc(C::L2Accesses);
                    // Train the prefetcher on the L2 access stream.
                    let prefetches = spp.access(addr);
                    for pf in prefetches {
                        raw.inc(C::PfIssued);
                        let dropped = drop_period
                            .map(|n| raw.get(C::PfIssued) % n as u64 == 0)
                            .unwrap_or(false);
                        if !dropped {
                            raw.inc(C::PfFilled);
                            l2.prefetch_fill(pf);
                            llc.prefetch_fill(pf);
                        }
                    }
                    let l2r = l2.access(addr);
                    if l2r.hit {
                        raw.inc(C::L2Hits);
                        if l2r.prefetch_hit {
                            raw.inc(C::PfUseful);
                        }
                        latency = cfg.l2.latency;
                        if let Some((n, t)) = l2_miss_delay {
                            if l2_misses_seen >= n {
                                latency += t;
                            }
                        }
                    } else {
                        raw.inc(C::L2Misses);
                        l2_misses_seen += 1;
                        raw.inc(C::LlcAccesses);
                        let llcr = llc.access(addr);
                        if llcr.hit {
                            raw.inc(C::LlcHits);
                            latency = cfg.llc.latency;
                        } else {
                            raw.inc(C::LlcMisses);
                            raw.inc(C::MemAccesses);
                            latency = cfg.mem_latency;
                            // Bug 8: the flat memory latency already prices
                            // an open-page average; forced page-close makes
                            // every would-be row hit pay the activate again.
                            if let Some(t) = dram_close {
                                let bank = ((addr >> 6) & 7) as usize;
                                let row = addr >> 13;
                                if dram_banks[bank] == row {
                                    latency += t;
                                }
                                dram_banks[bank] = row;
                            }
                        }
                    }
                }
                if let Some((n, t)) = l1_miss_delay {
                    if l1_misses_seen >= n {
                        latency += t;
                    }
                }
                raw.add(C::LoadLatencySum, latency as u64);
                // Post-L1 stall with MLP overlap.
                let stall = latency.saturating_sub(cfg.l1d.latency) as u64;
                qcycles += stall * 4 / MLP_FACTOR;
            }
            Opcode::Store => {
                raw.inc(C::Stores);
                let addr = inst.mem_addr as u64;
                let s1 = l1d.access(addr);
                if !s1.hit {
                    // Write-allocate fill path (no retire stall: the store
                    // buffer hides it).
                    raw.inc(C::L2Accesses);
                    let s2 = l2.access(addr);
                    if !s2.hit {
                        raw.inc(C::L2Misses);
                        l2_misses_seen += 1;
                        raw.inc(C::LlcAccesses);
                        let s3 = llc.access(addr);
                        if !s3.hit {
                            raw.inc(C::LlcMisses);
                            raw.inc(C::MemAccesses);
                        } else {
                            raw.inc(C::LlcHits);
                        }
                    } else {
                        raw.inc(C::L2Hits);
                    }
                } else {
                    raw.inc(C::L1dHits);
                }
            }
            _ => {}
        }

        let cycles = qcycles / 4;
        while cycles >= next_boundary {
            raw.v[C::Cycles as usize] = next_boundary;
            let mut step = (0.0, 0.0);
            rows.push_row_with(|buf| step = sample_row_into(&raw, &snapshot, step_cycles, buf));
            ipc_series.push(step.0);
            amat_series.push(step.1);
            snapshot = raw;
            next_boundary += step_cycles;
        }
    }
    let total_cycles = qcycles / 4;
    // Trailing partial step if it covers at least half a step.
    let covered = snapshot.get(C::Cycles);
    if total_cycles > covered && (total_cycles - covered) * 2 >= step_cycles {
        raw.v[C::Cycles as usize] = total_cycles;
        let mut step = (0.0, 0.0);
        rows.push_row_with(|buf| step = sample_row_into(&raw, &snapshot, step_cycles, buf));
        let insts = raw.get(C::Insts) - snapshot.get(C::Insts);
        ipc_series.push(insts as f64 / (total_cycles - covered) as f64);
        amat_series.push(step.1);
    }

    MemRun {
        counter_rows: rows,
        ipc: ipc_series,
        amat: amat_series,
        total_cycles,
        total_insts: trace.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;
    use perfbug_workloads::{benchmark, WorkloadScale};

    fn mem_trace() -> Vec<Inst> {
        let scale = WorkloadScale::tiny();
        let spec = benchmark("462.libquantum").expect("suite benchmark");
        let program = spec.program(&scale);
        spec.probes(&scale)[0].trace(&program)
    }

    fn skylake() -> MemArchConfig {
        config::by_name("Skylake").expect("preset")
    }

    #[test]
    fn runs_and_samples() {
        let trace = mem_trace();
        let run = simulate_memory(&skylake(), None, &trace, 200);
        assert_eq!(run.total_insts, trace.len() as u64);
        assert!(!run.counter_rows.is_empty());
        assert_eq!(run.counter_rows.len(), run.ipc.len());
        assert_eq!(run.counter_rows.len(), run.amat.len());
        for row in &run.counter_rows {
            assert_eq!(row.len(), N_MEM_COUNTERS);
            assert!(row.iter().all(|v| v.is_finite()));
        }
        assert!(run.overall_ipc() > 0.0 && run.overall_ipc() <= 4.0);
        assert!(run.overall_amat() >= skylake().l1d.latency as f64);
    }

    #[test]
    fn deterministic() {
        let trace = mem_trace();
        let a = simulate_memory(&skylake(), None, &trace, 200);
        let b = simulate_memory(&skylake(), None, &trace, 200);
        assert_eq!(a.counter_rows, b.counter_rows);
    }

    #[test]
    fn evict_mru_bug_raises_amat() {
        // Hot lines with heavy reuse interleaved with a cold stream: true
        // LRU keeps the hot set resident; MRU eviction throws out a hot
        // line the moment a cold miss follows its access.
        let mut trace = Vec::new();
        let mut cold = 0x6000_0000u32;
        for i in 0..30_000u32 {
            let mut hot = Inst::nop(0x1000);
            hot.opcode = Opcode::Load;
            hot.mem_addr = 0x5000_0000 + (i % 128) * 64; // 8 KiB hot set
            trace.push(hot);
            if i % 3 == 0 {
                let mut c = Inst::nop(0x1004);
                c.opcode = Opcode::Load;
                c.mem_addr = cold;
                cold += 64; // endless cold stream
                trace.push(c);
            }
        }
        let healthy = simulate_memory(&skylake(), None, &trace, 200);
        let buggy = simulate_memory(
            &skylake(),
            Some(MemBugSpec::EvictMru {
                level: CacheLevel::L1d,
            }),
            &trace,
            200,
        );
        assert!(
            buggy.overall_amat() > healthy.overall_amat(),
            "MRU eviction must raise AMAT ({} !> {})",
            buggy.overall_amat(),
            healthy.overall_amat()
        );
    }

    #[test]
    fn miss_delay_bug_raises_amat() {
        let trace = mem_trace();
        let healthy = simulate_memory(&skylake(), None, &trace, 200);
        let buggy = simulate_memory(
            &skylake(),
            Some(MemBugSpec::MissesDelay {
                level: CacheLevel::L1d,
                n: 50,
                t: 20,
            }),
            &trace,
            200,
        );
        assert!(buggy.overall_amat() > healthy.overall_amat());
        assert!(buggy.total_cycles > healthy.total_cycles);
    }

    #[test]
    fn prefetcher_helps_streaming_code() {
        let trace = mem_trace();
        let with_pf = simulate_memory(&skylake(), None, &trace, 200);
        // Breaking the prefetcher entirely (drop every prefetch) must hurt.
        let without = simulate_memory(
            &skylake(),
            Some(MemBugSpec::SppDroppedPrefetch { n: 1 }),
            &trace,
            200,
        );
        assert!(
            without.overall_amat() >= with_pf.overall_amat(),
            "dropping all prefetches cannot improve AMAT"
        );
    }

    #[test]
    fn degree_stride_bug_wastes_prefetches() {
        // A unit-stride stream of fresh cache lines: every load misses L1
        // and trains SPP. Healthy lookahead runs ahead of the stream; a
        // negative skew lands every prefetch *behind* it, so usefulness
        // collapses and AMAT rises.
        let mut trace = Vec::new();
        for i in 0..30_000u32 {
            let mut ld = Inst::nop(0x1000);
            ld.opcode = Opcode::Load;
            ld.mem_addr = 0x4000_0000 + i * 64;
            trace.push(ld);
        }
        let healthy = simulate_memory(&skylake(), None, &trace, 200);
        let buggy = simulate_memory(
            &skylake(),
            Some(MemBugSpec::SppDegreeStride {
                degree: 8,
                skew: -2,
            }),
            &trace,
            200,
        );
        let useful = |run: &MemRun| {
            run.counter_rows
                .iter()
                .map(|row| row[C::PfUseful as usize])
                .sum::<f64>()
        };
        assert!(
            useful(&buggy) < useful(&healthy),
            "skewed prefetches must be less useful ({} !< {})",
            useful(&buggy),
            useful(&healthy)
        );
        assert!(
            buggy.overall_amat() > healthy.overall_amat(),
            "lost coverage must raise AMAT ({} !> {})",
            buggy.overall_amat(),
            healthy.overall_amat()
        );
    }

    #[test]
    fn dram_page_close_bug_taxes_row_locality() {
        // A streaming region far larger than the LLC: nearly every load
        // reaches memory, and consecutive same-bank accesses share a DRAM
        // row — exactly the row hits forced page-close throws away.
        let mut trace = Vec::new();
        for i in 0..40_000u32 {
            let mut ld = Inst::nop(0x1000);
            ld.opcode = Opcode::Load;
            ld.mem_addr = 0x4000_0000 + i * 64;
            trace.push(ld);
        }
        let healthy = simulate_memory(&skylake(), None, &trace, 200);
        let buggy = simulate_memory(
            &skylake(),
            Some(MemBugSpec::DramPageCloseDelay { t: 40 }),
            &trace,
            200,
        );
        assert!(
            buggy.total_cycles > healthy.total_cycles,
            "lost row hits must cost cycles ({} !> {})",
            buggy.total_cycles,
            healthy.total_cycles
        );
        assert!(buggy.overall_amat() > healthy.overall_amat());
    }

    #[test]
    fn counter_names_match_row_width() {
        assert_eq!(mem_counter_names().len(), N_MEM_COUNTERS);
    }
}

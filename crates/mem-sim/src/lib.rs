//! # perfbug-memsim
//!
//! Trace-driven cache-hierarchy simulator — the ChampSim stand-in of the
//! HPCA 2021 performance-bug-detection reproduction (§IV-D).
//!
//! Models a three-level data-cache hierarchy with explicit age-counter LRU
//! replacement and a Signature Path Prefetcher (SPP) at the L2 boundary.
//! Per-time-step counters, IPC and AMAT series feed the same two-stage
//! detection methodology used for the core; the six memory bug types of
//! the paper are injectable via [`MemBugSpec`].
//!
//! ```
//! use perfbug_memsim::{config, simulate_memory};
//! use perfbug_workloads::{benchmark, WorkloadScale};
//!
//! let scale = WorkloadScale::tiny();
//! let spec = benchmark("462.libquantum").expect("suite benchmark");
//! let program = spec.program(&scale);
//! let probe = &spec.probes(&scale)[0];
//! let cfg = config::by_name("Skylake").expect("preset");
//! let run = simulate_memory(&cfg, None, &probe.trace(&program), 200);
//! assert!(run.overall_amat() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bugs;
pub mod cache;
pub mod config;
pub mod probes;
pub mod sim;
pub mod spp;

pub use bugs::{CacheLevel, MemBugSpec};
pub use cache::{AgedCache, LookupResult, ReplacementBugs, LINE_BYTES};
pub use config::{ArchSet, LevelConfig, MemArchConfig};
pub use probes::{memory_suite, MEMORY_SUITE};
pub use sim::{mem_counter_names, simulate_memory, MemRun, N_MEM_COUNTERS};
pub use spp::{Spp, SppBugs, SppConfig};

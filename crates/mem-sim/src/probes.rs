//! The 22-probe suite of the memory-system evaluation (§IV-D).
//!
//! The paper extracts 22 SimPoints from seven SPEC CPU2006 applications for
//! the ChampSim experiment. The per-application split is not published; we
//! use the seven most memory-relevant applications of our suite with
//! SimPoint counts summing to 22 (documented in EXPERIMENTS.md).

use perfbug_workloads::{benchmark, BenchmarkSpec};

/// The seven applications and their SimPoint counts (total 22).
pub const MEMORY_SUITE: [(&str, usize); 7] = [
    ("426.mcf", 4),
    ("462.libquantum", 4),
    ("433.milc", 3),
    ("450.soplex", 3),
    ("403.gcc", 3),
    ("401.bzip2", 3),
    ("436.cactusADM", 2),
];

/// Benchmark specs for the memory evaluation, with `k` overridden to the
/// memory-suite SimPoint counts.
pub fn memory_suite() -> Vec<BenchmarkSpec> {
    MEMORY_SUITE
        .iter()
        .map(|&(name, k)| {
            let mut spec = benchmark(name).expect("memory suite uses suite benchmarks");
            spec.k = k;
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfbug_workloads::WorkloadScale;

    #[test]
    fn twenty_two_probes_total() {
        let suite = memory_suite();
        assert_eq!(suite.len(), 7);
        let total: usize = suite.iter().map(|s| s.k).sum();
        assert_eq!(
            total, 22,
            "the paper uses 22 SimPoints for the memory study"
        );
    }

    #[test]
    fn probes_extract_at_tiny_scale() {
        let scale = WorkloadScale::tiny();
        let spec = &memory_suite()[6]; // cactusADM, cheapest (k = 2)
        let probes = spec.probes(&scale);
        assert_eq!(probes.len(), 2);
    }
}

//! Signature Path Prefetcher (SPP) after Kim et al., MICRO 2016.
//!
//! A compressed-history (signature) table per page feeds a pattern table of
//! delta predictions with confidence counters; lookahead prefetching walks
//! the most confident delta path until confidence falls below a threshold.
//! The paper's memory bugs 4 and 5 live here: signature reset and
//! least-confidence path selection.

/// Block offset bits within a 4 KiB page (64 blocks of 64 B).
const BLOCKS_PER_PAGE: i64 = 64;
const PAGE_SHIFT: u32 = 12;
const BLOCK_SHIFT: u32 = 6;
const SIG_BITS: u32 = 12;
const SIG_MASK: u16 = (1 << SIG_BITS) - 1;

/// Configuration of the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SppConfig {
    /// Signature-table entries (direct-mapped by page).
    pub st_entries: usize,
    /// Pattern-table entries (direct-mapped by signature).
    pub pt_entries: usize,
    /// Maximum lookahead depth per access.
    pub max_degree: usize,
    /// Minimum path confidence to keep prefetching.
    pub confidence_threshold: f64,
}

impl Default for SppConfig {
    fn default() -> Self {
        SppConfig {
            st_entries: 256,
            pt_entries: 512,
            max_degree: 8,
            confidence_threshold: 0.25,
        }
    }
}

/// Behavioural defects injectable into the prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SppBugs {
    /// Bug 4: signatures are reset on update (prefetcher predicts from a
    /// zeroed signature, i.e. the wrong table row).
    pub reset_signature: bool,
    /// Bug 5: lookahead follows the *least* confident delta.
    pub least_confidence: bool,
    /// Bug 7 (degree half): walk exactly this deep, ignoring the path
    /// confidence threshold. `0` = healthy (confidence-gated) walk.
    pub degree_override: u32,
    /// Bug 7 (stride half): blocks added to every predicted delta, so the
    /// prefetch lands next to — not on — the predicted block.
    pub delta_skew: i64,
}

#[derive(Debug, Clone, Copy)]
struct StEntry {
    page: u64,
    last_offset: i64,
    signature: u16,
    valid: bool,
}

/// Four-way delta pattern entry.
#[derive(Debug, Clone, Copy, Default)]
struct PtEntry {
    deltas: [i64; 4],
    counts: [u32; 4],
    sig_count: u32,
}

/// The Signature Path Prefetcher.
#[derive(Debug, Clone)]
pub struct Spp {
    cfg: SppConfig,
    st: Vec<StEntry>,
    pt: Vec<PtEntry>,
    bugs: SppBugs,
}

impl Spp {
    /// Creates a prefetcher.
    pub fn new(cfg: SppConfig) -> Self {
        Spp {
            st: vec![
                StEntry {
                    page: 0,
                    last_offset: 0,
                    signature: 0,
                    valid: false
                };
                cfg.st_entries.max(1)
            ],
            pt: vec![PtEntry::default(); cfg.pt_entries.max(1)],
            cfg,
            bugs: SppBugs::default(),
        }
    }

    /// Installs prefetcher bugs.
    pub fn set_bugs(&mut self, bugs: SppBugs) {
        self.bugs = bugs;
    }

    fn advance_signature(sig: u16, delta: i64) -> u16 {
        // 6-bit two's-complement delta folded into the signature.
        let d = (delta & 0x3F) as u16;
        ((sig << 3) ^ d) & SIG_MASK
    }

    /// Trains on a demand access and returns the lookahead prefetch
    /// addresses (block-aligned, same page).
    pub fn access(&mut self, addr: u64) -> Vec<u64> {
        let page = addr >> PAGE_SHIFT;
        let offset = ((addr >> BLOCK_SHIFT) as i64) % BLOCKS_PER_PAGE;
        let st_idx = (page as usize) % self.st.len();
        let entry = self.st[st_idx];

        let mut signature = 0u16;
        if entry.valid && entry.page == page {
            let delta = offset - entry.last_offset;
            if delta == 0 {
                return Vec::new(); // same block, nothing to learn
            }
            // Train the pattern table on (old signature -> delta).
            let pt_idx = (entry.signature as usize) % self.pt.len();
            let pt = &mut self.pt[pt_idx];
            pt.sig_count = pt.sig_count.saturating_add(1);
            if let Some(slot) = pt.deltas.iter().position(|&d| d == delta) {
                pt.counts[slot] = pt.counts[slot].saturating_add(1);
            } else {
                // Replace the weakest slot.
                let weakest = pt
                    .counts
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .expect("four slots");
                pt.deltas[weakest] = delta;
                pt.counts[weakest] = 1;
            }
            signature = if self.bugs.reset_signature {
                0
            } else {
                Self::advance_signature(entry.signature, delta)
            };
        }
        self.st[st_idx] = StEntry {
            page,
            last_offset: offset,
            signature,
            valid: true,
        };

        // Lookahead walk.
        let mut prefetches = Vec::new();
        let mut sig = signature;
        let mut cur = offset;
        let mut confidence = 1.0f64;
        // Bug 7: a forced degree walks past the confidence gate.
        let depth = if self.bugs.degree_override > 0 {
            self.bugs.degree_override as usize
        } else {
            self.cfg.max_degree
        };
        for _ in 0..depth {
            let pt = &self.pt[(sig as usize) % self.pt.len()];
            if pt.sig_count == 0 {
                break;
            }
            let candidates = pt.deltas.iter().zip(&pt.counts).filter(|(_, &c)| c > 0);
            let chosen = if self.bugs.least_confidence {
                candidates.min_by_key(|(_, &c)| c)
            } else {
                candidates.max_by_key(|(_, &c)| c)
            };
            let Some((&delta, &count)) = chosen else {
                break;
            };
            let path_conf = confidence * (count as f64 / pt.sig_count as f64);
            if self.bugs.degree_override == 0 && path_conf < self.cfg.confidence_threshold {
                break;
            }
            // Bug 7: the issued stride is skewed off the predicted delta.
            let next = cur + delta + self.bugs.delta_skew;
            if !(0..BLOCKS_PER_PAGE).contains(&next) {
                break; // SPP does not cross pages (without the GHR trick)
            }
            prefetches.push((page << PAGE_SHIFT) | ((next as u64) << BLOCK_SHIFT));
            sig = Self::advance_signature(sig, delta);
            cur = next;
            confidence = path_conf;
        }
        prefetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(spp: &mut Spp, page: u64, offsets: &[i64]) -> Vec<Vec<u64>> {
        offsets
            .iter()
            .map(|&o| spp.access((page << PAGE_SHIFT) | ((o as u64) << BLOCK_SHIFT)))
            .collect()
    }

    #[test]
    fn learns_unit_stride() {
        let mut spp = Spp::new(SppConfig::default());
        // Train: page 1, offsets 0..16 with stride 1.
        let offsets: Vec<i64> = (0..16).collect();
        walk(&mut spp, 1, &offsets);
        // On a fresh page-2 stream with the same pattern the signature path
        // should start prefetching ahead after a few accesses.
        let results = walk(&mut spp, 2, &(0..8).collect::<Vec<_>>());
        let issued: usize = results.iter().map(Vec::len).sum();
        assert!(
            issued > 0,
            "stride-1 pattern must trigger lookahead prefetches"
        );
        // All prefetches stay in page 2.
        for r in &results {
            for &addr in r {
                assert_eq!(addr >> PAGE_SHIFT, 2);
            }
        }
    }

    #[test]
    fn prefetches_run_ahead_of_the_stream() {
        let mut spp = Spp::new(SppConfig::default());
        let offsets: Vec<i64> = (0..32).collect();
        let results = walk(&mut spp, 7, &offsets);
        // After warm-up, accessing offset k should prefetch k+1 (at least).
        let late = &results[20];
        assert!(late
            .iter()
            .any(|&a| (a >> BLOCK_SHIFT) as i64 % BLOCKS_PER_PAGE == 21));
    }

    #[test]
    fn signature_reset_bug_degrades_prefetching() {
        // A two-phase pattern (stride 1 then stride 2, alternating) that a
        // signature distinguishes but a zeroed signature conflates.
        let pattern: Vec<i64> = vec![
            0, 1, 3, 4, 6, 7, 9, 10, 12, 13, 15, 16, 18, 19, 21, 22, 24, 25, 27, 28,
        ];
        let run = |bugs: SppBugs| -> usize {
            let mut spp = Spp::new(SppConfig::default());
            spp.set_bugs(bugs);
            let mut useful = 0;
            for page in 0..12u64 {
                let results = walk(&mut spp, page, &pattern);
                // Count prefetches that the later stream actually touches.
                let touched: Vec<u64> = pattern
                    .iter()
                    .map(|&o| (page << PAGE_SHIFT) | ((o as u64) << BLOCK_SHIFT))
                    .collect();
                for (i, r) in results.iter().enumerate() {
                    for &p in r {
                        if touched[i + 1..].contains(&p) {
                            useful += 1;
                        }
                    }
                }
            }
            useful
        };
        let healthy = run(SppBugs::default());
        let buggy = run(SppBugs {
            reset_signature: true,
            ..Default::default()
        });
        assert!(
            buggy < healthy,
            "reset signatures must produce fewer useful prefetches ({buggy} !< {healthy})"
        );
    }

    #[test]
    fn least_confidence_bug_changes_path() {
        // Two training populations share the (1, 1) prefix then diverge:
        // most pages continue +1, a minority jumps +3. The shared signature
        // ends up with two candidate deltas of different confidence, so
        // bug 5 (least-confidence path) must prefetch a different address.
        let majority: Vec<i64> = (0..16).collect(); // deltas 1,1,1,...
        let minority: Vec<i64> = vec![0, 1, 2, 5, 6, 7, 10, 11, 12, 15]; // 1,1,3 repeating
        let train = |spp: &mut Spp| {
            for page in 0..9u64 {
                walk(spp, 2 * page, &majority);
            }
            for page in 0..3u64 {
                walk(spp, 2 * page + 1, &minority);
            }
        };
        let mut healthy = Spp::new(SppConfig {
            confidence_threshold: 0.05,
            ..Default::default()
        });
        let mut buggy = Spp::new(SppConfig {
            confidence_threshold: 0.05,
            ..Default::default()
        });
        buggy.set_bugs(SppBugs {
            least_confidence: true,
            ..Default::default()
        });
        train(&mut healthy);
        train(&mut buggy);
        let h = walk(&mut healthy, 100, &[0, 1, 2]);
        let b = walk(&mut buggy, 100, &[0, 1, 2]);
        assert_ne!(
            h, b,
            "bug 5 must choose a different lookahead path: {h:?} vs {b:?}"
        );
    }

    #[test]
    fn no_cross_page_prefetches() {
        let mut spp = Spp::new(SppConfig::default());
        let offsets: Vec<i64> = (48..64).collect();
        for page in 0..6u64 {
            for r in walk(&mut spp, page, &offsets) {
                for &addr in &r {
                    assert_eq!(addr >> PAGE_SHIFT, page);
                }
            }
        }
    }
}

//! Set-associative cache with explicit age-counter LRU.
//!
//! Unlike the core simulator's cache, the replacement state here is an
//! explicit per-line age counter so the paper's memory bugs 1 ("age counter
//! not updated on access") and 2 ("evict the MRU block") can be injected at
//! exactly the mechanism the paper describes.

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// Replacement-policy defects injectable into a [`AgedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplacementBugs {
    /// Bug 1: hits do not refresh the age counter.
    pub skip_age_update: bool,
    /// Bug 2: evict the most recently used block instead of the LRU one.
    pub evict_mru: bool,
}

/// A set-associative cache with age-counter LRU replacement.
#[derive(Debug, Clone)]
pub struct AgedCache {
    sets: u64,
    ways: usize,
    tags: Vec<u64>,
    /// Age counters: 0 = most recently used.
    ages: Vec<u32>,
    /// Prefetch bit per line (for prefetcher usefulness accounting).
    prefetched: Vec<bool>,
    bugs: ReplacementBugs,
}

/// Result of a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch (cleared on
    /// first demand hit).
    pub prefetch_hit: bool,
}

impl AgedCache {
    /// Builds a cache of `size` bytes and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(size: u64, assoc: u32) -> Self {
        let ways = assoc.max(1) as usize;
        let sets = (size / (LINE_BYTES * ways as u64)).max(1);
        AgedCache {
            sets,
            ways,
            tags: vec![u64::MAX; (sets as usize) * ways],
            ages: vec![u32::MAX; (sets as usize) * ways],
            prefetched: vec![false; (sets as usize) * ways],
            bugs: ReplacementBugs::default(),
        }
    }

    /// Installs replacement-policy bugs.
    pub fn set_bugs(&mut self, bugs: ReplacementBugs) {
        self.bugs = bugs;
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    fn slot_range(&self, addr: u64) -> (usize, u64) {
        let line = addr / LINE_BYTES;
        let set = (line % self.sets) as usize;
        (set * self.ways, line / self.sets)
    }

    /// Demand access: looks up `addr`, fills on miss. Returns hit status.
    pub fn access(&mut self, addr: u64) -> LookupResult {
        self.access_inner(addr, false)
    }

    /// Prefetch fill: like a miss fill but marks the line as prefetched.
    /// Returns whether the line was already present.
    pub fn prefetch_fill(&mut self, addr: u64) -> bool {
        let (base, tag) = self.slot_range(addr);
        if self.tags[base..base + self.ways].contains(&tag) {
            return true;
        }
        let victim = self.pick_victim(base);
        self.tags[base + victim] = tag;
        self.prefetched[base + victim] = true;
        self.touch(base, victim);
        false
    }

    fn access_inner(&mut self, addr: u64, _is_write: bool) -> LookupResult {
        let (base, tag) = self.slot_range(addr);
        let hit_way = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag);
        match hit_way {
            Some(way) => {
                let was_prefetch = self.prefetched[base + way];
                self.prefetched[base + way] = false;
                if !self.bugs.skip_age_update {
                    self.touch(base, way);
                }
                LookupResult {
                    hit: true,
                    prefetch_hit: was_prefetch,
                }
            }
            None => {
                let victim = self.pick_victim(base);
                self.tags[base + victim] = tag;
                self.prefetched[base + victim] = false;
                // Fills always stamp the age (the line must have *some*
                // recency state); bug 1 affects the hit path.
                self.touch(base, victim);
                LookupResult {
                    hit: false,
                    prefetch_hit: false,
                }
            }
        }
    }

    fn pick_victim(&self, base: usize) -> usize {
        // Invalid ways first.
        if let Some(w) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == u64::MAX)
        {
            return w;
        }
        let ages = &self.ages[base..base + self.ways];
        if self.bugs.evict_mru {
            // Most recently used = smallest age.
            ages.iter()
                .enumerate()
                .min_by_key(|(_, &a)| a)
                .map(|(i, _)| i)
                .expect("ways > 0")
        } else {
            ages.iter()
                .enumerate()
                .max_by_key(|(_, &a)| a)
                .map(|(i, _)| i)
                .expect("ways > 0")
        }
    }

    fn touch(&mut self, base: usize, way: usize) {
        for a in &mut self.ages[base..base + self.ways] {
            *a = a.saturating_add(1);
        }
        self.ages[base + way] = 0;
    }

    /// Whether `addr` is resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let (base, tag) = self.slot_range(addr);
        self.tags[base..base + self.ways].contains(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache2() -> AgedCache {
        // 2 sets x 2 ways.
        AgedCache::new(256, 2)
    }

    #[test]
    fn fill_and_hit() {
        let mut c = cache2();
        assert!(!c.access(0).hit);
        assert!(c.access(0).hit);
        assert!(c.access(63).hit); // same line
        assert!(!c.access(64).hit); // next line, other set
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = cache2();
        // Set stride: 2 sets -> lines 0, 2, 4 map to set 0.
        let (a, b, d) = (0u64, 128, 256);
        c.access(a);
        c.access(b);
        c.access(a); // refresh a
        c.access(d); // evicts b
        assert!(c.contains(a) && !c.contains(b) && c.contains(d));
    }

    #[test]
    fn bug_no_age_update_forgets_recency() {
        let mut c = cache2();
        c.set_bugs(ReplacementBugs {
            skip_age_update: true,
            ..Default::default()
        });
        let (a, b, d) = (0u64, 128, 256);
        c.access(a);
        c.access(b);
        c.access(a); // with the bug this does NOT refresh a
        c.access(d); // evicts a (oldest fill) instead of b
        assert!(!c.contains(a), "bugged cache must forget the re-used line");
        assert!(c.contains(b) && c.contains(d));
    }

    #[test]
    fn bug_evict_mru_thrashes() {
        let mut c = cache2();
        c.set_bugs(ReplacementBugs {
            evict_mru: true,
            ..Default::default()
        });
        let (a, b, d) = (0u64, 128, 256);
        c.access(a);
        c.access(b); // b is MRU
        c.access(d); // evicts b (MRU) instead of a
        assert!(c.contains(a) && !c.contains(b) && c.contains(d));
    }

    #[test]
    fn prefetch_fill_marks_lines() {
        let mut c = cache2();
        assert!(!c.prefetch_fill(0));
        let r = c.access(0);
        assert!(
            r.hit && r.prefetch_hit,
            "first demand hit sees the prefetch bit"
        );
        let r = c.access(0);
        assert!(r.hit && !r.prefetch_hit, "bit clears after first use");
    }
}

//! The six memory-system performance-bug types of §IV-D.

/// Cache level selector for bugs with per-level variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// First-level data cache.
    L1d,
    /// Second-level cache.
    L2,
}

/// One injected memory-system performance bug (at most one per simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemBugSpec {
    /// Bug 1 — on a cache-block access the replacement-policy age counter
    /// is not updated, so recency information is lost.
    NoAgeUpdate {
        /// Affected level.
        level: CacheLevel,
    },
    /// Bug 2 — evictions pick the most recently used block instead of the
    /// least recently used one.
    EvictMru {
        /// Affected level.
        level: CacheLevel,
    },
    /// Bug 3 — after `n` load misses, each read is delayed by `t` extra
    /// cycles (variants for L1D and L2).
    MissesDelay {
        /// Affected level.
        level: CacheLevel,
        /// Miss-count threshold.
        n: u32,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 4 — Signature Path Prefetcher signatures are reset, making the
    /// prefetcher predict from a zeroed signature (wrong addresses).
    SppSignatureReset,
    /// Bug 5 — lookahead prefetching follows the path with the *least*
    /// confidence.
    SppLeastConfidence,
    /// Bug 6 — every `n`-th prefetch is marked executed without actually
    /// being issued (found in the original SPP code).
    SppDroppedPrefetch {
        /// Drop period.
        n: u32,
    },
}

impl MemBugSpec {
    /// The paper's memory bug-type number (1–6).
    pub fn type_id(&self) -> u32 {
        match self {
            MemBugSpec::NoAgeUpdate { .. } => 1,
            MemBugSpec::EvictMru { .. } => 2,
            MemBugSpec::MissesDelay { .. } => 3,
            MemBugSpec::SppSignatureReset => 4,
            MemBugSpec::SppLeastConfidence => 5,
            MemBugSpec::SppDroppedPrefetch { .. } => 6,
        }
    }

    /// Short type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            MemBugSpec::NoAgeUpdate { .. } => "NoAgeUpdate",
            MemBugSpec::EvictMru { .. } => "EvictMRU",
            MemBugSpec::MissesDelay { .. } => "NMissesDelayT",
            MemBugSpec::SppSignatureReset => "SppSignatureReset",
            MemBugSpec::SppLeastConfidence => "SppLeastConfidence",
            MemBugSpec::SppDroppedPrefetch { .. } => "SppDroppedPrefetch",
        }
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self {
            MemBugSpec::NoAgeUpdate { level } => {
                format!("{level:?}: age counter not updated on access")
            }
            MemBugSpec::EvictMru { level } => format!("{level:?}: evict MRU instead of LRU"),
            MemBugSpec::MissesDelay { level, n, t } => {
                format!("{level:?}: after {n} load misses, delay reads {t} cycles")
            }
            MemBugSpec::SppSignatureReset => "SPP signatures reset".to_string(),
            MemBugSpec::SppLeastConfidence => {
                "SPP lookahead follows least-confidence path".to_string()
            }
            MemBugSpec::SppDroppedPrefetch { n } => {
                format!("every {n}-th SPP prefetch dropped but marked executed")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_ids_cover_one_to_six() {
        let bugs = [
            MemBugSpec::NoAgeUpdate {
                level: CacheLevel::L1d,
            },
            MemBugSpec::EvictMru {
                level: CacheLevel::L2,
            },
            MemBugSpec::MissesDelay {
                level: CacheLevel::L1d,
                n: 100,
                t: 5,
            },
            MemBugSpec::SppSignatureReset,
            MemBugSpec::SppLeastConfidence,
            MemBugSpec::SppDroppedPrefetch { n: 4 },
        ];
        let ids: Vec<u32> = bugs.iter().map(MemBugSpec::type_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
        for b in &bugs {
            assert!(!b.describe().is_empty());
        }
    }
}

//! The memory-system performance-bug types: the six of §IV-D plus two
//! extension families (7: prefetcher degree/stride pathology, 8: DRAM
//! row-policy/page-close regression) grown past the paper's catalogue.

/// Cache level selector for bugs with per-level variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// First-level data cache.
    L1d,
    /// Second-level cache.
    L2,
}

/// One injected memory-system performance bug (at most one per simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemBugSpec {
    /// Bug 1 — on a cache-block access the replacement-policy age counter
    /// is not updated, so recency information is lost.
    NoAgeUpdate {
        /// Affected level.
        level: CacheLevel,
    },
    /// Bug 2 — evictions pick the most recently used block instead of the
    /// least recently used one.
    EvictMru {
        /// Affected level.
        level: CacheLevel,
    },
    /// Bug 3 — after `n` load misses, each read is delayed by `t` extra
    /// cycles (variants for L1D and L2).
    MissesDelay {
        /// Affected level.
        level: CacheLevel,
        /// Miss-count threshold.
        n: u32,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 4 — Signature Path Prefetcher signatures are reset, making the
    /// prefetcher predict from a zeroed signature (wrong addresses).
    SppSignatureReset,
    /// Bug 5 — lookahead prefetching follows the path with the *least*
    /// confidence.
    SppLeastConfidence,
    /// Bug 6 — every `n`-th prefetch is marked executed without actually
    /// being issued (found in the original SPP code).
    SppDroppedPrefetch {
        /// Drop period.
        n: u32,
    },
    /// Bug 7 — the prefetcher's degree/stride control is broken: the
    /// lookahead walk ignores path confidence and always runs `degree`
    /// deep, and every predicted delta is skewed by `skew` blocks, so
    /// low-confidence and off-target prefetches pollute the caches.
    SppDegreeStride {
        /// Forced lookahead depth (confidence threshold ignored).
        degree: u32,
        /// Blocks added to every predicted delta (0 = stride intact).
        skew: i64,
    },
    /// Bug 8 — DRAM row-buffer policy regression: the controller closes
    /// the row after every access (forced page-close), so an access that
    /// would have been a row-buffer hit under the open-page policy pays
    /// `t` extra cycles of activate latency.
    DramPageCloseDelay {
        /// Extra cycles per lost row-buffer hit.
        t: u32,
    },
}

impl MemBugSpec {
    /// The memory bug-type number (1–6 from the paper, 7–8 extensions).
    pub fn type_id(&self) -> u32 {
        match self {
            MemBugSpec::NoAgeUpdate { .. } => 1,
            MemBugSpec::EvictMru { .. } => 2,
            MemBugSpec::MissesDelay { .. } => 3,
            MemBugSpec::SppSignatureReset => 4,
            MemBugSpec::SppLeastConfidence => 5,
            MemBugSpec::SppDroppedPrefetch { .. } => 6,
            MemBugSpec::SppDegreeStride { .. } => 7,
            MemBugSpec::DramPageCloseDelay { .. } => 8,
        }
    }

    /// Whether this bug can change a probe's dynamic access stream.
    ///
    /// The memory experiment is trace driven: every current family
    /// mis-manages the *hierarchy* (replacement state, prefetch
    /// predictions, row-buffer policy, added latency) but never alters
    /// the demand access stream the workload issues — the property the
    /// persistent trace cache (`perfbug-core`'s `tracecache`) relies on
    /// to replay one trace across all designs and bugs. The match is
    /// exhaustive on purpose: a new family must decide here (and in the
    /// pinning regression test in `core/tests/trace_props.rs`) whether
    /// it perturbs the access stream, so it cannot silently reuse a
    /// trace it invalidates.
    pub fn perturbs_trace(&self) -> bool {
        match self {
            MemBugSpec::NoAgeUpdate { .. }
            | MemBugSpec::EvictMru { .. }
            | MemBugSpec::MissesDelay { .. }
            | MemBugSpec::SppSignatureReset
            | MemBugSpec::SppLeastConfidence
            | MemBugSpec::SppDroppedPrefetch { .. }
            | MemBugSpec::SppDegreeStride { .. }
            | MemBugSpec::DramPageCloseDelay { .. } => false,
        }
    }

    /// Short type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            MemBugSpec::NoAgeUpdate { .. } => "NoAgeUpdate",
            MemBugSpec::EvictMru { .. } => "EvictMRU",
            MemBugSpec::MissesDelay { .. } => "NMissesDelayT",
            MemBugSpec::SppSignatureReset => "SppSignatureReset",
            MemBugSpec::SppLeastConfidence => "SppLeastConfidence",
            MemBugSpec::SppDroppedPrefetch { .. } => "SppDroppedPrefetch",
            MemBugSpec::SppDegreeStride { .. } => "SppDegreeStride",
            MemBugSpec::DramPageCloseDelay { .. } => "DramPageCloseDelayT",
        }
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self {
            MemBugSpec::NoAgeUpdate { level } => {
                format!("{level:?}: age counter not updated on access")
            }
            MemBugSpec::EvictMru { level } => format!("{level:?}: evict MRU instead of LRU"),
            MemBugSpec::MissesDelay { level, n, t } => {
                format!("{level:?}: after {n} load misses, delay reads {t} cycles")
            }
            MemBugSpec::SppSignatureReset => "SPP signatures reset".to_string(),
            MemBugSpec::SppLeastConfidence => {
                "SPP lookahead follows least-confidence path".to_string()
            }
            MemBugSpec::SppDroppedPrefetch { n } => {
                format!("every {n}-th SPP prefetch dropped but marked executed")
            }
            MemBugSpec::SppDegreeStride { degree, skew } => {
                format!("SPP walks {degree} deep ignoring confidence, deltas skewed by {skew}")
            }
            MemBugSpec::DramPageCloseDelay { t } => {
                format!("DRAM rows closed after every access, lost row hits cost {t} cycles")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_ids_cover_all_types() {
        let bugs = [
            MemBugSpec::NoAgeUpdate {
                level: CacheLevel::L1d,
            },
            MemBugSpec::EvictMru {
                level: CacheLevel::L2,
            },
            MemBugSpec::MissesDelay {
                level: CacheLevel::L1d,
                n: 100,
                t: 5,
            },
            MemBugSpec::SppSignatureReset,
            MemBugSpec::SppLeastConfidence,
            MemBugSpec::SppDroppedPrefetch { n: 4 },
            MemBugSpec::SppDegreeStride { degree: 8, skew: 1 },
            MemBugSpec::DramPageCloseDelay { t: 20 },
        ];
        let ids: Vec<u32> = bugs.iter().map(MemBugSpec::type_id).collect();
        assert_eq!(ids, (1..=8).collect::<Vec<u32>>());
        for b in &bugs {
            assert!(!b.describe().is_empty());
        }
    }
}

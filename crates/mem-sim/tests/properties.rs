//! Property-based tests for the memory-hierarchy substrate.

use perfbug_memsim::{AgedCache, ReplacementBugs, Spp, SppConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_hit_after_fill(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = AgedCache::new(8 * 1024, 4);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a).hit, "immediate re-access must hit");
        }
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup(
        base in 0u64..1_000_000,
    ) {
        // 16 lines in a 32-line cache: after one pass, everything hits.
        let mut c = AgedCache::new(32 * 64, 4);
        let lines: Vec<u64> = (0..16).map(|i| (base + i * 64) & !63).collect();
        for &a in &lines {
            c.access(a);
        }
        for _ in 0..3 {
            for &a in &lines {
                prop_assert!(c.access(a).hit);
            }
        }
    }

    #[test]
    fn buggy_replacement_never_affects_correctness_only_hits(
        addrs in prop::collection::vec(0u64..65_536, 50..300),
    ) {
        // Both caches must agree that a just-filled line is resident; the
        // bug only changes WHICH lines survive, never containment of the
        // most recent fill.
        let mut healthy = AgedCache::new(4 * 1024, 2);
        let mut buggy = AgedCache::new(4 * 1024, 2);
        buggy.set_bugs(ReplacementBugs { evict_mru: true, skip_age_update: true });
        for &a in &addrs {
            healthy.access(a);
            buggy.access(a);
            prop_assert!(healthy.contains(a));
            prop_assert!(buggy.contains(a));
        }
    }

    #[test]
    fn spp_prefetches_stay_in_page_and_block_aligned(
        offsets in prop::collection::vec(0i64..64, 4..64),
        page in 0u64..4096,
    ) {
        let mut spp = Spp::new(SppConfig::default());
        for &o in &offsets {
            let addr = (page << 12) | ((o as u64) << 6);
            for pf in spp.access(addr) {
                prop_assert_eq!(pf >> 12, page, "prefetch crossed the page");
                prop_assert_eq!(pf & 63, 0, "prefetch not block aligned");
            }
        }
    }

    #[test]
    fn spp_is_deterministic(
        offsets in prop::collection::vec(0i64..64, 4..48),
    ) {
        let run = || {
            let mut spp = Spp::new(SppConfig::default());
            let mut out = Vec::new();
            for &o in &offsets {
                out.extend(spp.access(((o as u64) << 6) | (7 << 12)));
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn spp_degree_limits_prefetches(
        offsets in prop::collection::vec(0i64..64, 4..48),
        degree in 1usize..6,
    ) {
        let mut spp = Spp::new(SppConfig { max_degree: degree, ..SppConfig::default() });
        for &o in &offsets {
            let n = spp.access(((o as u64) << 6) | (3 << 12)).len();
            prop_assert!(n <= degree, "issued {n} > degree {degree}");
        }
    }
}

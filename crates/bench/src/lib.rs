//! Shared helpers for the table/figure regeneration harness.
//!
//! Every bench target regenerates one table or figure of the paper. Two
//! scales are supported, selected by the `PERFBUG_SCALE` environment
//! variable:
//!
//! * `quick` (default) — reduced probe counts and engine widths so the
//!   whole harness completes in tens of minutes on a laptop;
//! * `paper` — the full 190-probe, 42-variant configuration.
//!
//! Outputs are plain text: the same rows/series the paper reports, plus a
//! header stating the scale. Absolute values are expected to differ from
//! the paper (different substrate); the *shape* is the reproduction target.

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{CollectionConfig, ProbeScale};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::{CnnParams, GbtParams, LassoParams, LstmParams, MlpParams};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Reduced scale (default).
    Quick,
    /// Full paper-shaped scale.
    Paper,
}

/// Reads `PERFBUG_SCALE` (`quick` default, `paper` for the full runs).
pub fn bench_scale() -> BenchScale {
    match std::env::var("PERFBUG_SCALE").as_deref() {
        Ok("paper") | Ok("full") => BenchScale::Paper,
        _ => BenchScale::Quick,
    }
}

/// Picks a probe cap: `quick` at reduced scale, unlimited at paper scale.
pub fn probe_cap(quick: usize) -> Option<usize> {
    match bench_scale() {
        BenchScale::Quick => Some(quick),
        BenchScale::Paper => None,
    }
}

/// Scales a neural width: reduced at quick scale, paper value otherwise.
pub fn width(paper_width: usize, quick_width: usize) -> usize {
    match bench_scale() {
        BenchScale::Quick => quick_width,
        BenchScale::Paper => paper_width,
    }
}

/// Prints the standard header of a regeneration target.
pub fn banner(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!(
        "scale: {:?} (set PERFBUG_SCALE=paper for the full run)",
        bench_scale()
    );
    println!("==========================================================");
}

/// The default catalogue at the current scale.
pub fn catalog() -> BugCatalog {
    match bench_scale() {
        BenchScale::Quick => BugCatalog::core_small(),
        BenchScale::Paper => BugCatalog::core_full(),
    }
}

/// A ready-to-run collection config at the current scale.
pub fn base_config(engines: Vec<EngineSpec>, quick_probes: usize) -> CollectionConfig {
    let mut config = CollectionConfig::new(engines, catalog());
    config.scale = ProbeScale::default();
    config.max_probes = probe_cap(quick_probes);
    config
}

/// GBT-250 (the paper's best engine — full size at every scale).
pub fn gbt250() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 250,
        ..GbtParams::default()
    })
}

/// GBT-150.
pub fn gbt150() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 150,
        ..GbtParams::default()
    })
}

/// Lasso.
pub fn lasso() -> EngineSpec {
    EngineSpec::Lasso(LassoParams::default())
}

/// `<layers>-MLP-<width>` scaled to the bench scale.
pub fn mlp(layers: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Mlp(MlpParams {
        hidden: vec![width(paper_width, quick_width); layers],
        max_epochs: match bench_scale() {
            BenchScale::Quick => 150,
            BenchScale::Paper => 400,
        },
        ..MlpParams::default()
    })
}

/// `<blocks>-CNN-<width>` scaled to the bench scale.
pub fn cnn(blocks: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Cnn(CnnParams {
        conv_blocks: blocks,
        hidden: width(paper_width, quick_width),
        max_epochs: match bench_scale() {
            BenchScale::Quick => 120,
            BenchScale::Paper => 300,
        },
        ..CnnParams::default()
    })
}

/// `<layers>-LSTM-<width>` scaled to the bench scale.
pub fn lstm(layers: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Lstm(LstmParams {
        layers,
        hidden: width(paper_width, quick_width),
        max_epochs: match bench_scale() {
            BenchScale::Quick => 100,
            BenchScale::Paper => 250,
        },
        ..LstmParams::default()
    })
}

/// Formats a `DetectionMetrics` row's severity cells.
pub fn severity_cells(m: &perfbug_core::DetectionMetrics) -> Vec<String> {
    m.tpr_by_severity
        .iter()
        .map(|v| perfbug_core::report::opt_f(*v, 2))
        .collect()
}

//! Shared helpers for the table/figure regeneration harness.
//!
//! Every bench target regenerates one table or figure of the paper. Two
//! scales are supported, selected by the `PERFBUG_SCALE` environment
//! variable:
//!
//! * `quick` (default) — reduced probe counts and engine widths so the
//!   whole harness completes in tens of minutes on a laptop;
//! * `paper` — the full 190-probe, 42-variant configuration.
//!
//! Outputs are plain text: the same rows/series the paper reports, plus a
//! header stating the scale. Absolute values are expected to differ from
//! the paper (different substrate); the *shape* is the reproduction target.
//!
//! # Collection cache
//!
//! Collection (simulate + train stage 1) dominates every target's runtime;
//! evaluation is cheap. When `PERFBUG_CACHE_DIR` is set, [`collect_cached`]
//! / [`collect_memory_cached`] persist each collection to
//! `<dir>/<target>-<config fingerprint>.pbcol` and later invocations replay
//! it from disk without invoking the simulator. The fingerprint is part of
//! the file name, so changing the scale or configuration collects into a
//! fresh file instead of tripping the stale-cache rejection.

use std::path::PathBuf;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, Collection, CollectionConfig, ProbeScale};
use perfbug_core::memory::{collect_memory, MemCollectionConfig};
use perfbug_core::persist::{self, CacheStatus};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::{CnnParams, GbtParams, LassoParams, LstmParams, MlpParams};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Reduced scale (default).
    Quick,
    /// Full paper-shaped scale.
    Paper,
}

/// Reads `PERFBUG_SCALE` (`quick` default, `paper` for the full runs).
pub fn bench_scale() -> BenchScale {
    match std::env::var("PERFBUG_SCALE").as_deref() {
        Ok("paper") | Ok("full") => BenchScale::Paper,
        _ => BenchScale::Quick,
    }
}

/// Picks a probe cap: `quick` at reduced scale, unlimited at paper scale.
pub fn probe_cap(quick: usize) -> Option<usize> {
    match bench_scale() {
        BenchScale::Quick => Some(quick),
        BenchScale::Paper => None,
    }
}

/// Scales a neural width: reduced at quick scale, paper value otherwise.
pub fn width(paper_width: usize, quick_width: usize) -> usize {
    match bench_scale() {
        BenchScale::Quick => quick_width,
        BenchScale::Paper => paper_width,
    }
}

/// Prints the standard header of a regeneration target.
pub fn banner(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!(
        "scale: {:?} (set PERFBUG_SCALE=paper for the full run)",
        bench_scale()
    );
    println!("==========================================================");
}

/// The default catalogue at the current scale.
pub fn catalog() -> BugCatalog {
    match bench_scale() {
        BenchScale::Quick => BugCatalog::core_small(),
        BenchScale::Paper => BugCatalog::core_full(),
    }
}

/// A ready-to-run collection config at the current scale.
pub fn base_config(engines: Vec<EngineSpec>, quick_probes: usize) -> CollectionConfig {
    let mut config = CollectionConfig::new(engines, catalog());
    config.scale = ProbeScale::default();
    config.max_probes = probe_cap(quick_probes);
    config
}

/// The collection cache directory, read from `PERFBUG_CACHE_DIR`. `None`
/// disables caching (every run collects from scratch).
pub fn cache_dir() -> Option<PathBuf> {
    std::env::var_os("PERFBUG_CACHE_DIR").map(PathBuf::from)
}

fn cache_path(dir: &PathBuf, name: &str, fingerprint: u64) -> PathBuf {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()));
    dir.join(persist::cache_file_name(name, fingerprint))
}

fn report(status: CacheStatus, path: &std::path::Path) {
    match status {
        CacheStatus::Replayed => println!("  [cache] replayed {}", path.display()),
        CacheStatus::Collected => println!("  [cache] collected and saved {}", path.display()),
    }
}

/// Runs (or replays) a core collection. With `PERFBUG_CACHE_DIR` unset
/// this is plain [`collect`]; with it set, the collection persists under
/// `name` and subsequent runs replay it without simulating.
pub fn collect_cached(name: &str, config: &CollectionConfig) -> Collection {
    let Some(dir) = cache_dir() else {
        return collect(config);
    };
    let path = cache_path(&dir, name, persist::config_fingerprint(config));
    let (col, status) = persist::collect_or_load(&path, config)
        .unwrap_or_else(|e| panic!("collection cache {}: {e}", path.display()));
    report(status, &path);
    col
}

/// [`collect_cached`] for the memory experiment.
pub fn collect_memory_cached(name: &str, config: &MemCollectionConfig) -> Collection {
    let Some(dir) = cache_dir() else {
        return collect_memory(config);
    };
    let path = cache_path(&dir, name, persist::mem_config_fingerprint(config));
    let (col, status) = persist::collect_memory_or_load(&path, config)
        .unwrap_or_else(|e| panic!("collection cache {}: {e}", path.display()));
    report(status, &path);
    col
}

/// GBT-250 (the paper's best engine — full size at every scale).
pub fn gbt250() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 250,
        ..GbtParams::default()
    })
}

/// GBT-150.
pub fn gbt150() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 150,
        ..GbtParams::default()
    })
}

/// Lasso.
pub fn lasso() -> EngineSpec {
    EngineSpec::Lasso(LassoParams::default())
}

/// `<layers>-MLP-<width>` scaled to the bench scale.
pub fn mlp(layers: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Mlp(MlpParams {
        hidden: vec![width(paper_width, quick_width); layers],
        max_epochs: match bench_scale() {
            BenchScale::Quick => 150,
            BenchScale::Paper => 400,
        },
        ..MlpParams::default()
    })
}

/// `<blocks>-CNN-<width>` scaled to the bench scale.
pub fn cnn(blocks: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Cnn(CnnParams {
        conv_blocks: blocks,
        hidden: width(paper_width, quick_width),
        max_epochs: match bench_scale() {
            BenchScale::Quick => 120,
            BenchScale::Paper => 300,
        },
        ..CnnParams::default()
    })
}

/// `<layers>-LSTM-<width>` scaled to the bench scale.
pub fn lstm(layers: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Lstm(LstmParams {
        layers,
        hidden: width(paper_width, quick_width),
        max_epochs: match bench_scale() {
            BenchScale::Quick => 100,
            BenchScale::Paper => 250,
        },
        ..LstmParams::default()
    })
}

/// Formats a `DetectionMetrics` row's severity cells.
pub fn severity_cells(m: &perfbug_core::DetectionMetrics) -> Vec<String> {
    m.tpr_by_severity
        .iter()
        .map(|v| perfbug_core::report::opt_f(*v, 2))
        .collect()
}

//! Shared helpers for the table/figure regeneration harness.
//!
//! Every bench target regenerates one table or figure of the paper. Two
//! scales are supported, selected by the `PERFBUG_SCALE` environment
//! variable:
//!
//! * `quick` (default) — reduced probe counts and engine widths so the
//!   whole harness completes in tens of minutes on a laptop;
//! * `paper` — the full 190-probe, 42-variant configuration.
//!
//! # Orchestrated collection
//!
//! Setting `PERFBUG_ORCH_WORKERS=<n>` (with `PERFBUG_CACHE_DIR`) makes
//! [`collect_cached`] / [`collect_memory_cached`] drive the whole
//! collection through `perfbug_core::orchestrate`: the probe axis is
//! split into more shards than workers (default `2n`,
//! `PERFBUG_ORCH_SHARDS` overrides), `n` child processes — re-invocations
//! of the current binary with `PERFBUG_SHARD=<i>/<m>` and
//! `PERFBUG_SHARD_ONLY=1` — collect shards off a work queue with bounded
//! retry on worker loss, and the parent assembles the merged corpus and
//! continues into evaluation. `pborch` (in `src/bin/pborch.rs`) is the
//! standalone CLI for the same driver. See `docs/ARCHITECTURE.md`.
//!
//! Outputs are plain text: the same rows/series the paper reports, plus a
//! header stating the scale. Absolute values are expected to differ from
//! the paper (different substrate); the *shape* is the reproduction target.
//!
//! # Collection cache
//!
//! Collection (simulate + train stage 1) dominates every target's runtime;
//! evaluation is cheap. When `PERFBUG_CACHE_DIR` is set, [`collect_cached`]
//! / [`collect_memory_cached`] persist each collection to
//! `<dir>/<target>-<kind>-<config fingerprint>.pbcol` and later
//! invocations replay it from disk without invoking the simulator. The
//! experiment kind and the fingerprint are part of the file name, so
//! changing the scale or configuration collects into a fresh file instead
//! of tripping the stale-cache rejection, and core and memory experiments
//! never collide in a shared cache directory.
//!
//! # Sharded collection
//!
//! Setting `PERFBUG_SHARD=<index>/<count>` turns a bench target into one
//! shard worker of a `count`-process collection pass: it collects only its
//! probe range, streams it into the shard file beside the full cache file
//! — resuming a crashed predecessor's durable part-file prefix instead of
//! re-collecting it — and then either assembles the full corpus (when
//! every shard is on disk) and continues, or exits cleanly so the
//! remaining shards can be run, possibly on other hosts sharing the cache
//! directory. `pbcol merge` / `pbcol verify` (in `src/bin/pbcol.rs`) are
//! the matching offline cache tools. See the README walkthrough and
//! `docs/FORMAT.md`.

pub mod specs;

use std::path::{Path, PathBuf};
use std::time::Duration;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::{collect, Collection, CollectionConfig, ProbeScale};
use perfbug_core::memory::{collect_memory, MemCollectionConfig};
use perfbug_core::orchestrate::{self, CollectPlan, Fault, OrchestratorConfig};
use perfbug_core::persist::{self, CacheStatus, ExperimentKind, PersistError};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::{CnnParams, GbtParams, LassoParams, LstmParams, MlpParams};
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Reduced scale (default).
    Quick,
    /// Full paper-shaped scale.
    Paper,
}

/// Reads `PERFBUG_SCALE` (`quick` default, `paper` for the full runs).
pub fn bench_scale() -> BenchScale {
    match std::env::var("PERFBUG_SCALE").as_deref() {
        Ok("paper") | Ok("full") => BenchScale::Paper,
        _ => BenchScale::Quick,
    }
}

/// Picks a probe cap: `quick` at reduced scale, unlimited at paper scale.
pub fn probe_cap(quick: usize) -> Option<usize> {
    match bench_scale() {
        BenchScale::Quick => Some(quick),
        BenchScale::Paper => None,
    }
}

/// Scales a neural width: reduced at quick scale, paper value otherwise.
pub fn width(paper_width: usize, quick_width: usize) -> usize {
    match bench_scale() {
        BenchScale::Quick => quick_width,
        BenchScale::Paper => paper_width,
    }
}

/// Prints the standard header of a regeneration target.
pub fn banner(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!(
        "scale: {:?} (set PERFBUG_SCALE=paper for the full run)",
        bench_scale()
    );
    println!("==========================================================");
}

/// The default catalogue at the current scale.
pub fn catalog() -> BugCatalog {
    match bench_scale() {
        BenchScale::Quick => BugCatalog::core_small(),
        BenchScale::Paper => BugCatalog::core_full(),
    }
}

/// A ready-to-run collection config at the current scale.
pub fn base_config(engines: Vec<EngineSpec>, quick_probes: usize) -> CollectionConfig {
    let mut config = CollectionConfig::new(engines, catalog());
    config.scale = ProbeScale::default();
    config.max_probes = probe_cap(quick_probes);
    config
}

/// The collection cache directory, read from `PERFBUG_CACHE_DIR`. `None`
/// disables caching (every run collects from scratch).
pub fn cache_dir() -> Option<PathBuf> {
    std::env::var_os("PERFBUG_CACHE_DIR").map(PathBuf::from)
}

/// Parses `PERFBUG_SHARD` (`<index>/<count>`, e.g. `0/4`) via
/// [`ShardSpec::parse`] — the same grammar `pborch`'s `--shard` CLI
/// argument uses. `None` when unset; a malformed value panics rather
/// than silently collecting the full grid.
pub fn shard_from_env() -> Option<ShardSpec> {
    let raw = std::env::var("PERFBUG_SHARD").ok()?;
    Some(ShardSpec::parse(&raw).unwrap_or_else(|e| panic!("PERFBUG_SHARD: {e}")))
}

/// Orchestration parameters read from the environment
/// (`PERFBUG_ORCH_*`). `None` when `PERFBUG_ORCH_WORKERS` is unset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchEnv {
    /// Worker pool size (`PERFBUG_ORCH_WORKERS`).
    pub workers: usize,
    /// Shard count (`PERFBUG_ORCH_SHARDS`, default `2 * workers` so the
    /// work queue can rebalance around a lost worker).
    pub shards: usize,
    /// Per-shard attempt budget (`PERFBUG_ORCH_MAX_ATTEMPTS`, default 3).
    pub max_attempts: u32,
    /// Per-shard timeout (`PERFBUG_ORCH_TIMEOUT_SECS`, default none).
    pub timeout: Option<Duration>,
}

/// Reads the `PERFBUG_ORCH_*` knobs; `None` when orchestration is not
/// requested. Malformed values panic — a typo must not silently fall
/// back to a single-process pass.
pub fn orch_from_env() -> Option<OrchEnv> {
    fn num(var: &str) -> Option<u64> {
        let raw = std::env::var(var).ok()?;
        match raw.trim().parse() {
            Ok(n) if n > 0 => Some(n),
            _ => panic!("{var} must be a positive integer, got {raw:?}"),
        }
    }
    let workers = num("PERFBUG_ORCH_WORKERS")? as usize;
    let shards = num("PERFBUG_ORCH_SHARDS").map_or(workers * 2, |n| n as usize);
    let max_attempts = num("PERFBUG_ORCH_MAX_ATTEMPTS").map_or(3, |n| n as u32);
    let timeout = num("PERFBUG_ORCH_TIMEOUT_SECS").map(Duration::from_secs);
    Some(OrchEnv {
        workers,
        shards,
        max_attempts,
        timeout,
    })
}

fn cache_path(dir: &PathBuf, name: &str, kind: ExperimentKind, fingerprint: u64) -> PathBuf {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()));
    dir.join(persist::cache_file_name(name, kind, fingerprint))
}

fn report(status: CacheStatus, path: &Path) {
    match status {
        CacheStatus::Replayed => println!("  [cache] replayed {}", path.display()),
        CacheStatus::Assembled => {
            println!(
                "  [cache] assembled from shard files into {}",
                path.display()
            )
        }
        CacheStatus::Collected => println!("  [cache] collected and saved {}", path.display()),
    }
}

/// One shard worker's turn: collect (or replay) this process's shard file,
/// then either assemble the full corpus from the shards on disk or exit
/// cleanly, telling the operator which shards are still missing. Exiting
/// (rather than returning a partial corpus) keeps every bench target's
/// evaluation phase oblivious to sharding.
///
/// Under `PERFBUG_SHARD_ONLY=1` (set by the orchestrator for its child
/// workers) the worker never assembles: the supervisor owns assembly, so
/// after saving its shard the worker replays a pre-existing full corpus
/// (letting multi-collection targets progress past already-orchestrated
/// passes) or exits cleanly.
fn run_shard_worker(
    dir: &Path,
    name: &str,
    kind: ExperimentKind,
    fingerprint: u64,
    shard: ShardSpec,
    collect_shard: impl FnOnce(&Path) -> Result<persist::ShardOutcome, PersistError>,
) -> Collection {
    let shard_path = dir.join(persist::shard_file_name(
        name,
        kind,
        fingerprint,
        shard.index,
        shard.count,
    ));
    let outcome = collect_shard(&shard_path)
        .unwrap_or_else(|e| panic!("shard cache {}: {e}", shard_path.display()));
    match outcome.status {
        CacheStatus::Replayed => println!("  [shard] replayed {}", shard_path.display()),
        _ if outcome.resumed_probes > 0 => println!(
            "  [shard] collected and saved {} (resumed {} durable probe(s) \
             from a crashed attempt's part file)",
            shard_path.display(),
            outcome.resumed_probes
        ),
        _ => println!("  [shard] collected and saved {}", shard_path.display()),
    }
    let full = dir.join(persist::cache_file_name(name, kind, fingerprint));
    if std::env::var_os("PERFBUG_SHARD_ONLY").is_some() {
        return match persist::load_collection(&full, fingerprint) {
            Ok(col) => {
                println!("  [shard] full corpus already assembled; replaying it");
                col
            }
            Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                println!(
                    "  [shard] {}/{} done (orchestrated worker; the supervisor assembles)",
                    shard.index, shard.count
                );
                std::process::exit(0);
            }
            Err(e) => panic!("replaying {}: {e}", full.display()),
        };
    }
    match persist::load_or_assemble(&full, kind, fingerprint) {
        Ok(Some((col, status))) => {
            report(status, &full);
            col
        }
        Ok(None) => {
            println!(
                "  [shard] {}/{} done; corpus incomplete — run the remaining shards \
                 (PERFBUG_SHARD=<i>/{}), then re-run any target to assemble \
                 (or run `pbcol merge`)",
                shard.index, shard.count, shard.count
            );
            std::process::exit(0);
        }
        Err(e) => panic!("assembling corpus {}: {e}", full.display()),
    }
}

/// Drives an orchestrated collection pass for this bench target: child
/// re-invocations of the current binary collect shards off a work queue
/// (`PERFBUG_SHARD=<i>/<n>` + `PERFBUG_SHARD_ONLY=1`, stdout silenced),
/// the supervisor retries lost/hung/failed workers within the budget, and
/// the merged corpus is returned to the caller's evaluation phase.
fn run_orchestrated(
    dir: &Path,
    name: &str,
    kind: ExperimentKind,
    fingerprint: u64,
    orch: &OrchEnv,
) -> Collection {
    let plan = CollectPlan {
        dir: dir.to_path_buf(),
        prefix: name.to_string(),
        kind,
        fingerprint,
    };
    let mut config = OrchestratorConfig::new(orch.workers, orch.shards);
    config.max_attempts = orch.max_attempts;
    config.shard_timeout = orch.timeout;
    config.faults = Fault::from_env().unwrap_or_else(|e| panic!("{e}"));
    let exe = std::env::current_exe().expect("current executable for worker re-invocation");
    println!(
        "  [orch] {} workers x {} shards (<= {} attempts each) for {name} ...",
        config.workers, config.shards, config.max_attempts
    );
    let build = |shard: ShardSpec, _attempt: u32| {
        let mut cmd = std::process::Command::new(&exe);
        // Workers must re-run exactly this process's work: forward the
        // argv (e.g. a criterion bench-name filter), or a filtered
        // parent would orchestrate one collection while its children
        // collect another target's shards.
        cmd.args(std::env::args_os().skip(1))
            .env("PERFBUG_CACHE_DIR", dir)
            .env("PERFBUG_SHARD", format!("{}/{}", shard.index, shard.count))
            .env("PERFBUG_SHARD_ONLY", "1")
            // Children must not recurse into orchestration, and injected
            // faults belong to this supervisor alone.
            .env_remove("PERFBUG_ORCH_WORKERS")
            .env_remove(orchestrate::FAULT_ENV)
            .stdout(std::process::Stdio::null());
        cmd
    };
    match orchestrate::orchestrate_collection(&plan, &config, build) {
        Ok(run) => {
            println!("  [orch] {}", run.report.summary());
            // The replay fast path launches nothing and writes no report.
            if run.report_path.exists() {
                println!("  [orch] run report: {}", run.report_path.display());
            }
            run.collection
        }
        Err(e) => panic!("orchestrated collection {name}: {e}"),
    }
}

/// Runs (or replays) a core collection. With `PERFBUG_CACHE_DIR` unset
/// this is plain [`collect`]; with it set, the collection persists under
/// `name` and subsequent runs replay it without simulating. With
/// `PERFBUG_SHARD=<i>/<n>` also set, this process becomes shard worker
/// `i` of `n`; with `PERFBUG_ORCH_WORKERS=<n>` set instead, it becomes
/// the supervisor of an orchestrated pass (see the module docs).
pub fn collect_cached(name: &str, config: &CollectionConfig) -> Collection {
    let Some(dir) = cache_dir() else {
        assert!(
            shard_from_env().is_none(),
            "PERFBUG_SHARD requires PERFBUG_CACHE_DIR (shards live in the cache directory)"
        );
        assert!(
            orch_from_env().is_none(),
            "PERFBUG_ORCH_WORKERS requires PERFBUG_CACHE_DIR (shards live in the cache directory)"
        );
        return collect(config);
    };
    let fingerprint = persist::config_fingerprint(config);
    if let Some(shard) = shard_from_env() {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()));
        return run_shard_worker(&dir, name, ExperimentKind::Core, fingerprint, shard, |p| {
            persist::collect_shard_or_resume(p, config, shard)
        });
    }
    if let Some(orch) = orch_from_env() {
        return run_orchestrated(&dir, name, ExperimentKind::Core, fingerprint, &orch);
    }
    let path = cache_path(&dir, name, ExperimentKind::Core, fingerprint);
    let (col, status) = persist::collect_or_load(&path, config)
        .unwrap_or_else(|e| panic!("collection cache {}: {e}", path.display()));
    report(status, &path);
    col
}

/// [`collect_cached`] for the memory experiment.
pub fn collect_memory_cached(name: &str, config: &MemCollectionConfig) -> Collection {
    let Some(dir) = cache_dir() else {
        assert!(
            shard_from_env().is_none(),
            "PERFBUG_SHARD requires PERFBUG_CACHE_DIR (shards live in the cache directory)"
        );
        assert!(
            orch_from_env().is_none(),
            "PERFBUG_ORCH_WORKERS requires PERFBUG_CACHE_DIR (shards live in the cache directory)"
        );
        return collect_memory(config);
    };
    let fingerprint = persist::mem_config_fingerprint(config);
    if let Some(shard) = shard_from_env() {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()));
        return run_shard_worker(
            &dir,
            name,
            ExperimentKind::Memory,
            fingerprint,
            shard,
            |p| persist::collect_memory_shard_or_resume(p, config, shard),
        );
    }
    if let Some(orch) = orch_from_env() {
        return run_orchestrated(&dir, name, ExperimentKind::Memory, fingerprint, &orch);
    }
    let path = cache_path(&dir, name, ExperimentKind::Memory, fingerprint);
    let (col, status) = persist::collect_memory_or_load(&path, config)
        .unwrap_or_else(|e| panic!("collection cache {}: {e}", path.display()));
    report(status, &path);
    col
}

/// The tiny 2-benchmark, 3-bug, 6-probe demo corpus shared by
/// `examples/replay.rs` (the CI replay guard), the CI `orchestrate-guard`
/// leg and `pborch`'s `replay-demo` spec: small enough to collect in
/// seconds, rich enough to exercise engines, sharding and merging.
pub fn replay_demo_config() -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
        BugSpec::MispredictExtraDelay { t: 25 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 40,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite benchmark"),
        benchmark("462.libquantum").expect("suite benchmark"),
    ];
    config.max_probes = Some(6);
    config
}

/// GBT-250 (the paper's best engine — full size at every scale).
pub fn gbt250() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 250,
        ..GbtParams::default()
    })
}

/// GBT-150.
pub fn gbt150() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 150,
        ..GbtParams::default()
    })
}

/// Lasso.
pub fn lasso() -> EngineSpec {
    EngineSpec::Lasso(LassoParams::default())
}

/// `<layers>-MLP-<width>` scaled to the bench scale.
pub fn mlp(layers: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Mlp(MlpParams {
        hidden: vec![width(paper_width, quick_width); layers],
        max_epochs: match bench_scale() {
            BenchScale::Quick => 150,
            BenchScale::Paper => 400,
        },
        ..MlpParams::default()
    })
}

/// `<blocks>-CNN-<width>` scaled to the bench scale.
pub fn cnn(blocks: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Cnn(CnnParams {
        conv_blocks: blocks,
        hidden: width(paper_width, quick_width),
        max_epochs: match bench_scale() {
            BenchScale::Quick => 120,
            BenchScale::Paper => 300,
        },
        ..CnnParams::default()
    })
}

/// `<layers>-LSTM-<width>` scaled to the bench scale.
pub fn lstm(layers: usize, paper_width: usize, quick_width: usize) -> EngineSpec {
    EngineSpec::Lstm(LstmParams {
        layers,
        hidden: width(paper_width, quick_width),
        max_epochs: match bench_scale() {
            BenchScale::Quick => 100,
            BenchScale::Paper => 250,
        },
        ..LstmParams::default()
    })
}

/// Formats a `DetectionMetrics` row's severity cells.
pub fn severity_cells(m: &perfbug_core::DetectionMetrics) -> Vec<String> {
    m.tpr_by_severity
        .iter()
        .map(|v| perfbug_core::report::opt_f(*v, 2))
        .collect()
}

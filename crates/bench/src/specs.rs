//! Named collection specs and the worker/launcher plumbing shared by the
//! orchestration binaries (`pborch`, `pbserve`, `pbsub`).
//!
//! A *spec* is a short name for a full collection config. Names — not
//! configs — are what crosses process and network boundaries: every
//! binary (and every worker daemon) re-resolves the name locally and the
//! config fingerprint proves the resolutions agree, so version skew is
//! detected instead of silently collecting a different corpus.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::{collect, Collection, CollectionConfig};
use perfbug_core::memory::{collect_memory, MemCollectionConfig, TargetMetric};
use perfbug_core::orchestrate::{self, remote, CollectPlan, OrchestratorConfig};
use perfbug_core::persist::{self, CacheStatus, ExperimentKind, PersistError};
use perfbug_core::serve::{ExperimentBackend, RunOutcome, SubmitRequest};
use perfbug_ml::GbtParams;
use perfbug_workloads::WorkloadScale;

use crate::{base_config, gbt250, replay_demo_config};

/// A named collection configuration the orchestration tools can run.
pub enum SpecConfig {
    /// Core (cycle-level) experiment.
    Core(CollectionConfig),
    /// Memory experiment.
    Memory(MemCollectionConfig),
}

impl SpecConfig {
    /// Experiment kind of this spec.
    pub fn kind(&self) -> ExperimentKind {
        match self {
            SpecConfig::Core(_) => ExperimentKind::Core,
            SpecConfig::Memory(_) => ExperimentKind::Memory,
        }
    }

    /// Config fingerprint of this spec.
    pub fn fingerprint(&self) -> u64 {
        match self {
            SpecConfig::Core(c) => persist::config_fingerprint(c),
            SpecConfig::Memory(c) => persist::mem_config_fingerprint(c),
        }
    }

    /// Collects (or resumes) one shard into `path`.
    pub fn collect_shard_or_resume(
        &self,
        path: &Path,
        shard: ShardSpec,
    ) -> Result<persist::ShardOutcome, PersistError> {
        match self {
            SpecConfig::Core(c) => persist::collect_shard_or_resume(path, c, shard),
            SpecConfig::Memory(c) => persist::collect_memory_shard_or_resume(path, c, shard),
        }
    }

    /// Full collection through the cache (replay / shard-assembly fast
    /// paths included) — the in-process service path.
    pub fn collect_or_load(&self, path: &Path) -> Result<(Collection, CacheStatus), PersistError> {
        match self {
            SpecConfig::Core(c) => persist::collect_or_load(path, c),
            SpecConfig::Memory(c) => persist::collect_memory_or_load(path, c),
        }
    }

    /// Uncached single-process collection (the `--check-full` reference).
    pub fn collect_full(&self) -> Collection {
        match self {
            SpecConfig::Core(c) => collect(c),
            SpecConfig::Memory(c) => collect_memory(c),
        }
    }
}

/// `(name, description)` of every named spec, for `pborch specs`.
pub const SPECS: [(&str, &str); 3] = [
    (
        "replay-demo",
        "the CI replay-guard corpus: 2 benchmarks, 3 core bugs, 6 probes, GBT-40",
    ),
    (
        "gbt-quick",
        "GBT-250 over the PERFBUG_SCALE catalogue with a 6-probe quick cap",
    ),
    (
        "mem-quick",
        "memory experiment (AMAT, GBT-30) at tiny workload scale, 4 probes",
    ),
];

/// Resolves a spec name to its configuration.
pub fn resolve_spec(name: &str) -> Result<SpecConfig, String> {
    match name {
        "replay-demo" => Ok(SpecConfig::Core(replay_demo_config())),
        "gbt-quick" => Ok(SpecConfig::Core(base_config(vec![gbt250()], 6))),
        "mem-quick" => {
            let mut config = MemCollectionConfig::new(
                vec![perfbug_core::stage1::EngineSpec::Gbt(GbtParams {
                    n_trees: 30,
                    ..GbtParams::default()
                })],
                TargetMetric::Amat,
            );
            config.workload = WorkloadScale::tiny();
            config.step_cycles = 300;
            config.max_probes = Some(4);
            Ok(SpecConfig::Memory(config))
        }
        other => Err(format!(
            "unknown spec {other:?} (run `pborch specs` for the list)"
        )),
    }
}

/// Pulls the value of a `--flag value` pair out of `args`.
pub fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == flag {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} needs a value")),
            };
        }
    }
    Ok(None)
}

/// Parses a numeric flag value with a named error.
pub fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{what} must be a number, got {raw:?}"))
}

/// The worker `Command` collecting one shard of `spec_name` into
/// `cache_dir`, re-invoking `exe` (a binary whose `worker` subcommand is
/// [`run_worker`]). Fault injection belongs to supervisors, never
/// workers, so [`orchestrate::FAULT_ENV`] is stripped.
pub fn worker_command(exe: &Path, spec_name: &str, cache_dir: &Path, shard: ShardSpec) -> Command {
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg("--spec")
        .arg(spec_name)
        .arg("--cache-dir")
        .arg(cache_dir)
        .arg("--shard")
        .arg(format!("{}/{}", shard.index, shard.count))
        .env_remove(orchestrate::FAULT_ENV)
        .stdout(Stdio::null());
    cmd
}

/// Body of the `worker` subcommand (`pborch worker`, `pbserve worker`):
/// collects (or resumes) exactly one shard, then exits.
pub fn run_worker(args: &[String]) -> Result<(), String> {
    let spec_name =
        flag_value(args, "--spec")?.ok_or("--spec <name> is required (see `pborch specs`)")?;
    let cache_dir =
        PathBuf::from(flag_value(args, "--cache-dir")?.ok_or("--cache-dir <dir> is required")?);
    let spec = resolve_spec(&spec_name)?;
    let raw = flag_value(args, "--shard")?.ok_or("--shard <i>/<n> is required")?;
    let shard = ShardSpec::parse(&raw)?;
    std::fs::create_dir_all(&cache_dir)
        .map_err(|e| format!("cannot create {}: {e}", cache_dir.display()))?;
    let path = cache_dir.join(persist::shard_file_name(
        &spec_name,
        spec.kind(),
        spec.fingerprint(),
        shard.index,
        shard.count,
    ));
    let outcome = spec
        .collect_shard_or_resume(&path, shard)
        .map_err(|e| format!("shard {}: {e}", path.display()))?;
    println!(
        "worker: shard {}/{} ({} probes, resumed={}) -> {}",
        shard.index,
        shard.count,
        outcome.collection.probes.len(),
        outcome.resumed_probes,
        path.display()
    );
    Ok(())
}

/// The daemon-side admission check + plan resolution for a launch
/// request: re-resolve the spec locally and require kind/fingerprint
/// equality, so a supervisor running diverged code is rejected instead
/// of poisoning the cache.
pub fn admit_launch(req: &remote::LaunchRequest) -> Result<CollectPlan, String> {
    let spec = resolve_spec(&req.prefix)?;
    if spec.kind() != req.kind {
        return Err(format!(
            "spec {:?} is a {} experiment here, launch says {}",
            req.prefix,
            spec.kind().as_str(),
            req.kind.as_str()
        ));
    }
    let fingerprint = spec.fingerprint();
    if fingerprint != req.fingerprint {
        return Err(format!(
            "config fingerprint mismatch for spec {:?}: this daemon computes {fingerprint:016x}, \
             the launch says {:016x} (version skew between supervisor and daemon?)",
            req.prefix, req.fingerprint
        ));
    }
    Ok(CollectPlan {
        dir: PathBuf::from(&req.cache_dir),
        prefix: req.prefix.clone(),
        kind: req.kind,
        fingerprint,
    })
}

/// [`ExperimentBackend`] over the named specs: `pbserve`'s experiment
/// layer. `workers == 0` collects in-process (exact `simulations_run`
/// accounting); otherwise shards are orchestrated as child processes of
/// `exe` — or fanned out to worker daemons when the submission carries
/// `hosts`.
pub struct BenchBackend {
    /// Binary re-invoked in `worker` mode for orchestrated passes.
    pub exe: PathBuf,
}

impl ExperimentBackend for BenchBackend {
    fn identity(&self, spec: &str) -> Result<(ExperimentKind, u64), String> {
        let resolved = resolve_spec(spec)?;
        Ok((resolved.kind(), resolved.fingerprint()))
    }

    fn run(&self, submit: &SubmitRequest, plan: &CollectPlan) -> Result<RunOutcome, String> {
        let spec = resolve_spec(&submit.spec)?;
        if submit.workers == 0 {
            let (collection, status) = spec
                .collect_or_load(&plan.full_path())
                .map_err(|e| format!("{}: {e}", submit.spec))?;
            return Ok(RunOutcome {
                status,
                probes: collection.probes.len(),
            });
        }
        let shards = if submit.shards == 0 {
            submit.workers * 2
        } else {
            submit.shards
        };
        let mut config = OrchestratorConfig::new(submit.workers, shards);
        config.max_attempts = submit.max_attempts.max(1);
        if let Some(secs) = submit.timeout_secs {
            config.shard_timeout = Some(Duration::from_secs(secs));
        }
        // The service never injects faults: FAULT_ENV is a supervisor
        // test hook, and this supervisor is a daemon serving tenants.
        let run = if let Some(raw) = &submit.hosts {
            let hosts = remote::parse_hosts(raw)?;
            let mut launcher = remote::RemoteLauncher::for_plan(hosts, plan);
            orchestrate::orchestrate_collection_with(plan, &config, &mut launcher)
        } else {
            let exe = self.exe.clone();
            let prefix = plan.prefix.clone();
            let dir = plan.dir.clone();
            orchestrate::orchestrate_collection(plan, &config, move |shard, _attempt| {
                worker_command(&exe, &prefix, &dir, shard)
            })
        }
        .map_err(|e| format!("{}: {e}", submit.spec))?;
        Ok(RunOutcome {
            status: run.status,
            probes: run.collection.probes.len(),
        })
    }
}

//! `pborch` — shard orchestrator CLI: a process-pool driver for sharded
//! collection passes.
//!
//! PR 3's sharded collection required one hand-run `PERFBUG_SHARD=<i>/<n>`
//! invocation per worker. `pborch run` drives the whole pass from one
//! command: it partitions the probe axis into more shards than workers,
//! spawns shard workers as child processes (re-invocations of this binary
//! in `worker` mode), supervises them (exit status, shard-file
//! verification, optional per-shard timeout), requeues shards from
//! dead/hung/failed workers with a bounded retry budget, assembles the
//! merged corpus through `persist::merge_collections`, and writes a JSON
//! run report beside the cache file (printed by `pbcol inspect` as
//! shard-attempt provenance).
//!
//! ```text
//! pborch run    --spec <name> --cache-dir <dir> --workers <n> [options]
//! pborch worker --spec <name> --cache-dir <dir> --shard <i>/<n>
//! pborch specs
//! ```
//!
//! `PERFBUG_ORCH_FAULT=<op>:<shard>[@<attempt>]` injects worker faults
//! (supervisor-side test hook): `kill` right after launch, `killmid`
//! once at least one probe chunk is durable in the shard's part file,
//! and `torn` like `killmid` plus a mid-chunk tear of the part file.
//! Retries resume from the crashed attempt's durable chunk prefix
//! instead of re-collecting; CI's `orchestrate-guard` legs use the hook
//! with `--check-full` to prove on every push that a pass surviving
//! worker loss — including a torn write — still assembles the
//! bit-identical corpus.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::Duration;

use perfbug_bench::{base_config, gbt250, replay_demo_config};
use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::{collect, Collection, CollectionConfig};
use perfbug_core::memory::{collect_memory, MemCollectionConfig, TargetMetric};
use perfbug_core::orchestrate::{self, CollectPlan, Fault, OrchestratorConfig};
use perfbug_core::persist::{
    self, encode_collection_with, ExperimentKind, FileHeader, ShardManifest, CORPUS_REVISION,
};
use perfbug_ml::GbtParams;
use perfbug_workloads::WorkloadScale;

const USAGE: &str = "pborch — shard orchestrator (process-pool driver with retry/requeue)

USAGE:
    pborch run    --spec <name> --cache-dir <dir> --workers <n>
                  [--shards <m>]        shard count (default 2 x workers)
                  [--max-attempts <k>]  per-shard retry budget (default 3)
                  [--timeout-secs <s>]  per-shard timeout (default none)
                  [--check-full]        also collect single-process and fail
                                        unless the merged corpus is
                                        bit-identical (timings zeroed)
    pborch worker --spec <name> --cache-dir <dir> --shard <i>/<n>
                  (internal: one shard worker's turn; run exits after the
                   shard is saved)
    pborch specs  list the named collection specs

Faults: PERFBUG_ORCH_FAULT=<op>:<shard>[@<attempt>][,...] makes the
supervisor fault that shard's worker on that attempt (default: first).
Ops: kill (right after launch), killmid (once >= 1 probe chunk is
durable in the part file), torn (killmid + mid-chunk tear of the part
file). Retries resume from the durable chunk prefix; the supervisor
prints `resumed=<k>` per resuming attempt.
The run report lands at <cache-dir>/<spec>-<kind>-<fp>.orchrun.json.";

/// A named collection configuration `pborch` can orchestrate.
enum SpecConfig {
    Core(CollectionConfig),
    Memory(MemCollectionConfig),
}

impl SpecConfig {
    fn kind(&self) -> ExperimentKind {
        match self {
            SpecConfig::Core(_) => ExperimentKind::Core,
            SpecConfig::Memory(_) => ExperimentKind::Memory,
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            SpecConfig::Core(c) => persist::config_fingerprint(c),
            SpecConfig::Memory(c) => persist::mem_config_fingerprint(c),
        }
    }

    fn collect_shard_or_resume(
        &self,
        path: &Path,
        shard: ShardSpec,
    ) -> Result<persist::ShardOutcome, persist::PersistError> {
        match self {
            SpecConfig::Core(c) => persist::collect_shard_or_resume(path, c, shard),
            SpecConfig::Memory(c) => persist::collect_memory_shard_or_resume(path, c, shard),
        }
    }

    fn collect_full(&self) -> Collection {
        match self {
            SpecConfig::Core(c) => collect(c),
            SpecConfig::Memory(c) => collect_memory(c),
        }
    }
}

/// `(name, description)` of every named spec, for `pborch specs`.
const SPECS: [(&str, &str); 3] = [
    (
        "replay-demo",
        "the CI replay-guard corpus: 2 benchmarks, 3 core bugs, 6 probes, GBT-40",
    ),
    (
        "gbt-quick",
        "GBT-250 over the PERFBUG_SCALE catalogue with a 6-probe quick cap",
    ),
    (
        "mem-quick",
        "memory experiment (AMAT, GBT-30) at tiny workload scale, 4 probes",
    ),
];

fn resolve_spec(name: &str) -> Result<SpecConfig, String> {
    match name {
        "replay-demo" => Ok(SpecConfig::Core(replay_demo_config())),
        "gbt-quick" => Ok(SpecConfig::Core(base_config(vec![gbt250()], 6))),
        "mem-quick" => {
            let mut config = MemCollectionConfig::new(
                vec![perfbug_core::stage1::EngineSpec::Gbt(GbtParams {
                    n_trees: 30,
                    ..GbtParams::default()
                })],
                TargetMetric::Amat,
            );
            config.workload = WorkloadScale::tiny();
            config.step_cycles = 300;
            config.max_probes = Some(4);
            Ok(SpecConfig::Memory(config))
        }
        other => Err(format!(
            "unknown spec {other:?} (run `pborch specs` for the list)"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "run" => run(rest),
        "worker" => worker(rest),
        "specs" => {
            for (name, desc) in SPECS {
                println!("{name:<12} {desc}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pborch: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Flags shared by `run` and `worker`.
struct CommonArgs {
    spec_name: String,
    spec: SpecConfig,
    cache_dir: PathBuf,
}

/// Pulls the value of a `--flag value` pair out of `args`.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == flag {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} needs a value")),
            };
        }
    }
    Ok(None)
}

fn parse_common(args: &[String]) -> Result<CommonArgs, String> {
    let spec_name =
        flag_value(args, "--spec")?.ok_or("--spec <name> is required (see `pborch specs`)")?;
    let cache_dir = flag_value(args, "--cache-dir")?.ok_or("--cache-dir <dir> is required")?;
    let spec = resolve_spec(&spec_name)?;
    Ok(CommonArgs {
        spec_name,
        spec,
        cache_dir: PathBuf::from(cache_dir),
    })
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{what} must be a number, got {raw:?}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    let workers: usize = match flag_value(args, "--workers")? {
        Some(raw) => parse_num(&raw, "--workers")?,
        None => return Err("--workers <n> is required".into()),
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let shards: usize = match flag_value(args, "--shards")? {
        Some(raw) => parse_num(&raw, "--shards")?,
        None => workers * 2,
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut config = OrchestratorConfig::new(workers, shards);
    if let Some(raw) = flag_value(args, "--max-attempts")? {
        config.max_attempts = parse_num(&raw, "--max-attempts")?;
        if config.max_attempts == 0 {
            return Err("--max-attempts must be at least 1".into());
        }
    }
    if let Some(raw) = flag_value(args, "--timeout-secs")? {
        config.shard_timeout = Some(Duration::from_secs(parse_num(&raw, "--timeout-secs")?));
    }
    config.faults = Fault::from_env()?;
    let check_full = args.iter().any(|a| a == "--check-full");

    let kind = common.spec.kind();
    let fingerprint = common.spec.fingerprint();
    let plan = CollectPlan {
        dir: common.cache_dir.clone(),
        prefix: common.spec_name.clone(),
        kind,
        fingerprint,
    };
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    println!(
        "orchestrating {}: {} workers x {} shards (<= {} attempts each{}), fingerprint {:016x}",
        common.spec_name,
        config.workers,
        config.shards,
        config.max_attempts,
        if config.faults.is_empty() {
            String::new()
        } else {
            format!(", {} injected fault(s)", config.faults.len())
        },
        fingerprint
    );
    let spec_name = common.spec_name.clone();
    let cache_dir = common.cache_dir.clone();
    let build = move |shard: ShardSpec, attempt: u32| {
        println!(
            "  launch shard {}/{} (attempt {attempt})",
            shard.index, shard.count
        );
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--spec")
            .arg(&spec_name)
            .arg("--cache-dir")
            .arg(&cache_dir)
            .arg("--shard")
            .arg(format!("{}/{}", shard.index, shard.count))
            // The fault hook belongs to this supervisor, not the workers.
            .env_remove(orchestrate::FAULT_ENV)
            .stdout(Stdio::null());
        cmd
    };
    let run = orchestrate::orchestrate_collection(&plan, &config, build)
        .map_err(|e| format!("{}: {e}", common.spec_name))?;
    println!("{}", run.report.summary());
    // Resume accounting: retries that picked up a crashed attempt's
    // durable part-file prefix (worker stdout is nulled, so the
    // supervisor reports this; CI's torn-fault guard greps for it).
    for a in &run.report.attempts {
        if let Some(k) = a.resumed_probes {
            println!(
                "  shard {} attempt {}: resumed={k} durable probe(s) from the previous attempt",
                a.shard, a.attempt
            );
        }
    }
    println!("obtained corpus: {:?}", run.status);
    // The replay fast path launches nothing and writes no report.
    if run.report_path.exists() {
        println!("run report: {}", run.report_path.display());
    }

    if check_full {
        println!("check-full: collecting single-process reference ...");
        let header = |col: &Collection| FileHeader {
            kind,
            corpus_revision: CORPUS_REVISION,
            fingerprint,
            manifest: ShardManifest::full(col.probes.len()),
        };
        let mut orchestrated = run.collection;
        let mut reference = common.spec.collect_full();
        orchestrated.zero_timings();
        reference.zero_timings();
        let orch_bytes = encode_collection_with(&orchestrated, &header(&orchestrated));
        let ref_bytes = encode_collection_with(&reference, &header(&reference));
        if orch_bytes != ref_bytes {
            return Err(format!(
                "orchestrated corpus is NOT bit-identical to the single-process collection \
                 ({} vs {} encoded bytes)",
                orch_bytes.len(),
                ref_bytes.len()
            ));
        }
        println!(
            "check-full: merged corpus is bit-identical to the single-process collection \
             ({} encoded bytes, timings zeroed)",
            orch_bytes.len()
        );
    }
    Ok(())
}

fn worker(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    let raw = flag_value(args, "--shard")?.ok_or("--shard <i>/<n> is required")?;
    let shard = ShardSpec::parse(&raw)?;
    std::fs::create_dir_all(&common.cache_dir)
        .map_err(|e| format!("cannot create {}: {e}", common.cache_dir.display()))?;
    let path = common.cache_dir.join(persist::shard_file_name(
        &common.spec_name,
        common.spec.kind(),
        common.spec.fingerprint(),
        shard.index,
        shard.count,
    ));
    let outcome = common
        .spec
        .collect_shard_or_resume(&path, shard)
        .map_err(|e| format!("shard {}: {e}", path.display()))?;
    println!(
        "worker: shard {}/{} ({} probes, resumed={}) -> {}",
        shard.index,
        shard.count,
        outcome.collection.probes.len(),
        outcome.resumed_probes,
        path.display()
    );
    Ok(())
}

//! `pborch` — shard orchestrator CLI: a process-pool driver for sharded
//! collection passes, local or distributed.
//!
//! PR 3's sharded collection required one hand-run `PERFBUG_SHARD=<i>/<n>`
//! invocation per worker. `pborch run` drives the whole pass from one
//! command: it partitions the probe axis into more shards than workers,
//! spawns shard workers as child processes (re-invocations of this binary
//! in `worker` mode), supervises them (exit status, shard-file
//! verification, optional per-shard timeout), requeues shards from
//! dead/hung/failed workers with a bounded retry budget, assembles the
//! merged corpus through `persist::merge_collections`, and writes a JSON
//! run report beside the cache file (printed by `pbcol inspect` as
//! shard-attempt provenance).
//!
//! With `--hosts` (or `PERFBUG_ORCH_HOSTS`) the same supervision loop
//! fans shards out to `pborch worker-daemon` processes over the TCP
//! worker protocol (`docs/FORMAT.md` §9) instead of spawning local
//! children — a dead daemon or connection is just a failed attempt, and
//! the retry/requeue/byte-identity guarantees are unchanged.
//!
//! ```text
//! pborch run           --spec <name> --cache-dir <dir> --workers <n> [options]
//! pborch worker        --spec <name> --cache-dir <dir> --shard <i>/<n>
//! pborch worker-daemon --listen <host:port>
//! pborch specs
//! ```
//!
//! `PERFBUG_ORCH_FAULT=<op>:<shard>[@<attempt>]` injects worker faults
//! (supervisor-side test hook): `kill` right after launch, `killmid`
//! once at least one probe chunk is durable in the shard's part file,
//! and `torn` like `killmid` plus a mid-chunk tear of the part file.
//! Retries resume from the crashed attempt's durable chunk prefix
//! instead of re-collecting; CI's `orchestrate-guard` legs use the hook
//! with `--check-full` to prove on every push that a pass surviving
//! worker loss — including a torn write — still assembles the
//! bit-identical corpus.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use perfbug_bench::specs::{
    flag_value, parse_num, resolve_spec, run_worker, worker_command, SpecConfig, SPECS,
};
use perfbug_core::exec::ShardSpec;
use perfbug_core::experiment::Collection;
use perfbug_core::orchestrate::{self, remote, CollectPlan, Fault, OrchestratorConfig};
use perfbug_core::persist::{encode_collection_with, FileHeader, ShardManifest, CORPUS_REVISION};

const USAGE: &str = "pborch — shard orchestrator (process-pool driver with retry/requeue)

USAGE:
    pborch run    --spec <name> --cache-dir <dir> --workers <n>
                  [--shards <m>]        shard count (default 2 x workers)
                  [--max-attempts <k>]  per-shard retry budget (default 3)
                  [--timeout-secs <s>]  per-shard timeout (default none)
                  [--hosts <h:p,...>]   fan shards out to worker daemons
                                        (default: PERFBUG_ORCH_HOSTS; unset
                                        means local child processes)
                  [--check-full]        also collect single-process and fail
                                        unless the merged corpus is
                                        bit-identical (timings zeroed)
    pborch worker --spec <name> --cache-dir <dir> --shard <i>/<n>
                  (internal: one shard worker's turn; run exits after the
                   shard is saved)
    pborch worker-daemon --listen <host:port>
                  serve LaunchShard requests over TCP: each accepted
                  launch re-invokes this binary in worker mode and
                  streams heartbeat/checksum/exit frames back
    pborch specs  list the named collection specs

Faults: PERFBUG_ORCH_FAULT=<op>:<shard>[@<attempt>][,...] makes the
supervisor fault that shard's worker on that attempt (default: first).
Ops: kill (right after launch), killmid (once >= 1 probe chunk is
durable in the part file), torn (killmid + mid-chunk tear of the part
file). Retries resume from the durable chunk prefix; the supervisor
prints `resumed=<k>` per resuming attempt. Over --hosts, a supervisor
kill closes the daemon connection, which kills the remote worker.
The run report lands at <cache-dir>/<spec>-<kind>-<fp>.orchrun.json.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "run" => run(rest),
        "worker" => run_worker(rest),
        "worker-daemon" => worker_daemon(rest),
        "specs" => {
            for (name, desc) in SPECS {
                println!("{name:<12} {desc}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pborch: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Flags shared by `run` and `worker`.
struct CommonArgs {
    spec_name: String,
    spec: SpecConfig,
    cache_dir: PathBuf,
}

fn parse_common(args: &[String]) -> Result<CommonArgs, String> {
    let spec_name =
        flag_value(args, "--spec")?.ok_or("--spec <name> is required (see `pborch specs`)")?;
    let cache_dir = flag_value(args, "--cache-dir")?.ok_or("--cache-dir <dir> is required")?;
    let spec = resolve_spec(&spec_name)?;
    Ok(CommonArgs {
        spec_name,
        spec,
        cache_dir: PathBuf::from(cache_dir),
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    let workers: usize = match flag_value(args, "--workers")? {
        Some(raw) => parse_num(&raw, "--workers")?,
        None => return Err("--workers <n> is required".into()),
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let shards: usize = match flag_value(args, "--shards")? {
        Some(raw) => parse_num(&raw, "--shards")?,
        None => workers * 2,
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut config = OrchestratorConfig::new(workers, shards);
    if let Some(raw) = flag_value(args, "--max-attempts")? {
        config.max_attempts = parse_num(&raw, "--max-attempts")?;
        if config.max_attempts == 0 {
            return Err("--max-attempts must be at least 1".into());
        }
    }
    if let Some(raw) = flag_value(args, "--timeout-secs")? {
        config.shard_timeout = Some(Duration::from_secs(parse_num(&raw, "--timeout-secs")?));
    }
    config.faults = Fault::from_env()?;
    let check_full = args.iter().any(|a| a == "--check-full");
    let hosts = match flag_value(args, "--hosts")? {
        Some(raw) => Some(remote::parse_hosts(&raw).map_err(|e| format!("--hosts: {e}"))?),
        None => remote::hosts_from_env()?,
    };

    let kind = common.spec.kind();
    let fingerprint = common.spec.fingerprint();
    let plan = CollectPlan {
        dir: common.cache_dir.clone(),
        prefix: common.spec_name.clone(),
        kind,
        fingerprint,
    };
    println!(
        "orchestrating {}: {} workers x {} shards (<= {} attempts each{}), fingerprint {:016x}",
        common.spec_name,
        config.workers,
        config.shards,
        config.max_attempts,
        if config.faults.is_empty() {
            String::new()
        } else {
            format!(", {} injected fault(s)", config.faults.len())
        },
        fingerprint
    );
    let run = match hosts {
        Some(hosts) => {
            println!(
                "  distributed: fan-out over {} worker daemon(s): {}",
                hosts.len(),
                hosts.join(", ")
            );
            let mut launcher = remote::RemoteLauncher::for_plan(hosts, &plan);
            orchestrate::orchestrate_collection_with(&plan, &config, &mut launcher)
        }
        None => {
            let exe =
                std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
            let spec_name = common.spec_name.clone();
            let cache_dir = common.cache_dir.clone();
            let build = move |shard: ShardSpec, attempt: u32| {
                println!(
                    "  launch shard {}/{} (attempt {attempt})",
                    shard.index, shard.count
                );
                worker_command(&exe, &spec_name, &cache_dir, shard)
            };
            orchestrate::orchestrate_collection(&plan, &config, build)
        }
    }
    .map_err(|e| format!("{}: {e}", common.spec_name))?;
    println!("{}", run.report.summary());
    // Resume accounting: retries that picked up a crashed attempt's
    // durable part-file prefix (worker stdout is nulled, so the
    // supervisor reports this; CI's torn-fault guard greps for it).
    for a in &run.report.attempts {
        if let Some(k) = a.resumed_probes {
            println!(
                "  shard {} attempt {}: resumed={k} durable probe(s) from the previous attempt",
                a.shard, a.attempt
            );
        }
    }
    println!("obtained corpus: {:?}", run.status);
    // The replay fast path launches nothing and writes no report.
    if run.report_path.exists() {
        println!("run report: {}", run.report_path.display());
    }

    if check_full {
        println!("check-full: collecting single-process reference ...");
        let header = |col: &Collection| FileHeader {
            kind,
            corpus_revision: CORPUS_REVISION,
            fingerprint,
            manifest: ShardManifest::full(col.probes.len()),
        };
        let mut orchestrated = run.collection;
        let mut reference = common.spec.collect_full();
        orchestrated.zero_timings();
        reference.zero_timings();
        let orch_bytes = encode_collection_with(&orchestrated, &header(&orchestrated));
        let ref_bytes = encode_collection_with(&reference, &header(&reference));
        if orch_bytes != ref_bytes {
            return Err(format!(
                "orchestrated corpus is NOT bit-identical to the single-process collection \
                 ({} vs {} encoded bytes)",
                orch_bytes.len(),
                ref_bytes.len()
            ));
        }
        println!(
            "check-full: merged corpus is bit-identical to the single-process collection \
             ({} encoded bytes, timings zeroed)",
            orch_bytes.len()
        );
    }
    Ok(())
}

/// `pborch worker-daemon --listen <host:port>`: serve shard launches
/// over the TCP worker protocol. Every admitted launch re-invokes this
/// binary in `worker` mode exactly as a local `pborch run` would; the
/// config fingerprint in each request must match this binary's own
/// resolution of the spec, so supervisor/daemon version skew is rejected
/// up front.
fn worker_daemon(args: &[String]) -> Result<(), String> {
    let listen = flag_value(args, "--listen")?.ok_or("--listen <host:port> is required")?;
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let listener =
        TcpListener::bind(&listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(listen);
    println!("pborch worker-daemon listening on {addr}");
    let agent = remote::CommandAgent {
        admit: perfbug_bench::specs::admit_launch,
        build: move |req: &remote::LaunchRequest| {
            worker_command(
                &exe,
                &req.prefix,
                std::path::Path::new(&req.cache_dir),
                req.shard,
            )
        },
    };
    remote::serve_daemon(listener, Arc::new(agent), remote::DaemonOptions::default())
        .map_err(|e| format!("worker-daemon: {e}"))
}
